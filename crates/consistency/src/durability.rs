//! Offline durability audit over a metadata server's durable image.
//!
//! The WAL + snapshot layer (DESIGN.md §13) makes three promises that
//! the lock/lease checker in [`crate::checker`] cannot see, because they
//! live below the protocol event stream:
//!
//! 1. **The durable prefix is sound.** Every byte up to the durable
//!    watermark decodes as a framed, checksummed record. Defects (torn
//!    frames, bit flips) are legal only in the *volatile* tail a crash
//!    discards — never in bytes the server acknowledged as durable.
//! 2. **Incarnations strictly increase.** Each recovery or failover
//!    election logs a fresh incarnation strictly above every one the log
//!    (and the snapshot it sits on) already contains. A repeated
//!    incarnation would let two server lifetimes issue colliding epochs.
//! 3. **Watermarks are monotone and mints are unique.** Session and
//!    epoch watermarks never step backwards across the log, and no two
//!    `Create`/`Mkdir` records mint the same inode — not even across an
//!    incarnation boundary, which is exactly where a buggy replay would
//!    hand out a recycled number.
//!
//! [`audit_wal`] checks a raw log against baselines; [`audit_store`]
//! wraps it for a live [`DurableStore`], decoding the snapshot the log
//! sits on first.

use tank_meta::snapshot;
use tank_meta::wal::{scan, DurableStore, WalRecord};
use tank_meta::Watermarks;
use tank_proto::ServerId;
use tank_shard::ShardMap;

/// What the audit found.
#[derive(Debug, Clone, Default)]
pub struct DurabilityReport {
    /// Records decoded from the audited log.
    pub records: usize,
    /// Incarnation values in log order (after the snapshot baseline).
    pub incarnations: Vec<u64>,
    /// Human-readable invariant violations (empty = the image is sound).
    pub violations: Vec<String>,
}

impl DurabilityReport {
    /// Whether every durability invariant held.
    pub fn safe(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Audit a fully-durable log byte range against `baseline` watermarks
/// (the watermarks of the snapshot the log replays on top of;
/// `Watermarks::default()` for a log with no snapshot underneath).
pub fn audit_wal(baseline: &Watermarks, log: &[u8]) -> DurabilityReport {
    let mut report = DurabilityReport::default();
    let outcome = scan(log);
    report.records = outcome.records.len();
    if let Some(defect) = outcome.defect {
        report.violations.push(format!(
            "defect {defect:?} inside the durable prefix at byte {} of {}",
            outcome.valid_len,
            log.len()
        ));
    }

    let mut last_incarnation = baseline.incarnation;
    let mut session_wm = baseline.session;
    let mut epoch_wm = baseline.epoch;
    let mut minted = std::collections::HashSet::new();
    for rec in &outcome.records {
        match rec {
            WalRecord::Incarnation(n) => {
                if *n <= last_incarnation {
                    report.violations.push(format!(
                        "incarnation {n} not above its predecessor {last_incarnation}"
                    ));
                }
                last_incarnation = *n;
                report.incarnations.push(*n);
            }
            WalRecord::SessionWatermark(n) => {
                if *n < session_wm {
                    report
                        .violations
                        .push(format!("session watermark regressed {session_wm} -> {n}"));
                }
                session_wm = *n;
            }
            WalRecord::EpochWatermark(n) => {
                if *n < epoch_wm {
                    report
                        .violations
                        .push(format!("epoch watermark regressed {epoch_wm} -> {n}"));
                }
                epoch_wm = *n;
            }
            WalRecord::Create { ino, .. } | WalRecord::Mkdir { ino, .. }
                if !minted.insert(*ino) =>
            {
                report.violations.push(format!(
                    "ino {} minted twice (incarnation {last_incarnation})",
                    ino.0
                ));
            }
            // First-time mints (the guard above consumed the duplicates)
            // and mutations with no cross-incarnation invariant of their
            // own — replay equivalence covers them.
            WalRecord::Create { .. }
            | WalRecord::Mkdir { .. }
            | WalRecord::SetAttr { .. }
            | WalRecord::Unlink { .. }
            | WalRecord::RenameLink { .. }
            | WalRecord::RenameUnlink { .. }
            | WalRecord::Alloc { .. }
            | WalRecord::Commit { .. } => {}
        }
    }
    report
}

/// Audit a live [`DurableStore`]: decode the snapshot under the log
/// (a snapshot that fails to decode is itself a violation), then audit
/// the durable log prefix on top of it. `map`/`sid`/`block_size` are the
/// configuration of the server that owns the store.
pub fn audit_store(
    store: &DurableStore,
    map: ShardMap,
    sid: ServerId,
    block_size: usize,
) -> DurabilityReport {
    let baseline = match store.snapshot() {
        Some(bytes) => match snapshot::decode(bytes, map, sid, block_size) {
            Some((_, wm)) => wm,
            None => {
                let mut report = DurabilityReport::default();
                report.violations.push(format!(
                    "snapshot generation {} does not decode",
                    store.snap_gen()
                ));
                return report;
            }
        },
        None => Watermarks::default(),
    };
    let mut report = audit_wal(&baseline, store.durable_delta(0));
    if store.durable_len() > store.log_len() {
        report.violations.push(format!(
            "durable watermark {} beyond log end {}",
            store.durable_len(),
            store.log_len()
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use tank_meta::wal::frame;

    fn log_of(recs: &[WalRecord]) -> Vec<u8> {
        let mut buf = Vec::new();
        for r in recs {
            frame(r, &mut buf);
        }
        buf
    }

    #[test]
    fn clean_log_is_safe() {
        let log = log_of(&[
            WalRecord::Incarnation(1),
            WalRecord::SessionWatermark(1),
            WalRecord::EpochWatermark(3),
            WalRecord::SessionWatermark(2),
            WalRecord::Incarnation(2),
            WalRecord::EpochWatermark(3),
        ]);
        let report = audit_wal(&Watermarks::default(), &log);
        assert!(report.safe(), "{:?}", report.violations);
        assert_eq!(report.incarnations, vec![1, 2]);
    }

    #[test]
    fn repeated_incarnation_is_flagged() {
        let log = log_of(&[WalRecord::Incarnation(2), WalRecord::Incarnation(2)]);
        let report = audit_wal(&Watermarks::default(), &log);
        assert!(!report.safe());
    }

    #[test]
    fn incarnation_below_snapshot_baseline_is_flagged() {
        let baseline = Watermarks {
            session: 0,
            epoch: 0,
            incarnation: 5,
        };
        let log = log_of(&[WalRecord::Incarnation(4)]);
        assert!(!audit_wal(&baseline, &log).safe());
    }

    #[test]
    fn watermark_regressions_are_flagged() {
        let log = log_of(&[
            WalRecord::SessionWatermark(4),
            WalRecord::SessionWatermark(3),
        ]);
        assert!(!audit_wal(&Watermarks::default(), &log).safe());
        let log = log_of(&[WalRecord::EpochWatermark(9), WalRecord::EpochWatermark(2)]);
        assert!(!audit_wal(&Watermarks::default(), &log).safe());
    }

    #[test]
    fn double_mint_is_flagged() {
        let ino = tank_proto::Ino(7);
        let log = log_of(&[
            WalRecord::Create {
                parent: tank_proto::Ino(1),
                name: "a".into(),
                now: 0,
                ino,
            },
            WalRecord::Incarnation(2),
            WalRecord::Create {
                parent: tank_proto::Ino(1),
                name: "b".into(),
                now: 1,
                ino,
            },
        ]);
        let report = audit_wal(&Watermarks::default(), &log);
        assert!(!report.safe());
        assert!(report.violations[0].contains("minted twice"));
    }

    #[test]
    fn defect_in_durable_prefix_is_flagged() {
        let mut log = log_of(&[WalRecord::Incarnation(1), WalRecord::Incarnation(2)]);
        let idx = log.len() / 2;
        log[idx] ^= 0x40;
        assert!(!audit_wal(&Watermarks::default(), &log).safe());
    }
}
