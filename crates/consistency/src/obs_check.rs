//! Cross-check between the checker's event stream and the obs registry.
//!
//! The consistency checker and the observability layer watch the same run
//! through independent plumbing: the checker through `Effect::Observe`
//! events mapped per node, the registry through counters bumped at the
//! emission sites themselves. If the two disagree, one of the pipelines
//! is dropping or double-counting — exactly the kind of instrumentation
//! rot this module exists to catch before a perf PR trusts the numbers.

use tank_obs::{names, Snapshot};
use tank_proto::LockMode;
use tank_sim::{NodeId, SimTime};

use crate::event::Event;

/// Count events matching `pred`.
fn count(events: &[(SimTime, NodeId, Event)], pred: impl Fn(&Event) -> bool) -> u64 {
    events.iter().filter(|(_, _, e)| pred(e)).count() as u64
}

/// Compare the checker-facing event stream against an obs registry
/// snapshot of the same run. Returns one line per mismatch (empty =
/// the two instrumentation pipelines agree).
///
/// Only metrics with a 1:1 event counterpart are compared; purely
/// obs-side instruments (histograms, message counters) have no event to
/// check against.
pub fn cross_check(events: &[(SimTime, NodeId, Event)], snapshot: &Snapshot) -> Vec<String> {
    let discarded_dirty: u64 = events
        .iter()
        .map(|(_, _, e)| match e {
            Event::CacheInvalidated { discarded_dirty } => *discarded_dirty as u64,
            _ => 0,
        })
        .sum();
    let pairs: Vec<(&str, u64)> = vec![
        (
            names::CLIENT_PHASE_QUIESCE.name,
            count(events, |e| matches!(e, Event::Quiesced { .. })),
        ),
        (
            names::CLIENT_PHASE_RESUME.name,
            count(events, |e| matches!(e, Event::Resumed { .. })),
        ),
        (
            names::CLIENT_PHASE_INVALID.name,
            count(events, |e| matches!(e, Event::CacheInvalidated { .. })),
        ),
        (names::CLIENT_EXPIRY_DISCARDED_DIRTY.name, discarded_dirty),
        (
            names::SERVER_LOCK_GRANTED.name,
            count(events, |e| matches!(e, Event::LockGranted { .. })),
        ),
        (
            names::SERVER_LOCK_RELEASED.name,
            count(events, |e| matches!(e, Event::LockReleased { .. })),
        ),
        (
            names::SERVER_LOCK_STOLEN.name,
            count(events, |e| matches!(e, Event::LockStolen { .. })),
        ),
        (
            names::SERVER_DATALOCK_SHARED_GRANTS.name,
            count(events, |e| {
                matches!(
                    e,
                    Event::LockGranted {
                        mode: LockMode::SharedRead,
                        ..
                    }
                )
            }),
        ),
        (
            names::SERVER_DATALOCK_EXCLUSIVE_GRANTS.name,
            count(events, |e| {
                matches!(
                    e,
                    Event::LockGranted {
                        mode: LockMode::Exclusive,
                        ..
                    }
                )
            }),
        ),
        (
            names::CLIENT_CACHE_HITS.name,
            count(events, |e| {
                matches!(
                    e,
                    Event::ReadServed {
                        from_cache: true,
                        ..
                    }
                )
            }),
        ),
        (
            names::SERVER_DELIVERY_ERRORS.name,
            count(events, |e| matches!(e, Event::DeliveryError { .. })),
        ),
        (
            names::SERVER_CONDEMN_FIRED.name,
            count(events, |e| matches!(e, Event::LeaseExpired { .. })),
        ),
        (
            names::SERVER_FENCES.name,
            count(events, |e| matches!(e, Event::Fenced { .. })),
        ),
        (
            names::SERVER_SESSIONS.name,
            count(events, |e| matches!(e, Event::NewSession { .. })),
        ),
        (
            names::SERVER_RECOVERY_BEGAN.name,
            count(events, |e| matches!(e, Event::ServerRecovering)),
        ),
        (
            names::SERVER_RECOVERY_ENDED.name,
            count(events, |e| matches!(e, Event::ServerRecovered)),
        ),
    ];
    let mut mismatches = Vec::new();
    for (name, from_events) in pairs {
        let from_counter = snapshot.counter(name).unwrap_or(0);
        if from_counter != from_events {
            mismatches.push(format!(
                "{name}: counter={from_counter} but event stream says {from_events}"
            ));
        }
    }
    mismatches
}
