//! The offline checker.

use std::collections::{HashMap, HashSet};

use serde::Serialize;
use tank_proto::{BlockId, Ino, LockMode, NodeId, WriteTag};
use tank_sim::SimTime;

use crate::event::Event;

/// Checker configuration.
#[derive(Debug, Clone, Default)]
pub struct CheckOptions {
    /// Fail-stop crash times per client. Writes acknowledged before a
    /// crash are excused from the lost-update check: volatile state is
    /// legitimately lost with the machine (§1.2). Harnesses that restart
    /// clients record every crash instant.
    pub crashes: Vec<(NodeId, SimTime)>,
    /// Run end (defaults to the last event's timestamp if smaller).
    pub end: SimTime,
    /// Write-back grace: a final acked version younger than this at run
    /// end is *allowed* to still be dirty (the periodic flush simply has
    /// not come around yet) and is not counted as lost. Harnesses set
    /// this to a couple of flush intervals; zero means strict.
    pub grace_ns: u64,
    /// Fail-stop *restart* instants of metadata servers, per server node.
    /// Unlike client crashes these excuse nothing — the whole point of the
    /// recovery protocol is that server loss of volatile lock/lease state
    /// must not lose acknowledged data. Together with
    /// [`recovery_grace_ns`](Self::recovery_grace_ns) they let the
    /// checker flag grants issued
    /// before a restarted server could know they are safe, even in runs
    /// where the grace window was disabled and no recovery events exist.
    /// Each restart constrains only the server that took it: in a sharded
    /// cluster the other lock servers grant on, which is the isolation
    /// the sharding layer promises.
    pub server_restarts: Vec<(NodeId, SimTime)>,
    /// The minimum safe post-restart grant blackout, `τ(1+ε)`: every
    /// lease outstanding at the crash has provably expired after this
    /// long. Zero disables the restart-proximity check (the event-driven
    /// grants-during-recovery check still runs).
    pub recovery_grace_ns: u64,
    /// Shard topology: the lock-server node embodying each `ServerId`
    /// (index = id). Empty = unsharded; when set, the checker audits that
    /// every grant/steal/release a server emits is for an inode the
    /// rendezvous shard map assigns to *that* server — a grant from the
    /// wrong server is cross-shard interference, the failure mode that
    /// would let two authorities hand out conflicting locks.
    pub shard_servers: Vec<NodeId>,
    /// Warm-standby topology: `standby_servers[i]`, when present, is the
    /// node that may take over shard `i` via a failover election. Lock
    /// events from a promoted standby are audited against the same shard
    /// map slot as its primary — a standby granting locks for another
    /// shard's inode is the same cross-shard interference. Empty = no
    /// standbys (every earlier harness).
    pub standby_servers: Vec<Option<NodeId>>,
}

/// A write acknowledged to a local process that never reached shared
/// storage (§2.1's stranded dirty data).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LostUpdate {
    /// The client whose process was told the write succeeded.
    pub client: NodeId,
    /// File and block.
    pub ino: Ino,
    /// Block index.
    pub idx: u32,
    /// The lost version.
    pub tag: WriteTag,
    /// When it was acknowledged.
    pub acked_at: SimTime,
}

/// A read that returned a version older than one already hardened.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct StaleRead {
    /// The reading client.
    pub client: NodeId,
    /// File and block.
    pub ino: Ino,
    /// Block index.
    pub idx: u32,
    /// What the read returned.
    pub served: WriteTag,
    /// The newer version that was already on disk.
    pub newest_hardened: WriteTag,
    /// When the read was served.
    pub at: SimTime,
    /// Whether the stale data came from the local cache.
    pub from_cache: bool,
}

/// A block's hardened history going backwards in epoch order — the late
/// command fencing exists to stop, or concurrent unsynchronized writers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct WriteOrderViolation {
    /// The block.
    pub block: BlockId,
    /// The out-of-order (older) version that landed.
    pub landed: WriteTag,
    /// The newer version it overwrote.
    pub over: WriteTag,
    /// When.
    pub at: SimTime,
}

/// A lock grant a freshly-restarted server had no right to issue: either
/// inside its own announced recovery window, or (with
/// [`CheckOptions::recovery_grace_ns`]) sooner after a restart than every
/// pre-crash lease could have expired. A surviving holder may still be
/// writing under the old grant — this is how a restarted server loses
/// updates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EarlyGrant {
    /// The client granted the lock.
    pub client: NodeId,
    /// The locked file.
    pub ino: Ino,
    /// When the grant happened.
    pub at: SimTime,
    /// The server restart the grant followed too closely.
    pub restart_at: SimTime,
}

/// A lock event emitted by a server the shard map says does not govern
/// the inode. Two servers acting on one inode means two authorities can
/// hand out conflicting locks — per-server Theorem 3.1 is void.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CrossShardInterference {
    /// The server that acted out of its shard.
    pub server: NodeId,
    /// The server the shard map assigns the inode to.
    pub owner: NodeId,
    /// The client involved.
    pub client: NodeId,
    /// The inode acted on.
    pub ino: Ino,
    /// What the server did (`"grant"`, `"steal"`, `"release"`).
    pub what: &'static str,
    /// When.
    pub at: SimTime,
}

/// A lock-lifecycle event that breaks the per-epoch state machine a
/// *batched* control path must preserve: each granted epoch is held
/// exactly once until released or stolen. Vectored execution with
/// first-error-stops could, if miswired, replay a grant inside a
/// retransmitted batch or release an epoch the server never handed out
/// — either would mean a batch was not applied as an atomic prefix.
/// (A grant of a *different* epoch while one is held is a legitimate
/// in-place upgrade and is not flagged.)
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BatchAtomicityViolation {
    /// The server that emitted the inconsistent event.
    pub server: NodeId,
    /// The client the event names.
    pub client: NodeId,
    /// The inode.
    pub ino: Ino,
    /// The epoch the event carried.
    pub epoch: tank_proto::Epoch,
    /// What went wrong (`"duplicate same-epoch grant"`,
    /// `"release of non-held epoch"`, `"steal of non-held epoch"`).
    pub what: &'static str,
    /// When.
    pub at: SimTime,
}

/// A break of the cache-coherence contract (CACHING.md): a client cache
/// acted outside what its lease phase and lock mode permit. Three shapes,
/// distinguished by `what`:
///
/// * `"cache read while quiesced"` — a read was served from a local cache
///   whose governing lease lane had entered phase 3 (quiesce) or later;
///   once suspect, cached data may be stale the moment the server steals.
/// * `"dirty block at steal"` — the server stole a grant while the holder
///   still had an acknowledged, unhardened write under that grant's epoch
///   (phase 4 is supposed to flush everything before the lease can lapse).
///   Excused when the holder fail-stopped after the ack, like lost updates.
/// * `"write under SharedRead grant"` — a write was acknowledged into the
///   cache while the client's grant for the file was SharedRead; shared
///   grants license reading only.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CoherenceViolation {
    /// The client whose cache broke the contract.
    pub client: NodeId,
    /// File.
    pub ino: Ino,
    /// Block index.
    pub idx: u32,
    /// The version involved (served, stranded, or acked).
    pub tag: WriteTag,
    /// Which clause of the contract broke.
    pub what: &'static str,
    /// When.
    pub at: SimTime,
}

/// A window during which a client's lock request sat blocked.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct UnavailWindow {
    /// The waiting client.
    pub client: NodeId,
    /// The contested file.
    pub ino: Ino,
    /// When the request was queued.
    pub from: SimTime,
    /// When it was granted (`None`: never, within the run).
    pub until: Option<SimTime>,
}

/// Full audit of one run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct CheckReport {
    /// Stranded acknowledged writes.
    pub lost_updates: Vec<LostUpdate>,
    /// Reads that returned superseded data.
    pub stale_reads: Vec<StaleRead>,
    /// Epoch-order regressions on disk.
    pub write_order_violations: Vec<WriteOrderViolation>,
    /// Grants a restarted server issued before its recovery window closed.
    pub early_grants: Vec<EarlyGrant>,
    /// Lock events from servers outside their shard.
    pub cross_shard: Vec<CrossShardInterference>,
    /// Lock-lifecycle breaks the batch audit caught (duplicate grants,
    /// releases of epochs never held).
    pub batch_atomicity: Vec<BatchAtomicityViolation>,
    /// Cache-coherence contract breaks (quiesced-cache reads, dirty
    /// blocks surviving a steal, writes under shared grants).
    pub coherence: Vec<CoherenceViolation>,
    /// Server recovery windows observed in the event stream.
    pub server_recoveries: u64,
    /// Lock-wait windows.
    pub unavailability: Vec<UnavailWindow>,
    /// Operations denied by quiesced/dead clients.
    pub ops_denied: u64,
    /// Operations completed successfully.
    pub ops_ok: u64,
    /// Operations failed (any error).
    pub ops_failed: u64,
    /// I/Os rejected by fences (a *success* of the fencing mechanism).
    pub fence_rejections: u64,
    /// Dirty blocks discarded at cache invalidations (should equal the
    /// number of lost updates attributable to invalidation).
    pub dirty_discarded: u64,
    /// Total reads audited.
    pub reads_checked: u64,
    /// Total distinct write versions acknowledged.
    pub writes_acked: u64,
}

impl CheckReport {
    /// True when no safety property was violated. (Unavailability is a
    /// liveness observation, not a safety violation.)
    pub fn safe(&self) -> bool {
        self.lost_updates.is_empty()
            && self.stale_reads.is_empty()
            && self.write_order_violations.is_empty()
            && self.early_grants.is_empty()
            && self.cross_shard.is_empty()
            && self.batch_atomicity.is_empty()
            && self.coherence.is_empty()
    }
}

/// The checker. Feed it a full observation stream, get a report.
pub struct Checker {
    opts: CheckOptions,
}

impl Checker {
    /// Checker with options.
    pub fn new(opts: CheckOptions) -> Self {
        Checker { opts }
    }

    /// If a shard topology was declared, verify the server that emitted a
    /// lock event is the one the rendezvous map assigns the inode to.
    fn audit_shard(
        &self,
        report: &mut CheckReport,
        server: NodeId,
        client: NodeId,
        ino: Ino,
        what: &'static str,
        at: SimTime,
    ) {
        let servers = &self.opts.shard_servers;
        if servers.is_empty() {
            return;
        }
        // Resolve the emitting node to the shard slot it embodies: its
        // primary position, or the shard whose standby it is (a promoted
        // standby speaks for its primary's slot). Unknown nodes are not
        // audited — they are not part of the declared topology.
        let slot = servers.iter().position(|s| *s == server).or_else(|| {
            self.opts
                .standby_servers
                .iter()
                .position(|s| *s == Some(server))
        });
        let Some(slot) = slot else { return };
        let map = tank_shard::ShardMap::new(servers.len() as u16);
        let owner_slot = map.owner_of(ino).0 as usize;
        let owner = servers[owner_slot];
        if owner_slot != slot {
            report.cross_shard.push(CrossShardInterference {
                server,
                owner,
                client,
                ino,
                what,
                at,
            });
        }
    }

    /// Audit a run.
    pub fn run(&self, events: &[(SimTime, NodeId, Event)]) -> CheckReport {
        let mut report = CheckReport::default();

        // Last acknowledged write per (client, ino, idx).
        let mut last_acked: HashMap<(NodeId, Ino, u32), (WriteTag, SimTime)> = HashMap::new();
        // Every hardened tag (for lost-update lookup).
        let mut hardened_tags: HashMap<WriteTag, SimTime> = HashMap::new();
        // tag → (ino, idx) learned from acks (for locating hardened events).
        let mut tag_location: HashMap<WriteTag, (Ino, u32)> = HashMap::new();
        // Newest hardened version per (ino, idx) as the scan advances.
        let mut newest_on_disk: HashMap<(Ino, u32), WriteTag> = HashMap::new();
        // Newest hardened version per raw block (order check).
        let mut newest_per_block: HashMap<BlockId, WriteTag> = HashMap::new();
        // Open lock-wait windows.
        let mut open_waits: HashMap<(NodeId, Ino), SimTime> = HashMap::new();
        // Server recovery windows currently open, per server node
        // (restart instant). Sharded clusters recover independently.
        let mut recovering_since: HashMap<NodeId, SimTime> = HashMap::new();
        // Batch-atomicity audit: the epoch each (server, client, ino)
        // currently holds, per the server's own event stream. Epochs are
        // per-server unique for the life of the run (the epoch counter
        // survives restarts), so a same-epoch re-grant can only mean a
        // replayed batch element.
        let mut held_epoch: HashMap<(NodeId, NodeId, Ino), tank_proto::Epoch> = HashMap::new();
        // Coherence audit: lease lanes currently quiesced, per (client,
        // shard); the lock mode each client's current grant carries, per
        // (client, ino); and acked-but-unhardened versions, per (client,
        // ino, idx) — the write-back queue as the event stream shows it.
        let mut quiesced: HashSet<(NodeId, u16)> = HashSet::new();
        let mut granted_mode: HashMap<(NodeId, Ino), LockMode> = HashMap::new();
        let mut unhardened: HashMap<(NodeId, Ino, u32), (WriteTag, SimTime)> = HashMap::new();
        // The shard an ino's lease lane answers to. Clients stamp lane
        // events with rendezvous shard ids, so mirror their map; with no
        // declared topology every ino maps to the one shard 0.
        let shard_count = self.opts.shard_servers.len().max(1) as u16;
        let shard_of = |ino: Ino| tank_shard::ShardMap::new(shard_count).owner_of(ino).0;

        for (t, node, ev) in events {
            match ev {
                Event::WriteAcked { ino, idx, tag } => {
                    report.writes_acked += 1;
                    last_acked.insert((*node, *ino, *idx), (*tag, *t));
                    tag_location.insert(*tag, (*ino, *idx));
                    unhardened.insert((*node, *ino, *idx), (*tag, *t));
                    if granted_mode.get(&(*node, *ino)) == Some(&LockMode::SharedRead) {
                        report.coherence.push(CoherenceViolation {
                            client: *node,
                            ino: *ino,
                            idx: *idx,
                            tag: *tag,
                            what: "write under SharedRead grant",
                            at: *t,
                        });
                    }
                }
                Event::Hardened { block, tag, .. } => {
                    hardened_tags.insert(*tag, *t);
                    // Order check per physical block.
                    match newest_per_block.get(block) {
                        Some(cur) if tag.order_key() < cur.order_key() => {
                            report.write_order_violations.push(WriteOrderViolation {
                                block: *block,
                                landed: *tag,
                                over: *cur,
                                at: *t,
                            });
                        }
                        Some(cur) if tag.order_key() >= cur.order_key() => {
                            newest_per_block.insert(*block, *tag);
                        }
                        _ => {
                            newest_per_block.insert(*block, *tag);
                        }
                    }
                    if let Some(loc) = tag_location.get(tag) {
                        let entry = newest_on_disk.entry(*loc).or_default();
                        if tag.order_key() > entry.order_key() {
                            *entry = *tag;
                        }
                    }
                }
                Event::ReadServed {
                    ino,
                    idx,
                    tag,
                    from_cache,
                } => {
                    report.reads_checked += 1;
                    // Coherence: a cache whose lane is suspect (phase 3+)
                    // must not serve — the server may already be stealing.
                    if *from_cache && quiesced.contains(&(*node, shard_of(*ino))) {
                        report.coherence.push(CoherenceViolation {
                            client: *node,
                            ino: *ino,
                            idx: *idx,
                            tag: *tag,
                            what: "cache read while quiesced",
                            at: *t,
                        });
                    }
                    if let Some(newest) = newest_on_disk.get(&(*ino, *idx)) {
                        if newest.order_key() > tag.order_key() {
                            report.stale_reads.push(StaleRead {
                                client: *node,
                                ino: *ino,
                                idx: *idx,
                                served: *tag,
                                newest_hardened: *newest,
                                at: *t,
                                from_cache: *from_cache,
                            });
                        }
                    }
                }
                Event::OpCompleted { ok, err, .. } => {
                    if *ok {
                        report.ops_ok += 1;
                    } else if err.as_deref() == Some("Suspended") {
                        report.ops_denied += 1;
                    } else {
                        report.ops_failed += 1;
                    }
                }
                Event::CacheInvalidated { discarded_dirty } => {
                    report.dirty_discarded += *discarded_dirty as u64;
                }
                Event::FenceRejected { .. } => {
                    report.fence_rejections += 1;
                }
                Event::RequestBlocked { client, ino } => {
                    open_waits.entry((*client, *ino)).or_insert(*t);
                }
                Event::LockGranted {
                    client,
                    ino,
                    epoch,
                    mode,
                } => {
                    granted_mode.insert((*client, *ino), *mode);
                    // Batch audit: a grant must mint a fresh epoch. Seeing
                    // the *same* epoch granted again means a batch element
                    // was executed twice (replay through the vectored
                    // path). A different epoch is an upgrade and simply
                    // replaces the held one — upgrades emit no release.
                    match held_epoch.get(&(*node, *client, *ino)) {
                        Some(held) if held == epoch => {
                            report.batch_atomicity.push(BatchAtomicityViolation {
                                server: *node,
                                client: *client,
                                ino: *ino,
                                epoch: *epoch,
                                what: "duplicate same-epoch grant",
                                at: *t,
                            });
                        }
                        _ => {
                            held_epoch.insert((*node, *client, *ino), *epoch);
                        }
                    }
                    if let Some(from) = open_waits.remove(&(*client, *ino)) {
                        report.unavailability.push(UnavailWindow {
                            client: *client,
                            ino: *ino,
                            from,
                            until: Some(*t),
                        });
                    }
                    // A grant inside the granting server's announced
                    // recovery window, or closer to one of *its* known
                    // restarts than τ(1+ε), is unsafe. Restarts of other
                    // shards do not blacklist this server's grants.
                    let restart_at = recovering_since.get(node).copied().or_else(|| {
                        if self.opts.recovery_grace_ns == 0 {
                            return None;
                        }
                        self.opts
                            .server_restarts
                            .iter()
                            .filter(|(srv, _)| srv == node)
                            .map(|(_, r)| *r)
                            .filter(|r| r.0 <= t.0 && t.0 < r.0 + self.opts.recovery_grace_ns)
                            .max()
                    });
                    if let Some(restart_at) = restart_at {
                        report.early_grants.push(EarlyGrant {
                            client: *client,
                            ino: *ino,
                            at: *t,
                            restart_at,
                        });
                    }
                    self.audit_shard(&mut report, *node, *client, *ino, "grant", *t);
                }
                Event::LockStolen { client, ino, epoch } => {
                    granted_mode.remove(&(*client, *ino));
                    // Coherence: phase 4 hardens every dirty block before
                    // the lease can lapse, and the server only steals after
                    // lapse — so an acked write whose version has not
                    // reached disk by the steal is stranded under a grant
                    // that no longer exists. Hardened-ness is judged by
                    // tag, exactly as the lost-update pass judges it at
                    // run end. A fail-stop after the ack is excused (same
                    // semantics there too).
                    let mut stranded: Vec<(u32, WriteTag, SimTime)> = unhardened
                        .iter()
                        .filter(|((c, i, _), (w, _))| c == client && i == ino && w.epoch == *epoch)
                        .map(|((_, _, idx), (w, acked_at))| (*idx, *w, *acked_at))
                        .collect();
                    stranded.sort_by_key(|(idx, _, _)| *idx);
                    for (idx, w, acked_at) in stranded {
                        unhardened.remove(&(*client, *ino, idx));
                        if hardened_tags.contains_key(&w) {
                            continue;
                        }
                        let crashed = self
                            .opts
                            .crashes
                            .iter()
                            .any(|(c, tc)| c == client && *tc >= acked_at);
                        if crashed {
                            continue;
                        }
                        report.coherence.push(CoherenceViolation {
                            client: *client,
                            ino: *ino,
                            idx,
                            tag: w,
                            what: "dirty block at steal",
                            at: *t,
                        });
                    }
                    // Batch audit: a server can only steal what its own
                    // stream says is held.
                    if held_epoch.get(&(*node, *client, *ino)) == Some(epoch) {
                        held_epoch.remove(&(*node, *client, *ino));
                    } else {
                        report.batch_atomicity.push(BatchAtomicityViolation {
                            server: *node,
                            client: *client,
                            ino: *ino,
                            epoch: *epoch,
                            what: "steal of non-held epoch",
                            at: *t,
                        });
                    }
                    self.audit_shard(&mut report, *node, *client, *ino, "steal", *t);
                }
                Event::LockReleased { client, ino, epoch } => {
                    granted_mode.remove(&(*client, *ino));
                    // Batch audit: a release for an epoch the server's own
                    // stream does not show as held means a batched
                    // LockRelease was applied out of the recorded order
                    // (or twice). The server only emits this event when
                    // the holder matched, so in a correct run it always
                    // pairs with the latest grant.
                    if held_epoch.get(&(*node, *client, *ino)) == Some(epoch) {
                        held_epoch.remove(&(*node, *client, *ino));
                    } else {
                        report.batch_atomicity.push(BatchAtomicityViolation {
                            server: *node,
                            client: *client,
                            ino: *ino,
                            epoch: *epoch,
                            what: "release of non-held epoch",
                            at: *t,
                        });
                    }
                }
                Event::ServerRecovering => {
                    report.server_recoveries += 1;
                    recovering_since.insert(*node, *t);
                }
                Event::ServerRecovered => {
                    recovering_since.remove(node);
                }
                Event::Quiesced { shard } => {
                    quiesced.insert((*node, *shard));
                }
                Event::Resumed { shard } => {
                    quiesced.remove(&(*node, *shard));
                }
                _ => {}
            }
        }

        // Never-granted waits.
        for ((client, ino), from) in open_waits {
            report.unavailability.push(UnavailWindow {
                client,
                ino,
                from,
                until: None,
            });
        }
        report
            .unavailability
            .sort_by_key(|w| (w.from, w.client, w.ino));

        // Lost updates: final acked versions that never hardened.
        let end = events
            .last()
            .map(|(t, _, _)| *t)
            .unwrap_or(SimTime::ZERO)
            .max(self.opts.end);
        for ((client, ino, idx), (tag, acked_at)) in last_acked {
            if hardened_tags.contains_key(&tag) {
                continue;
            }
            // Within the write-back grace at run end: legitimately dirty.
            if acked_at.0 + self.opts.grace_ns > end.0 {
                continue;
            }
            // Excused when the client fail-stopped after the ack: volatile
            // loss is the accepted semantics of a crash.
            let crashed = self
                .opts
                .crashes
                .iter()
                .any(|(c, tc)| *c == client && *tc >= acked_at);
            if crashed {
                continue;
            }
            report.lost_updates.push(LostUpdate {
                client,
                ino,
                idx,
                tag,
                acked_at,
            });
        }
        report
            .lost_updates
            .sort_by_key(|l| (l.acked_at, l.client.0, l.ino, l.idx));
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tank_proto::Epoch;

    const C1: NodeId = NodeId(10);
    const C2: NodeId = NodeId(11);
    const F: Ino = Ino(1);
    const B: BlockId = BlockId(100);

    fn tag(writer: NodeId, epoch: u64, wseq: u64) -> WriteTag {
        WriteTag {
            writer,
            epoch: Epoch(epoch),
            wseq,
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn check(events: Vec<(SimTime, NodeId, Event)>) -> CheckReport {
        Checker::new(CheckOptions::default()).run(&events)
    }

    #[test]
    fn grace_window_excuses_recent_dirty_data() {
        let w = tag(C1, 1, 1);
        let events = vec![(
            t(1000),
            C1,
            Event::WriteAcked {
                ino: F,
                idx: 0,
                tag: w,
            },
        )];
        // Strict: lost. With 5s grace and end at 2s: excused. With end at
        // 30s: lost again (it had plenty of time to flush).
        assert_eq!(check(events.clone()).lost_updates.len(), 1);
        let lenient = Checker::new(CheckOptions {
            end: t(2000),
            grace_ns: 5_000_000_000,
            ..Default::default()
        });
        assert!(lenient.run(&events).safe());
        let late_end = Checker::new(CheckOptions {
            end: t(30_000),
            grace_ns: 5_000_000_000,
            ..Default::default()
        });
        assert_eq!(late_end.run(&events).lost_updates.len(), 1);
    }

    #[test]
    fn clean_write_flush_read_is_safe() {
        let w = tag(C1, 1, 1);
        let events = vec![
            (
                t(1),
                C1,
                Event::WriteAcked {
                    ino: F,
                    idx: 0,
                    tag: w,
                },
            ),
            (
                t(2),
                NodeId(0),
                Event::Hardened {
                    initiator: C1,
                    block: B,
                    tag: w,
                    previous: WriteTag::default(),
                },
            ),
            (
                t(3),
                C2,
                Event::ReadServed {
                    ino: F,
                    idx: 0,
                    tag: w,
                    from_cache: false,
                },
            ),
        ];
        let r = check(events);
        assert!(r.safe(), "{r:?}");
        assert_eq!(r.writes_acked, 1);
        assert_eq!(r.reads_checked, 1);
    }

    #[test]
    fn unhardened_final_write_is_a_lost_update() {
        let w = tag(C1, 1, 1);
        let r = check(vec![(
            t(1),
            C1,
            Event::WriteAcked {
                ino: F,
                idx: 0,
                tag: w,
            },
        )]);
        assert_eq!(r.lost_updates.len(), 1);
        assert_eq!(r.lost_updates[0].tag, w);
        assert!(!r.safe());
    }

    #[test]
    fn coalesced_intermediate_versions_are_not_lost() {
        // Two acked writes to the same block; only the newer hardens
        // (write-back coalescing) — that is correct behaviour.
        let w1 = tag(C1, 1, 1);
        let w2 = tag(C1, 1, 2);
        let r = check(vec![
            (
                t(1),
                C1,
                Event::WriteAcked {
                    ino: F,
                    idx: 0,
                    tag: w1,
                },
            ),
            (
                t(2),
                C1,
                Event::WriteAcked {
                    ino: F,
                    idx: 0,
                    tag: w2,
                },
            ),
            (
                t(3),
                NodeId(0),
                Event::Hardened {
                    initiator: C1,
                    block: B,
                    tag: w2,
                    previous: WriteTag::default(),
                },
            ),
        ]);
        assert!(r.safe(), "{r:?}");
    }

    #[test]
    fn crash_excuses_pending_writes() {
        let w = tag(C1, 1, 1);
        let events = vec![(
            t(1),
            C1,
            Event::WriteAcked {
                ino: F,
                idx: 0,
                tag: w,
            },
        )];
        let r = Checker::new(CheckOptions {
            crashes: vec![(C1, t(5))],
            ..Default::default()
        })
        .run(&events);
        assert!(r.safe(), "volatile loss at crash is excused");
        // But a crash *before* the ack excuses nothing.
        let r = Checker::new(CheckOptions {
            crashes: vec![(C1, t(0))],
            ..Default::default()
        })
        .run(&events);
        assert_eq!(r.lost_updates.len(), 1);
    }

    #[test]
    fn read_of_superseded_version_is_stale() {
        let old = tag(C1, 1, 1);
        let new = tag(C2, 2, 1);
        let r = check(vec![
            (
                t(1),
                C1,
                Event::WriteAcked {
                    ino: F,
                    idx: 0,
                    tag: old,
                },
            ),
            (
                t(2),
                NodeId(0),
                Event::Hardened {
                    initiator: C1,
                    block: B,
                    tag: old,
                    previous: WriteTag::default(),
                },
            ),
            (
                t(3),
                C2,
                Event::WriteAcked {
                    ino: F,
                    idx: 0,
                    tag: new,
                },
            ),
            (
                t(4),
                NodeId(0),
                Event::Hardened {
                    initiator: C2,
                    block: B,
                    tag: new,
                    previous: old,
                },
            ),
            // C1, fenced and oblivious, serves its stale cache.
            (
                t(5),
                C1,
                Event::ReadServed {
                    ino: F,
                    idx: 0,
                    tag: old,
                    from_cache: true,
                },
            ),
        ]);
        assert_eq!(r.stale_reads.len(), 1);
        assert_eq!(r.stale_reads[0].served, old);
        assert_eq!(r.stale_reads[0].newest_hardened, new);
        assert!(r.stale_reads[0].from_cache);
    }

    #[test]
    fn read_before_the_newer_harden_is_fine() {
        let old = tag(C1, 1, 1);
        let new = tag(C2, 2, 1);
        let r = check(vec![
            (
                t(1),
                C1,
                Event::WriteAcked {
                    ino: F,
                    idx: 0,
                    tag: old,
                },
            ),
            (
                t(2),
                NodeId(0),
                Event::Hardened {
                    initiator: C1,
                    block: B,
                    tag: old,
                    previous: WriteTag::default(),
                },
            ),
            (
                t(3),
                C1,
                Event::ReadServed {
                    ino: F,
                    idx: 0,
                    tag: old,
                    from_cache: true,
                },
            ),
            (
                t(4),
                C2,
                Event::WriteAcked {
                    ino: F,
                    idx: 0,
                    tag: new,
                },
            ),
            (
                t(5),
                NodeId(0),
                Event::Hardened {
                    initiator: C2,
                    block: B,
                    tag: new,
                    previous: old,
                },
            ),
        ]);
        assert!(r.safe(), "{r:?}");
    }

    #[test]
    fn late_write_from_old_epoch_is_an_order_violation() {
        let old = tag(C1, 1, 5);
        let new = tag(C2, 2, 1);
        let r = check(vec![
            (
                t(1),
                NodeId(0),
                Event::Hardened {
                    initiator: C2,
                    block: B,
                    tag: new,
                    previous: WriteTag::default(),
                },
            ),
            // C1's late command lands after C2's newer write.
            (
                t(2),
                NodeId(0),
                Event::Hardened {
                    initiator: C1,
                    block: B,
                    tag: old,
                    previous: new,
                },
            ),
        ]);
        assert_eq!(r.write_order_violations.len(), 1);
        assert_eq!(r.write_order_violations[0].landed, old);
        assert_eq!(r.write_order_violations[0].over, new);
    }

    #[test]
    fn unavailability_windows_open_and_close() {
        let r = check(vec![
            (
                t(10),
                NodeId(0),
                Event::RequestBlocked { client: C2, ino: F },
            ),
            (
                t(500),
                NodeId(0),
                Event::LockGranted {
                    client: C2,
                    ino: F,
                    epoch: Epoch(2),
                    mode: tank_proto::LockMode::Exclusive,
                },
            ),
            (
                t(600),
                NodeId(0),
                Event::RequestBlocked { client: C1, ino: F },
            ),
        ]);
        assert_eq!(r.unavailability.len(), 2);
        assert_eq!(r.unavailability[0].from, t(10));
        assert_eq!(r.unavailability[0].until, Some(t(500)));
        assert_eq!(r.unavailability[1].until, None, "never granted");
    }

    #[test]
    fn op_accounting() {
        let r = check(vec![
            (
                t(1),
                C1,
                Event::OpCompleted {
                    op: tank_proto::OpId(1),
                    kind: "read",
                    ok: true,
                    err: None,
                },
            ),
            (
                t(2),
                C1,
                Event::OpCompleted {
                    op: tank_proto::OpId(2),
                    kind: "read",
                    ok: false,
                    err: Some("Suspended".into()),
                },
            ),
            (
                t(3),
                C1,
                Event::OpCompleted {
                    op: tank_proto::OpId(3),
                    kind: "read",
                    ok: false,
                    err: Some("NotFound".into()),
                },
            ),
            (
                t(4),
                C1,
                Event::FenceRejected {
                    initiator: C1,
                    was_write: true,
                },
            ),
            (t(5), C1, Event::CacheInvalidated { discarded_dirty: 3 }),
        ]);
        assert_eq!(r.ops_ok, 1);
        assert_eq!(r.ops_denied, 1);
        assert_eq!(r.ops_failed, 1);
        assert_eq!(r.fence_rejections, 1);
        assert_eq!(r.dirty_discarded, 3);
    }

    #[test]
    fn duplicate_same_epoch_grant_is_a_batch_violation() {
        // A replayed batch element re-granting the identical epoch is the
        // signature of vectored execution applying a prefix twice.
        let grant = Event::LockGranted {
            client: C1,
            ino: F,
            epoch: Epoch(7),
            mode: tank_proto::LockMode::Exclusive,
        };
        let r = check(vec![
            (t(1), NodeId(0), grant.clone()),
            (t(2), NodeId(0), grant),
        ]);
        assert_eq!(r.batch_atomicity.len(), 1);
        assert_eq!(r.batch_atomicity[0].what, "duplicate same-epoch grant");
        assert_eq!(r.batch_atomicity[0].epoch, Epoch(7));
        assert!(!r.safe());
    }

    #[test]
    fn upgrade_grant_replaces_epoch_without_violation() {
        // SharedRead → Exclusive upgrade mints a fresh epoch with no
        // interleaved release event; the audit must treat it as a
        // legitimate in-place replace, and the eventual release of the
        // *new* epoch closes the ledger.
        let r = check(vec![
            (
                t(1),
                NodeId(0),
                Event::LockGranted {
                    client: C1,
                    ino: F,
                    epoch: Epoch(1),
                    mode: tank_proto::LockMode::SharedRead,
                },
            ),
            (
                t(2),
                NodeId(0),
                Event::LockGranted {
                    client: C1,
                    ino: F,
                    epoch: Epoch(2),
                    mode: tank_proto::LockMode::Exclusive,
                },
            ),
            (
                t(3),
                NodeId(0),
                Event::LockReleased {
                    client: C1,
                    ino: F,
                    epoch: Epoch(2),
                },
            ),
        ]);
        assert!(r.safe(), "{r:?}");
        assert!(r.batch_atomicity.is_empty());
    }

    #[test]
    fn release_of_non_held_epoch_is_a_batch_violation() {
        // Releasing epoch 1 after the upgrade to epoch 2 (or with no
        // grant at all) means a batched LockRelease ran against state the
        // recorded order never produced.
        let r = check(vec![
            (
                t(1),
                NodeId(0),
                Event::LockGranted {
                    client: C1,
                    ino: F,
                    epoch: Epoch(2),
                    mode: tank_proto::LockMode::Exclusive,
                },
            ),
            (
                t(2),
                NodeId(0),
                Event::LockReleased {
                    client: C1,
                    ino: F,
                    epoch: Epoch(1),
                },
            ),
        ]);
        assert_eq!(r.batch_atomicity.len(), 1);
        assert_eq!(r.batch_atomicity[0].what, "release of non-held epoch");
        assert!(!r.safe());
    }

    #[test]
    fn grant_release_cycles_and_steals_stay_clean() {
        // The normal lifecycle — grant, voluntary release, re-grant,
        // steal — closes every epoch exactly once.
        let r = check(vec![
            (
                t(1),
                NodeId(0),
                Event::LockGranted {
                    client: C1,
                    ino: F,
                    epoch: Epoch(1),
                    mode: tank_proto::LockMode::Exclusive,
                },
            ),
            (
                t(2),
                NodeId(0),
                Event::LockReleased {
                    client: C1,
                    ino: F,
                    epoch: Epoch(1),
                },
            ),
            (
                t(3),
                NodeId(0),
                Event::LockGranted {
                    client: C1,
                    ino: F,
                    epoch: Epoch(2),
                    mode: tank_proto::LockMode::Exclusive,
                },
            ),
            (
                t(4),
                NodeId(0),
                Event::LockStolen {
                    client: C1,
                    ino: F,
                    epoch: Epoch(2),
                },
            ),
        ]);
        assert!(r.safe(), "{r:?}");
        assert!(r.batch_atomicity.is_empty());
    }

    #[test]
    fn cache_read_while_quiesced_is_flagged() {
        // Phase 3 means stop serving from cache; a from_cache read in the
        // window between Quiesced and Resumed breaks the contract, while
        // the same read after Resumed (or from the SAN) is fine.
        let w = tag(C1, 1, 1);
        let served = |from_cache| Event::ReadServed {
            ino: F,
            idx: 0,
            tag: w,
            from_cache,
        };
        let r = check(vec![
            (t(1), C1, Event::Quiesced { shard: 0 }),
            (t(2), C1, served(true)),
            (t(3), C1, served(false)),
            (t(4), C1, Event::Resumed { shard: 0 }),
            (t(5), C1, served(true)),
        ]);
        assert_eq!(r.coherence.len(), 1, "{r:?}");
        assert_eq!(r.coherence[0].what, "cache read while quiesced");
        assert_eq!(r.coherence[0].at, t(2));
        assert!(!r.safe());
    }

    #[test]
    fn quiesce_of_another_clients_lane_does_not_taint_reads() {
        let w = tag(C1, 1, 1);
        let r = check(vec![
            (t(1), C2, Event::Quiesced { shard: 0 }),
            (
                t(2),
                C1,
                Event::ReadServed {
                    ino: F,
                    idx: 0,
                    tag: w,
                    from_cache: true,
                },
            ),
        ]);
        assert!(r.coherence.is_empty(), "{r:?}");
    }

    #[test]
    fn dirty_block_at_steal_is_flagged_unless_crashed() {
        // An acked write under epoch 1 that never hardened before the
        // server stole epoch 1: phase 4 failed its one job. The same
        // stream with a client crash after the ack is excused.
        let w = tag(C1, 1, 1);
        let events = vec![
            (
                t(1),
                C1,
                Event::WriteAcked {
                    ino: F,
                    idx: 0,
                    tag: w,
                },
            ),
            (
                t(2),
                NodeId(0),
                Event::LockStolen {
                    client: C1,
                    ino: F,
                    epoch: Epoch(1),
                },
            ),
        ];
        let r = check(events.clone());
        let dirty: Vec<_> = r
            .coherence
            .iter()
            .filter(|c| c.what == "dirty block at steal")
            .collect();
        assert_eq!(dirty.len(), 1, "{r:?}");
        assert_eq!(dirty[0].tag, w);
        let excused = Checker::new(CheckOptions {
            crashes: vec![(C1, t(1))],
            ..Default::default()
        })
        .run(&events);
        assert!(excused.coherence.is_empty(), "{excused:?}");
    }

    #[test]
    fn flushed_block_survives_steal_cleanly() {
        // The normal phase-4 story: ack, harden, then the steal finds
        // nothing dirty.
        let w = tag(C1, 1, 1);
        let r = check(vec![
            (
                t(1),
                C1,
                Event::WriteAcked {
                    ino: F,
                    idx: 0,
                    tag: w,
                },
            ),
            (
                t(2),
                NodeId(0),
                Event::Hardened {
                    initiator: C1,
                    block: B,
                    tag: w,
                    previous: WriteTag::default(),
                },
            ),
            (
                t(3),
                NodeId(0),
                Event::LockStolen {
                    client: C1,
                    ino: F,
                    epoch: Epoch(1),
                },
            ),
        ]);
        assert!(r.coherence.is_empty(), "{r:?}");
    }

    #[test]
    fn write_under_shared_grant_is_flagged() {
        // SharedRead licenses reading only; a write ack under it is the
        // cache acting beyond its grant. After the upgrade to Exclusive
        // the same write is legitimate.
        let w1 = tag(C1, 1, 1);
        let w2 = tag(C1, 2, 1);
        let r = check(vec![
            (
                t(1),
                NodeId(0),
                Event::LockGranted {
                    client: C1,
                    ino: F,
                    epoch: Epoch(1),
                    mode: tank_proto::LockMode::SharedRead,
                },
            ),
            (
                t(2),
                C1,
                Event::WriteAcked {
                    ino: F,
                    idx: 0,
                    tag: w1,
                },
            ),
            (
                t(3),
                NodeId(0),
                Event::LockGranted {
                    client: C1,
                    ino: F,
                    epoch: Epoch(2),
                    mode: tank_proto::LockMode::Exclusive,
                },
            ),
            (
                t(4),
                C1,
                Event::WriteAcked {
                    ino: F,
                    idx: 0,
                    tag: w2,
                },
            ),
            (
                t(5),
                NodeId(0),
                Event::Hardened {
                    initiator: C1,
                    block: B,
                    tag: w2,
                    previous: WriteTag::default(),
                },
            ),
        ]);
        assert_eq!(r.coherence.len(), 1, "{r:?}");
        assert_eq!(r.coherence[0].what, "write under SharedRead grant");
        assert_eq!(r.coherence[0].tag, w1);
    }

    #[test]
    fn same_tag_rewrite_is_not_a_violation() {
        // A retried SAN write of the same version may land twice.
        let w = tag(C1, 1, 1);
        let r = check(vec![
            (
                t(1),
                NodeId(0),
                Event::Hardened {
                    initiator: C1,
                    block: B,
                    tag: w,
                    previous: WriteTag::default(),
                },
            ),
            (
                t(2),
                NodeId(0),
                Event::Hardened {
                    initiator: C1,
                    block: B,
                    tag: w,
                    previous: w,
                },
            ),
        ]);
        assert!(r.safe(), "{r:?}");
    }
}
