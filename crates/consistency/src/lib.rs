//! History recording and offline safety checking.
//!
//! Nodes emit [`Event`]s through the simulator's observation stream; after
//! a run the [`Checker`] audits the full history for the failure modes the
//! paper's protocol exists to prevent:
//!
//! * **lost updates** — write-back data acknowledged to a local process
//!   that never reached shared storage (§2.1: "dirty data on C1 are
//!   stranded and never reach disk");
//! * **stale reads** — a read served (from cache or disk) returning a
//!   version older than one already hardened to shared storage (§2.1:
//!   fenced clients "continue to read and write data out of the cache, and
//!   any of these data may have been modified on another client");
//! * **write-order violations** — a block's hardened version history going
//!   backwards in lock-epoch order: the "late command" from a stolen-lock
//!   holder that fencing exists to stop (§6), or two unsynchronized
//!   writers interleaving (§2: "multiple writers without synchronization");
//! * **unavailability** — windows during which a client's conflicting lock
//!   request sat blocked (§2: a partition "can render major portions of a
//!   file system unavailable indefinitely").
//!
//! The version-tag scheme makes these checks exact: every write carries a
//! [`tank_proto::WriteTag`] whose `(epoch, wseq)` totally orders writes to
//! an inode (epochs order conflicting lock grants; `wseq` orders one
//! grant's writes), so "older" and "newer" are decidable without guessing.

pub mod checker;
pub mod durability;
pub mod event;
pub mod hb;
pub mod obs_check;

pub use checker::{
    CheckOptions, CheckReport, Checker, LostUpdate, StaleRead, UnavailWindow, WriteOrderViolation,
};
pub use durability::{audit_store, audit_wal, DurabilityReport};
pub use event::Event;
pub use hb::{Access, AccessKind, EdgeKind, HbGraph, HbOptions, HbReport, RacyPair, VClock};
pub use obs_check::cross_check;
