//! The unified observable event vocabulary.
//!
//! The cluster harness maps client, server, and disk node events into this
//! one enum so a single stream describes the whole run. Timestamps and
//! emitting nodes ride alongside in the simulator's observation tuples.

use serde::Serialize;
use tank_proto::{BlockId, Epoch, Ino, LockMode, NodeId, OpId, WriteTag};

/// One observable event. The emitting node and true timestamp are carried
/// by the world's observation stream, not duplicated here (except where
/// the *subject* differs from the emitter, e.g. a disk reporting on an
/// initiator).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Event {
    // ------------------------------------------------------------ client
    /// A local process submitted an operation.
    OpSubmitted {
        /// Operation id (unique per client).
        op: OpId,
        /// Operation kind label.
        kind: &'static str,
    },
    /// The operation finished.
    OpCompleted {
        /// Operation id.
        op: OpId,
        /// Operation kind label.
        kind: &'static str,
        /// Success flag.
        ok: bool,
        /// Denial/fault classification (stringly to avoid dependency
        /// cycles; values are `tank_client::FsErr` debug names).
        err: Option<String>,
    },
    /// A write was acknowledged into the write-back cache.
    WriteAcked {
        /// File.
        ino: Ino,
        /// Block index.
        idx: u32,
        /// Version written.
        tag: WriteTag,
    },
    /// A read was served to a local process for one block.
    ReadServed {
        /// File.
        ino: Ino,
        /// Block index.
        idx: u32,
        /// Version returned.
        tag: WriteTag,
        /// Served from local cache (true) or SAN (false).
        from_cache: bool,
    },
    /// The client discarded its cache; `discarded_dirty` dirty blocks had
    /// not been hardened.
    CacheInvalidated {
        /// Unhardened dirty blocks lost at invalidation.
        discarded_dirty: usize,
    },
    /// The client stopped admitting requests on one lease lane (phase 3).
    Quiesced {
        /// Shard (server index) whose lane quiesced.
        shard: u16,
    },
    /// The client resumed service on one lane.
    Resumed {
        /// Shard (server index) whose lane resumed.
        shard: u16,
    },
    /// Fail-stop crash of a client (emitted by the harness, which is the
    /// entity that injects it).
    Crashed {
        /// The crashed node.
        node: NodeId,
    },

    // ------------------------------------------------------------ server
    /// Lock granted.
    LockGranted {
        /// New holder.
        client: NodeId,
        /// File.
        ino: Ino,
        /// Grant epoch.
        epoch: Epoch,
        /// Mode.
        mode: LockMode,
    },
    /// Lock voluntarily released.
    LockReleased {
        /// Former holder.
        client: NodeId,
        /// File.
        ino: Ino,
        /// Epoch of the released grant.
        epoch: Epoch,
    },
    /// Lock stolen by recovery.
    LockStolen {
        /// Former holder.
        client: NodeId,
        /// File.
        ino: Ino,
        /// Epoch of the stolen grant.
        epoch: Epoch,
    },
    /// A conflicting lock request was queued.
    RequestBlocked {
        /// The waiting client.
        client: NodeId,
        /// Contested file.
        ino: Ino,
    },
    /// Delivery error declared for a client.
    DeliveryError {
        /// The unresponsive client.
        client: NodeId,
    },
    /// Server-side lease expiry for a client.
    LeaseExpired {
        /// The expired client.
        client: NodeId,
    },
    /// Fence in force for a client.
    Fenced {
        /// The fenced client.
        client: NodeId,
    },
    /// Fresh session established.
    NewSession {
        /// The client.
        client: NodeId,
    },
    /// The WAL's durable watermark advanced (group-commit fsync). Orders
    /// the durability point before every subsequently sent ACK.
    WalSynced {
        /// Durable log length in bytes after the fsync.
        durable: u64,
    },
    /// The server restarted after a fail-stop crash and entered its
    /// recovery grace window (no grants or mutations until every lease
    /// that might have been outstanding at the crash has expired).
    ServerRecovering,
    /// The server's recovery grace window closed; normal service resumed.
    ServerRecovered,

    // -------------------------------------------------------------- disk
    /// A write reached shared storage.
    Hardened {
        /// Writing initiator.
        initiator: NodeId,
        /// Block address.
        block: BlockId,
        /// Version hardened.
        tag: WriteTag,
        /// Version overwritten.
        previous: WriteTag,
    },
    /// A disk read was served (version visibility marker).
    DiskRead {
        /// Reading initiator.
        initiator: NodeId,
        /// Block address.
        block: BlockId,
        /// Version returned.
        tag: WriteTag,
    },
    /// A fence took effect at one disk for one initiator/range. Every
    /// earlier harden by that initiator inside the range happens-before
    /// this event (the disk processes commands serially).
    FenceInstalled {
        /// The fenced initiator.
        target: NodeId,
        /// First block covered by the fence.
        range_start: u64,
        /// One past the last block covered.
        range_end: u64,
    },
    /// An I/O was rejected by a fence.
    FenceRejected {
        /// The fenced initiator.
        initiator: NodeId,
        /// True for writes.
        was_write: bool,
    },
}
