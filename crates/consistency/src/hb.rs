//! Happens-before race auditor over the simulator's causal log.
//!
//! The paper's safety argument (Theorem 3.1) is an *ordering* claim: a
//! lease holder's last effect on shared storage precedes the next
//! holder's first observation of it. The main [`crate::Checker`] verifies
//! the *consequences* of that ordering (no stale reads, no lost updates);
//! this module verifies the ordering itself, so a violation can be
//! localized to the exact pair of events the protocol failed to order —
//! before (or even without) a stale read materializing.
//!
//! The engine assigns vector clocks to the causal records the simulator
//! logs (see [`tank_sim::CausalRecord`]), building the happens-before
//! relation from four edge families:
//!
//! * **program order** — consecutive records at one node. Disks are the
//!   deliberate exception: a disk serializes commands, but that
//!   serialization is exactly what the protocol may *not* rely on (a
//!   "late command" from a stolen-lock holder lands in the same serial
//!   stream), so disk records chain only within one dispatch and
//!   cross-dispatch order at a disk must be earned via messages or
//!   fences.
//! * **message edges** — each send to its deliveries (duplicates each
//!   get an edge).
//! * **fence edges** — a [`Event::FenceInstalled`] for client *c* is
//!   ordered after every earlier harden by *c* inside the fenced range
//!   at that disk: once the fence is in force, any not-yet-applied write
//!   would be rejected, so the applied ones precede it in every
//!   schedule.
//! * **expiry edges** — a server-side [`Event::LeaseExpired`] (and a
//!   recovery-grace [`Event::ServerRecovered`]) is ordered after the
//!   client's own latest [`Event::Quiesced`] on that shard's lane. This
//!   is Theorem 3.1 itself: the server waits `τ_s ≥ τ_c(1+ε)²`, so the
//!   holder's clock has expired the lease — and phase 3 quiesced the
//!   lane — strictly before the authority declares it dead.
//!
//! The WAL fsync→ACK edge needs no special casing: the server emits
//! [`Event::WalSynced`] and then sends the response *within one
//! dispatch*, so program order already places the durability point
//! before every acknowledgment it justifies (tank-lint L6 checks the
//! same property in source form).
//!
//! After the clocks are assigned, the auditor sweeps every conflicting
//! pair — a dirty-block harden against a consumed read or lock grant of
//! the same `(ino, block)` by a different node — and reports the pairs
//! the happens-before relation leaves unordered, rustc-style. "Consumed"
//! is load-bearing: reads anchor at the client's [`Event::ReadServed`],
//! not the disk-side [`Event::DiskRead`], because a SAN read can be
//! physically in flight while its lock is revoked — the client then
//! fails the op (`LeaseLost`) and discards the data, and for discarded
//! reads the safety net is epoch validation, not ordering.

use std::collections::{HashMap, HashSet, VecDeque};

use tank_proto::{Ino, WriteTag};
use tank_sim::{CausalRecord, NodeId, SimTime};

use crate::Event;

// ------------------------------------------------------- vector clocks

/// A vector clock over node components.
///
/// Components are dense by [`NodeId`] index. Only non-disk nodes tick
/// their own component (disk records have no total per-node order — see
/// the module docs); a disk record's clock is the merged causal past it
/// inherited, which is exactly what downstream queries need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// The zero clock over `width` node components.
    pub fn new(width: usize) -> VClock {
        VClock(vec![0; width])
    }

    /// This clock's entry for `node` (0 = has seen nothing of it).
    pub fn get(&self, node: NodeId) -> u64 {
        self.0.get(node.index()).copied().unwrap_or(0)
    }

    /// Set `node`'s component (used when a record ticks its own entry).
    pub fn set(&mut self, node: NodeId, v: u64) {
        self.0[node.index()] = v;
    }

    /// Pointwise maximum: afterwards `self` dominates both inputs.
    pub fn merge(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Whether this clock has seen `node`'s `seq`-th record. `seq` 0
    /// never counts: it is the "no own component" marker for disk
    /// records, which are queried through their outgoing messages
    /// instead.
    pub fn covers(&self, node: NodeId, seq: u64) -> bool {
        seq != 0 && self.get(node) >= seq
    }

    /// Pointwise `self >= other`.
    pub fn dominates(&self, other: &VClock) -> bool {
        let n = self.0.len().max(other.0.len());
        (0..n).all(|i| self.0.get(i).copied().unwrap_or(0) >= other.0.get(i).copied().unwrap_or(0))
    }

    /// Neither clock dominates the other: the records are concurrent.
    pub fn concurrent_with(&self, other: &VClock) -> bool {
        !self.dominates(other) && !other.dominates(self)
    }
}

// ------------------------------------------------------------- options

/// Which edge families the auditor builds, and the cluster topology it
/// needs to interpret events.
#[derive(Debug, Clone, Default)]
pub struct HbOptions {
    /// Disk nodes (program order is severed across dispatches here).
    pub disks: Vec<NodeId>,
    /// Every server node (primaries and standbys) with the shard it
    /// serves, for pairing `Quiesced{shard}` with that shard's expiry
    /// and recovery events.
    pub server_shards: Vec<(NodeId, u16)>,
    /// Build fence edges (sever as the negative control: steals lose
    /// their ordering and the auditor must fire).
    pub fence_edges: bool,
    /// Build lease-expiry and recovery-grace edges.
    pub expiry_edges: bool,
}

impl HbOptions {
    /// All edge families enabled for the given topology.
    pub fn new(disks: Vec<NodeId>, server_shards: Vec<(NodeId, u16)>) -> HbOptions {
        HbOptions {
            disks,
            server_shards,
            fence_edges: true,
            expiry_edges: true,
        }
    }
}

/// Why one record happens-before another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Program order at one node (for disks: within one dispatch).
    Po,
    /// A send to one of its deliveries.
    Msg,
    /// Hardened write → fence installation at the same disk.
    Fence,
    /// Client lane quiesce → server-side lease expiry / recovery end.
    Expiry,
}

// ------------------------------------------------------------ accesses

/// How a conflicting access touched the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A dirty block reached shared storage.
    Harden,
    /// An uncached read consumed by the client (value came off the SAN).
    DiskRead,
    /// A read served from a client's local cache.
    CacheRead,
    /// A lock grant over the whole inode (the next holder's entry
    /// point — everything it will do starts here).
    Grant,
}

impl AccessKind {
    fn label(self) -> &'static str {
        match self {
            AccessKind::Harden => "harden",
            AccessKind::DiskRead => "disk read",
            AccessKind::CacheRead => "cached read",
            AccessKind::Grant => "lock grant",
        }
    }
}

/// One block access relevant to the race sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Index of the access's record in the causal log.
    pub rec: usize,
    /// Node that emitted the observation (disk, client, or server).
    pub node: NodeId,
    /// Node the access is attributed to (writer, reader, or grantee).
    pub who: NodeId,
    /// File the block belongs to.
    pub ino: Ino,
    /// Block index within the file; `None` for whole-inode grants.
    pub idx: Option<u32>,
    /// Access flavour.
    pub kind: AccessKind,
    /// True time of the observation.
    pub at: SimTime,
}

impl std::fmt::Display for Access {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.idx {
            Some(idx) => write!(
                f,
                "{} of (ino {}, block {}) by {} at {}, t={:.3}s (record #{})",
                self.kind.label(),
                self.ino.0,
                idx,
                self.who,
                self.node,
                self.at.as_secs_f64(),
                self.rec
            ),
            None => write!(
                f,
                "{} of ino {} to {} at {}, t={:.3}s (record #{})",
                self.kind.label(),
                self.ino.0,
                self.who,
                self.node,
                self.at.as_secs_f64(),
                self.rec
            ),
        }
    }
}

/// A conflicting pair the happens-before relation leaves unordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RacyPair {
    /// The harden side.
    pub write: Access,
    /// The read or grant side.
    pub other: Access,
}

/// The auditor's verdict for one run.
#[derive(Debug, Clone, Default)]
pub struct HbReport {
    /// Causal records consumed.
    pub records: usize,
    /// Happens-before edges built.
    pub edges: usize,
    /// Block accesses that entered the sweep.
    pub accesses: usize,
    /// Conflicting pairs whose ordering was checked.
    pub pairs_checked: usize,
    /// Pairs left unordered — each one is a window in which the
    /// schedule, not the protocol, decided who won.
    pub racy: Vec<RacyPair>,
}

impl HbReport {
    /// No unordered conflicting pairs.
    pub fn ok(&self) -> bool {
        self.racy.is_empty()
    }

    /// One-line summary for logs and smoke output.
    pub fn summary(&self) -> String {
        format!(
            "hb: {} records, {} edges, {} accesses, {} pairs checked, {} racy",
            self.records,
            self.edges,
            self.accesses,
            self.pairs_checked,
            self.racy.len()
        )
    }

    /// Full rustc-style rendering of every racy pair.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for pair in &self.racy {
            let _ = writeln!(
                out,
                "error[hb]: conflicting accesses to ino {}{} are not ordered by happens-before",
                pair.write.ino.0,
                pair.write
                    .idx
                    .map(|i| format!(", block {i}"))
                    .unwrap_or_default()
            );
            let _ = writeln!(out, "  --> write: {}", pair.write);
            let _ = writeln!(out, "  --> other: {}", pair.other);
            let _ = writeln!(
                out,
                "  = note: no causal path connects these events in either direction;\n\
                 \x20         under a different schedule they could have landed in either order"
            );
        }
        let _ = writeln!(out, "{}", self.summary());
        out
    }
}

impl std::fmt::Display for HbReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

// -------------------------------------------------------------- graph

/// The happens-before graph for one run's causal log.
pub struct HbGraph<'a> {
    records: &'a [CausalRecord],
    obs: &'a [(SimTime, NodeId, Event)],
    /// Outgoing adjacency (all edges point forward in log order).
    fwd: Vec<Vec<(u32, EdgeKind)>>,
    /// Per-record vector clock (the record's causal past, inclusive).
    vc: Vec<VClock>,
    /// Program-order position at the record's node; 0 for disk records,
    /// whose cross-dispatch order is deliberately unranked.
    seq: Vec<u64>,
    /// Per-node "is a disk" flag, dense by node index.
    is_disk: Vec<bool>,
    /// Total edges built.
    edges: usize,
}

fn rec_node(r: &CausalRecord) -> NodeId {
    match r {
        CausalRecord::Send { node, .. }
        | CausalRecord::Deliver { node, .. }
        | CausalRecord::Observe { node, .. } => *node,
    }
}

fn rec_dispatch(r: &CausalRecord) -> u64 {
    match r {
        CausalRecord::Send { dispatch, .. }
        | CausalRecord::Deliver { dispatch, .. }
        | CausalRecord::Observe { dispatch, .. } => *dispatch,
    }
}

fn rec_at(r: &CausalRecord) -> SimTime {
    match r {
        CausalRecord::Send { at, .. }
        | CausalRecord::Deliver { at, .. }
        | CausalRecord::Observe { at, .. } => *at,
    }
}

impl<'a> HbGraph<'a> {
    /// Build the graph: one forward pass assigns every record its edges
    /// and vector clock (all edges point from earlier to later log
    /// positions, so predecessors' clocks are final when merged).
    pub fn build(
        records: &'a [CausalRecord],
        obs: &'a [(SimTime, NodeId, Event)],
        opts: &HbOptions,
    ) -> HbGraph<'a> {
        let width = records
            .iter()
            .map(|r| rec_node(r).index() + 1)
            .chain(obs.iter().map(|(_, n, _)| n.index() + 1))
            .chain(opts.disks.iter().map(|n| n.index() + 1))
            .chain(opts.server_shards.iter().map(|(n, _)| n.index() + 1))
            .max()
            .unwrap_or(1);
        let mut is_disk = vec![false; width];
        for d in &opts.disks {
            is_disk[d.index()] = true;
        }
        let shard_of: HashMap<NodeId, u16> = opts.server_shards.iter().copied().collect();

        let n = records.len();
        let mut g = HbGraph {
            records,
            obs,
            fwd: vec![Vec::new(); n],
            vc: Vec::with_capacity(n),
            seq: vec![0; n],
            is_disk,
            edges: 0,
        };

        // Build state: program-order tails, send registry, and the
        // event context the fence/expiry edges need.
        let mut tail_of_node: HashMap<NodeId, usize> = HashMap::new();
        let mut tail_of_dispatch: HashMap<u64, usize> = HashMap::new();
        let mut send_of_msg: HashMap<u64, usize> = HashMap::new();
        // Hardens per disk: (record, writer, block address).
        let mut hardens_at: HashMap<NodeId, Vec<(usize, NodeId, u64)>> = HashMap::new();
        // Latest lane quiesce per (client, shard).
        let mut last_quiesce: HashMap<(NodeId, u16), usize> = HashMap::new();

        for (i, r) in records.iter().enumerate() {
            let node = rec_node(r);
            let disk = g.is_disk[node.index()];
            let mut vc = VClock::new(width);

            // Program order.
            let pred = if disk {
                tail_of_dispatch.get(&rec_dispatch(r))
            } else {
                tail_of_node.get(&node)
            };
            if let Some(&p) = pred {
                g.link(p, i, EdgeKind::Po, &mut vc);
            }

            match r {
                CausalRecord::Send { msg_id, .. } => {
                    send_of_msg.insert(*msg_id, i);
                }
                CausalRecord::Deliver { msg_id, .. } => {
                    if let Some(&s) = send_of_msg.get(msg_id) {
                        g.link(s, i, EdgeKind::Msg, &mut vc);
                    }
                }
                CausalRecord::Observe { obs_index, .. } => {
                    match &obs[*obs_index].2 {
                        Event::FenceInstalled {
                            target,
                            range_start,
                            range_end,
                        } if opts.fence_edges && disk => {
                            let sources: Vec<usize> = hardens_at
                                .get(&node)
                                .map(|hs| {
                                    hs.iter()
                                        .filter(|(_, w, b)| {
                                            w == target && *range_start <= *b && *b < *range_end
                                        })
                                        .map(|(rec, _, _)| *rec)
                                        .collect()
                                })
                                .unwrap_or_default();
                            for h in sources {
                                g.link(h, i, EdgeKind::Fence, &mut vc);
                            }
                        }
                        Event::Hardened {
                            initiator, block, ..
                        } if disk => {
                            hardens_at
                                .entry(node)
                                .or_default()
                                .push((i, *initiator, block.0));
                        }
                        Event::Quiesced { shard } => {
                            last_quiesce.insert((node, *shard), i);
                        }
                        Event::LeaseExpired { client } if opts.expiry_edges => {
                            if let Some(shard) = shard_of.get(&node) {
                                if let Some(&q) = last_quiesce.get(&(*client, *shard)) {
                                    g.link(q, i, EdgeKind::Expiry, &mut vc);
                                }
                            }
                        }
                        Event::ServerRecovered if opts.expiry_edges => {
                            // Recovery grace: the restarted authority waited
                            // out every lease that could have been live at
                            // the crash, so each client's own latest lane
                            // quiesce on this shard precedes the grace end.
                            if let Some(shard) = shard_of.get(&node) {
                                let sources: Vec<usize> = last_quiesce
                                    .iter()
                                    .filter(|((_, s), _)| s == shard)
                                    .map(|(_, &q)| q)
                                    .collect();
                                for q in sources {
                                    g.link(q, i, EdgeKind::Expiry, &mut vc);
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }

            // Tick the record's own component (non-disk nodes only: a
            // disk's cross-dispatch serialization is exactly the order
            // the protocol may not rely on).
            if !disk {
                let s = vc.get(node) + 1;
                vc.set(node, s);
                g.seq[i] = s;
                tail_of_node.insert(node, i);
            } else {
                tail_of_dispatch.insert(rec_dispatch(r), i);
            }
            g.vc.push(vc);
        }
        g
    }

    fn link(&mut self, from: usize, to: usize, kind: EdgeKind, vc: &mut VClock) {
        debug_assert!(from < to, "hb edges must point forward in log order");
        self.fwd[from].push((to as u32, kind));
        vc.merge(&self.vc[from]);
        self.edges += 1;
    }

    /// Total edges built.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// The vector clock assigned to record `i`.
    pub fn clock(&self, i: usize) -> &VClock {
        &self.vc[i]
    }

    /// Program-order rank of record `i` at its node (0 for disk records).
    pub fn rank(&self, i: usize) -> u64 {
        self.seq[i]
    }

    /// Strict happens-before between two records.
    ///
    /// Non-disk sources answer in O(1) from the target's vector clock.
    /// Disk sources have no own clock component; their causal future
    /// leaves the disk through finitely many explicit edges (the
    /// response send of their dispatch, fence successors), so a bounded
    /// walk converts the query into vector-clock lookups at the first
    /// non-disk record of each escape route.
    pub fn ordered(&self, a: usize, b: usize) -> bool {
        if a >= b {
            // All edges point forward in log order, and log order
            // respects true time, so a later record never precedes an
            // earlier one.
            return false;
        }
        let an = rec_node(&self.records[a]);
        if !self.is_disk[an.index()] {
            return self.vc[b].covers(an, self.seq[a]);
        }
        let mut visited: HashSet<usize> = HashSet::new();
        let mut stack: Vec<usize> = self.fwd[a].iter().map(|(t, _)| *t as usize).collect();
        while let Some(x) = stack.pop() {
            if x == b {
                return true;
            }
            if x > b || !visited.insert(x) {
                continue;
            }
            let xn = rec_node(&self.records[x]);
            if !self.is_disk[xn.index()] {
                // Vector clocks are complete for non-disk ancestors of
                // `b`: if `x` is not covered, nothing reachable from it
                // can be either.
                if self.vc[b].covers(xn, self.seq[x]) {
                    return true;
                }
            } else {
                stack.extend(self.fwd[x].iter().map(|(t, _)| *t as usize));
            }
        }
        false
    }

    /// Shortest causal path (by hop count) from `a` to `b` over the
    /// explicit edges, as `(record, edge-into-it)` steps starting at
    /// `a`. `None` when no path exists — which for a conflicting pair
    /// means the pair is racy.
    pub fn causal_path(&self, a: usize, b: usize) -> Option<Vec<(usize, Option<EdgeKind>)>> {
        if a > b {
            return None;
        }
        let mut parent: HashMap<usize, (usize, EdgeKind)> = HashMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(a);
        'bfs: while let Some(x) = queue.pop_front() {
            for &(t, kind) in &self.fwd[x] {
                let t = t as usize;
                if t > b || parent.contains_key(&t) || t == a {
                    continue;
                }
                parent.insert(t, (x, kind));
                if t == b {
                    break 'bfs;
                }
                queue.push_back(t);
            }
        }
        if a != b && !parent.contains_key(&b) {
            return None;
        }
        let mut path = vec![];
        let mut cur = b;
        while cur != a {
            let (p, kind) = parent[&cur];
            path.push((cur, Some(kind)));
            cur = p;
        }
        path.push((a, None));
        path.reverse();
        Some(path)
    }

    /// Human rendering of one record, for path displays.
    pub fn describe(&self, i: usize) -> String {
        match &self.records[i] {
            CausalRecord::Send {
                node,
                dst,
                kind,
                at,
                ..
            } => format!(
                "#{i} {} sends {kind} to {} at t={:.3}s",
                node,
                dst,
                at.as_secs_f64()
            ),
            CausalRecord::Deliver {
                node,
                src,
                kind,
                at,
                ..
            } => format!(
                "#{i} {} receives {kind} from {} at t={:.3}s",
                node,
                src,
                at.as_secs_f64()
            ),
            CausalRecord::Observe {
                node,
                obs_index,
                at,
                ..
            } => format!(
                "#{i} {} observes {:?} at t={:.3}s",
                node,
                self.obs[*obs_index].2,
                at.as_secs_f64()
            ),
        }
    }

    /// Collect every access the race sweep cares about.
    ///
    /// Reads anchor at the client's [`Event::ReadServed`] — the point
    /// where the value is consumed — rather than at the disk-side
    /// [`Event::DiskRead`]. A SAN read can be physically in flight when
    /// the lock is revoked out from under it; the client then fails the
    /// op (`LeaseLost`) and discards the data, so the protocol owes that
    /// read no ordering — epoch validation is its safety net. A serve
    /// that *does* happen is causally downstream of its physical disk
    /// read via the SAN response, so anchoring at the serve still races
    /// it correctly against every harden.
    pub fn accesses(&self) -> Vec<Access> {
        // Tags are minted at WriteAcked time, which precedes the harden,
        // so one forward prepass resolves every harden's tag to its
        // (ino, block index).
        let mut tag_loc: HashMap<WriteTag, (Ino, u32)> = HashMap::new();
        for (_, _, ev) in self.obs {
            if let Event::WriteAcked { ino, idx, tag } = ev {
                let prev = tag_loc.insert(*tag, (*ino, *idx));
                // The resolution is only sound if tags never repeat across
                // locations (WriteTag's uniqueness contract): a collision
                // here would silently mislabel a harden and fabricate or
                // hide races.
                debug_assert!(
                    prev.is_none_or(|p| p == (*ino, *idx)),
                    "WriteTag {tag:?} reused across locations {prev:?} and {:?}",
                    (*ino, *idx),
                );
            }
        }
        let mut out = Vec::new();
        for (i, r) in self.records.iter().enumerate() {
            let CausalRecord::Observe { obs_index, .. } = r else {
                continue;
            };
            let (at, node, ev) = &self.obs[*obs_index];
            let (who, loc, kind) = match ev {
                Event::Hardened { initiator, tag, .. } => {
                    let Some(&(ino, idx)) = tag_loc.get(tag) else {
                        continue; // untagged content (e.g. precreated blocks)
                    };
                    (*initiator, (ino, Some(idx)), AccessKind::Harden)
                }
                Event::ReadServed {
                    ino,
                    idx,
                    from_cache,
                    ..
                } => {
                    let kind = if *from_cache {
                        AccessKind::CacheRead
                    } else {
                        AccessKind::DiskRead
                    };
                    (*node, (*ino, Some(*idx)), kind)
                }
                Event::LockGranted { client, ino, .. } => {
                    (*client, (*ino, None), AccessKind::Grant)
                }
                _ => continue,
            };
            out.push(Access {
                rec: i,
                node: *node,
                who,
                ino: loc.0,
                idx: loc.1,
                kind,
                at: *at,
            });
        }
        out
    }

    /// Sweep every conflicting pair and report the unordered ones.
    pub fn sweep(&self) -> HbReport {
        let accesses = self.accesses();
        let mut reads_at: HashMap<(Ino, u32), Vec<usize>> = HashMap::new();
        let mut grants_of: HashMap<Ino, Vec<usize>> = HashMap::new();
        let mut hardens: Vec<usize> = Vec::new();
        for (k, a) in accesses.iter().enumerate() {
            match (a.kind, a.idx) {
                (AccessKind::Harden, _) => hardens.push(k),
                (AccessKind::Grant, _) => grants_of.entry(a.ino).or_default().push(k),
                (_, Some(idx)) => reads_at.entry((a.ino, idx)).or_default().push(k),
                _ => {}
            }
        }
        let mut report = HbReport {
            records: self.records.len(),
            edges: self.edges,
            accesses: accesses.len(),
            ..HbReport::default()
        };
        for &h in &hardens {
            let w = accesses[h];
            let idx = w.idx.expect("hardens carry a block index");
            let candidates = reads_at
                .get(&(w.ino, idx))
                .into_iter()
                .flatten()
                .chain(grants_of.get(&w.ino).into_iter().flatten());
            for &c in candidates {
                let r = accesses[c];
                if r.who == w.who {
                    continue; // one node's own accesses are its business
                }
                report.pairs_checked += 1;
                if !self.ordered(w.rec, r.rec) && !self.ordered(r.rec, w.rec) {
                    report.racy.push(RacyPair { write: w, other: r });
                }
            }
        }
        report.racy.sort_by_key(|p| {
            (
                rec_at(&self.records[p.write.rec]).0,
                p.write.rec,
                p.other.rec,
            )
        });
        report
    }
}

/// Build the graph and run the sweep in one call.
pub fn audit(
    records: &[CausalRecord],
    obs: &[(SimTime, NodeId, Event)],
    opts: &HbOptions,
) -> HbReport {
    HbGraph::build(records, obs, opts).sweep()
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;
    use tank_proto::{BlockId, Epoch, LockMode};
    use tank_sim::NetId;

    fn nid(i: u32) -> NodeId {
        NodeId(i)
    }

    fn tag(writer: u32, wseq: u64) -> WriteTag {
        WriteTag {
            writer: nid(writer),
            epoch: Epoch(1),
            wseq,
        }
    }

    /// Synthetic trace builder: appends records with monotone time and
    /// explicit dispatch ids, mirroring what the simulator logs.
    struct TraceBuilder {
        recs: Vec<CausalRecord>,
        obs: Vec<(SimTime, NodeId, Event)>,
        next_msg: u64,
        t: u64,
    }

    impl TraceBuilder {
        fn new() -> TraceBuilder {
            TraceBuilder {
                recs: Vec::new(),
                obs: Vec::new(),
                next_msg: 0,
                t: 0,
            }
        }

        fn now(&mut self) -> SimTime {
            self.t += 1;
            SimTime(self.t)
        }

        fn send(&mut self, node: u32, dst: u32, dispatch: u64) -> u64 {
            self.next_msg += 1;
            let at = self.now();
            self.recs.push(CausalRecord::Send {
                msg_id: self.next_msg,
                dispatch,
                node: nid(node),
                dst: nid(dst),
                net: NetId::CONTROL,
                kind: "m",
                at,
            });
            self.next_msg
        }

        fn deliver(&mut self, msg_id: u64, node: u32, src: u32, dispatch: u64) -> usize {
            let at = self.now();
            self.recs.push(CausalRecord::Deliver {
                msg_id,
                dispatch,
                node: nid(node),
                src: nid(src),
                net: NetId::CONTROL,
                kind: "m",
                at,
            });
            self.recs.len() - 1
        }

        fn observe(&mut self, node: u32, dispatch: u64, ev: Event) -> usize {
            let at = self.now();
            self.recs.push(CausalRecord::Observe {
                obs_index: self.obs.len(),
                dispatch,
                node: nid(node),
                at,
            });
            self.obs.push((at, nid(node), ev));
            self.recs.len() - 1
        }
    }

    /// Every graph must agree between its two order oracles: the vector
    /// clocks and explicit-path reachability.
    fn assert_clocks_match_paths(g: &HbGraph<'_>) {
        for a in 0..g.records.len() {
            for b in 0..g.records.len() {
                if a == b {
                    continue;
                }
                assert_eq!(
                    g.ordered(a, b),
                    g.causal_path(a, b).is_some(),
                    "oracle mismatch for ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn vclock_merge_compare() {
        let mut a = VClock::new(3);
        let mut b = VClock::new(3);
        a.set(nid(0), 2);
        b.set(nid(1), 5);
        assert!(a.concurrent_with(&b));
        assert!(!a.dominates(&b) && !b.dominates(&a));
        let mut m = a.clone();
        m.merge(&b);
        assert!(m.dominates(&a) && m.dominates(&b));
        assert_eq!(m.get(nid(0)), 2);
        assert_eq!(m.get(nid(1)), 5);
        assert!(m.covers(nid(1), 5) && !m.covers(nid(1), 6));
        // seq 0 is the "no own component" marker and never counts.
        assert!(!m.covers(nid(2), 0));
    }

    #[test]
    fn po_and_message_edges_order_across_nodes() {
        let mut tb = TraceBuilder::new();
        let a0 = tb.observe(0, 0, Event::Quiesced { shard: 9 });
        let m = tb.send(0, 1, 1);
        let d = tb.deliver(m, 1, 0, 2);
        let b0 = tb.observe(1, 2, Event::Resumed { shard: 9 });
        let lone = tb.observe(2, 3, Event::Quiesced { shard: 8 });
        let g = HbGraph::build(&tb.recs, &tb.obs, &HbOptions::default());
        assert!(g.ordered(a0, b0), "po + msg + po chains the observes");
        assert!(!g.ordered(b0, a0));
        assert!(!g.ordered(a0, lone) && !g.ordered(lone, a0));
        assert_eq!(g.edge_count(), 3); // 2 po + 1 msg
        let path = g.causal_path(a0, b0).expect("ordered pair has a path");
        assert_eq!(path.len(), 4);
        assert_eq!(path[0].0, a0);
        assert_eq!(path[2], (d, Some(EdgeKind::Msg)));
        assert_clocks_match_paths(&g);
    }

    /// A steal ordered by the fence round-trip: harden → FenceInstalled
    /// → FenceResp → grant. Severing the fence edge (the negative
    /// control) must leave the pair racy.
    fn steal_trace() -> (TraceBuilder, HbOptions) {
        let mut tb = TraceBuilder::new();
        // Client A=0, client B=1, server S=2 (shard 0), disk D=3.
        tb.observe(
            0,
            0,
            Event::WriteAcked {
                ino: Ino(1),
                idx: 0,
                tag: tag(0, 1),
            },
        );
        let w = tb.send(0, 3, 0); // WriteBlock
        tb.deliver(w, 3, 0, 1);
        tb.observe(
            3,
            1,
            Event::Hardened {
                initiator: nid(0),
                block: BlockId(5),
                tag: tag(0, 1),
                previous: WriteTag::default(),
            },
        );
        let wr = tb.send(3, 0, 1); // WriteResp
        tb.deliver(wr, 0, 3, 2);
        // Server declares A dead and fences.
        tb.observe(2, 3, Event::LeaseExpired { client: nid(0) });
        let f = tb.send(2, 3, 3); // FenceCmd
        tb.deliver(f, 3, 2, 4);
        tb.observe(
            3,
            4,
            Event::FenceInstalled {
                target: nid(0),
                range_start: 0,
                range_end: u64::MAX,
            },
        );
        let fr = tb.send(3, 2, 4); // FenceResp
        tb.deliver(fr, 2, 3, 5);
        tb.observe(
            2,
            5,
            Event::LockGranted {
                client: nid(1),
                ino: Ino(1),
                epoch: Epoch(2),
                mode: LockMode::Exclusive,
            },
        );
        let opts = HbOptions::new(vec![nid(3)], vec![(nid(2), 0)]);
        (tb, opts)
    }

    #[test]
    fn fence_edge_orders_steal() {
        let (tb, opts) = steal_trace();
        let report = audit(&tb.recs, &tb.obs, &opts);
        assert_eq!(report.pairs_checked, 1, "harden vs grant");
        assert!(report.ok(), "fenced steal is ordered:\n{}", report.render());
        let g = HbGraph::build(&tb.recs, &tb.obs, &opts);
        assert_clocks_match_paths(&g);
    }

    #[test]
    fn severed_fence_edge_fires() {
        let (tb, mut opts) = steal_trace();
        opts.fence_edges = false;
        let report = audit(&tb.recs, &tb.obs, &opts);
        assert_eq!(
            report.racy.len(),
            1,
            "severed fence must leave the pair racy"
        );
        let pair = report.racy[0];
        assert_eq!(pair.write.kind, AccessKind::Harden);
        assert_eq!(pair.other.kind, AccessKind::Grant);
        assert!(report.render().contains("error[hb]"));
        let g = HbGraph::build(&tb.recs, &tb.obs, &opts);
        assert_clocks_match_paths(&g);
    }

    /// Disk serialization alone must not order cross-dispatch disk
    /// records: that order is the schedule's accident, not the
    /// protocol's achievement.
    #[test]
    fn disk_program_order_is_severed_across_dispatches() {
        let mut tb = TraceBuilder::new();
        // Two independent writers harden to the same disk back-to-back.
        for (client, dispatch) in [(0u32, 0u64), (1, 2)] {
            tb.observe(
                client,
                dispatch,
                Event::WriteAcked {
                    ino: Ino(1),
                    idx: 0,
                    tag: tag(client, 1),
                },
            );
            let m = tb.send(client, 3, dispatch);
            tb.deliver(m, 3, client, dispatch + 1);
            tb.observe(
                3,
                dispatch + 1,
                Event::Hardened {
                    initiator: nid(client),
                    block: BlockId(5),
                    tag: tag(client, 1),
                    previous: WriteTag::default(),
                },
            );
        }
        let opts = HbOptions::new(vec![nid(3)], vec![]);
        let g = HbGraph::build(&tb.recs, &tb.obs, &opts);
        // The two hardens share a node but not a dispatch: unordered.
        assert!(!g.ordered(3, 7) && !g.ordered(7, 3));
        assert_clocks_match_paths(&g);
    }

    /// The expiry edge carries a quiesced lane's cached reads into the
    /// server's timeline: reads before the quiesce are ordered before
    /// grants after the expiry.
    #[test]
    fn expiry_edge_orders_cached_reads_before_next_grant() {
        let mut tb = TraceBuilder::new();
        // A=0 reads from cache, lane quiesces; S=2 expires the lease,
        // grants to B=1, which writes; D=3 hardens.
        tb.observe(
            1,
            0,
            Event::WriteAcked {
                ino: Ino(1),
                idx: 0,
                tag: tag(1, 1),
            },
        );
        let read = tb.observe(
            0,
            1,
            Event::ReadServed {
                ino: Ino(1),
                idx: 0,
                tag: tag(9, 9),
                from_cache: true,
            },
        );
        tb.observe(0, 2, Event::Quiesced { shard: 0 });
        tb.observe(2, 3, Event::LeaseExpired { client: nid(0) });
        let gmsg = tb.send(2, 1, 3);
        tb.deliver(gmsg, 1, 2, 4);
        let wmsg = tb.send(1, 3, 4);
        tb.deliver(wmsg, 3, 1, 5);
        let harden = tb.observe(
            3,
            5,
            Event::Hardened {
                initiator: nid(1),
                block: BlockId(5),
                tag: tag(1, 1),
                previous: WriteTag::default(),
            },
        );
        let opts = HbOptions::new(vec![nid(3)], vec![(nid(2), 0)]);
        let g = HbGraph::build(&tb.recs, &tb.obs, &opts);
        assert!(
            g.ordered(read, harden),
            "quiesce→expiry edge orders the read"
        );
        let report = g.sweep();
        assert!(report.ok(), "{}", report.render());
        assert_clocks_match_paths(&g);

        let severed = HbOptions {
            expiry_edges: false,
            ..opts
        };
        let report = audit(&tb.recs, &tb.obs, &severed);
        assert_eq!(report.racy.len(), 1, "without the edge the pair is racy");
        let g = HbGraph::build(&tb.recs, &tb.obs, &severed);
        assert_clocks_match_paths(&g);
    }

    /// A physical disk read whose result the client discards (lock
    /// revoked mid-flight, op failed with `LeaseLost`) is not an access:
    /// epoch validation, not ordering, covers it. The same read becomes
    /// a racy access the moment the client serves the value.
    #[test]
    fn only_consumed_reads_enter_the_sweep() {
        let mut tb = TraceBuilder::new();
        // Writer A=0 hardens (ino 1, block 0) at disk D=3.
        tb.observe(
            0,
            0,
            Event::WriteAcked {
                ino: Ino(1),
                idx: 0,
                tag: tag(0, 1),
            },
        );
        let w = tb.send(0, 3, 0);
        tb.deliver(w, 3, 0, 1);
        tb.observe(
            3,
            1,
            Event::Hardened {
                initiator: nid(0),
                block: BlockId(5),
                tag: tag(0, 1),
                previous: WriteTag::default(),
            },
        );
        // Reader B=1's SAN read races the harden; the response arrives
        // but B discards it — no ReadServed.
        let r = tb.send(1, 3, 2);
        tb.deliver(r, 3, 1, 3);
        tb.observe(
            3,
            3,
            Event::DiskRead {
                initiator: nid(1),
                block: BlockId(5),
                tag: WriteTag::default(),
            },
        );
        let rr = tb.send(3, 1, 3);
        let resp = tb.deliver(rr, 1, 3, 4);
        let opts = HbOptions::new(vec![nid(3)], vec![]);
        let report = audit(&tb.recs, &tb.obs, &opts);
        assert_eq!(report.pairs_checked, 0, "a discarded read is no access");
        assert!(report.ok());

        // Same trace, but B serves the value: now the pair exists and,
        // with no release→grant chain ordering it, is racy.
        tb.observe(
            1,
            rec_dispatch(&tb.recs[resp]),
            Event::ReadServed {
                ino: Ino(1),
                idx: 0,
                tag: WriteTag::default(),
                from_cache: false,
            },
        );
        let report = audit(&tb.recs, &tb.obs, &opts);
        assert_eq!(report.pairs_checked, 1);
        assert_eq!(report.racy.len(), 1);
        assert_eq!(report.racy[0].other.kind, AccessKind::DiskRead);
        let g = HbGraph::build(&tb.recs, &tb.obs, &opts);
        assert_clocks_match_paths(&g);
    }

    /// Duplicate deliveries each get a message edge from the one send.
    #[test]
    fn duplicate_deliveries_share_the_send() {
        let mut tb = TraceBuilder::new();
        let a = tb.observe(0, 0, Event::Quiesced { shard: 1 });
        let m = tb.send(0, 1, 0);
        tb.deliver(m, 1, 0, 1);
        tb.deliver(m, 1, 0, 2);
        let b = tb.observe(1, 3, Event::Resumed { shard: 1 });
        let g = HbGraph::build(&tb.recs, &tb.obs, &HbOptions::default());
        assert!(g.ordered(a, b));
        // po(0→1), msg(1→2), msg(1→3), po(2→3), po(3→4).
        assert_eq!(g.edge_count(), 5);
        assert_clocks_match_paths(&g);
    }

    proptest! {
        /// On arbitrary interleavings of observes, sends, and (possibly
        /// reordered or lost) deliveries across three nodes: the two
        /// order oracles agree, and every reported causal path is a
        /// valid chain — starts at the source, ends at the sink, walks
        /// only forward in log order, and every hop is itself an
        /// ordering the graph stands behind.
        #[test]
        fn causal_paths_are_valid_chains(
            ops in proptest::collection::vec((0u8..3, 0u8..3, 0u8..3), 1..40),
        ) {
            let mut tb = TraceBuilder::new();
            let mut in_flight: std::collections::VecDeque<(u64, u8, u8)> =
                std::collections::VecDeque::new();
            for (i, (kind, a, b)) in ops.iter().copied().enumerate() {
                let disp = i as u64;
                match kind {
                    0 => {
                        tb.observe(a as u32, disp, Event::Quiesced { shard: b as u16 });
                    }
                    1 => {
                        let m = tb.send(a as u32, b as u32, disp);
                        in_flight.push_back((m, a, b));
                    }
                    _ => {
                        // Deliver out of order half the time (pop the
                        // back instead of the front); `a % 2` decides.
                        let popped = if a % 2 == 0 {
                            in_flight.pop_front()
                        } else {
                            in_flight.pop_back()
                        };
                        if let Some((m, src, dst)) = popped {
                            tb.deliver(m, dst as u32, src as u32, disp);
                        }
                    }
                }
            }
            // Messages still in `in_flight` at the end were lost.
            let opts = HbOptions::new(vec![], vec![]);
            let g = HbGraph::build(&tb.recs, &tb.obs, &opts);
            assert_clocks_match_paths(&g);
            for a in 0..tb.recs.len() {
                for b in 0..tb.recs.len() {
                    let Some(path) = g.causal_path(a, b) else {
                        continue;
                    };
                    prop_assert_eq!(path[0].0, a);
                    prop_assert!(path[0].1.is_none());
                    prop_assert_eq!(path[path.len() - 1].0, b);
                    for w in path.windows(2) {
                        prop_assert!(w[0].0 < w[1].0);
                        prop_assert!(w[1].1.is_some());
                        prop_assert!(g.ordered(w[0].0, w[1].0));
                    }
                }
            }
        }
    }
}
