//! Comparator protocols.
//!
//! Two families of baselines exist in this reproduction:
//!
//! 1. **Recovery-policy baselines** — honor-locks, steal-immediately, and
//!    fence-then-steal — live inside the real server as
//!    [`tank_server::RecoveryPolicy`] variants, and lease-less clients as
//!    `ClientConfig::lease_enabled = false`; the partition scenarios and
//!    fault sweeps exercise them against the full stack.
//!
//! 2. **Lease-scheme baselines** (this crate) — the §4/§5 comparisons of
//!    *lease maintenance overhead*:
//!
//!    * **Storage Tank** — one lease per client, renewed opportunistically
//!      by ordinary traffic; passive authority with zero state.
//!    * **V-style leases** [Gray & Cheriton '89] — a lease *per cached
//!      object*; each must be renewed before expiry or the object drops
//!      from the cache; the authority stores a record per (client, object).
//!    * **Frangipani-style heartbeats** [Thekkath et al. '97] — a single
//!      lease per client, but maintained by unconditional periodic
//!      heartbeats and tracked in server memory with periodic expiry scans.
//!    * **NFS-style polling** [Sandberg et al. '85] — no leases or locks at
//!      all: the client re-validates each cached object by polling its
//!      attributes every few seconds (and gets no coherence guarantee).
//!
//!    These run on a purpose-built miniature world that models exactly the
//!    lease/validation layer: abstract "useful operations" flow from
//!    clients to a server, and each scheme adds its maintenance traffic,
//!    server state, and server work on top. Experiments E6/E7 sweep client
//!    and object counts and print msgs/op, bytes of lease state, and
//!    lease-related server operations per scheme.

pub mod lease_layer;

pub use lease_layer::{run_lease_layer, LayerParams, LayerReport, Scheme};
