//! The lease-maintenance-layer comparison world.
//!
//! One server, N clients, each client "caching" M objects. Clients issue
//! abstract useful operations (think metadata/lock requests) at a
//! configurable rate; each scheme layers its own maintenance on top. The
//! world measures three things per scheme (the abstract's claims, made
//! falsifiable):
//!
//! * maintenance messages (everything that is not a useful op/ack),
//! * peak lease-state bytes at the server,
//! * lease-related server operations (record updates + expiry scanning).

use std::collections::HashMap;

use rand::{Rng, RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use tank_core::{ClientLease, LeaseAction, LeaseAuthority, LeaseConfig};
use tank_proto::ReqSeq;
use tank_sim::{
    Actor, ClockSpec, Ctx, LocalNs, NetId, NetParams, NodeId, Payload, SimTime, World, WorldConfig,
};

/// Which lease scheme the layer runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum Scheme {
    /// Storage Tank: single lease, opportunistic renewal, passive server.
    Tank,
    /// V-style: one lease per cached object, renewed individually.
    VLease,
    /// Frangipani-style: single lease, unconditional heartbeats, server
    /// lease table with expiry scanning.
    Heartbeat,
    /// NFS-style: no leases; per-object attribute polling.
    NfsPoll,
}

impl Scheme {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Tank => "tank",
            Scheme::VLease => "v-lease",
            Scheme::Heartbeat => "heartbeat",
            Scheme::NfsPoll => "nfs-poll",
        }
    }
}

/// Layer-world parameters.
#[derive(Debug, Clone, Copy)]
pub struct LayerParams {
    /// Number of clients.
    pub clients: usize,
    /// Cached objects per client.
    pub objects_per_client: usize,
    /// Mean think time between useful ops (`None` = idle client).
    pub op_period: Option<LocalNs>,
    /// Lease period τ (all schemes use the same base period; NFS uses it
    /// as the poll interval).
    pub tau: LocalNs,
    /// Virtual run duration.
    pub duration: SimTime,
    /// Seed.
    pub seed: u64,
}

impl Default for LayerParams {
    fn default() -> Self {
        LayerParams {
            clients: 8,
            objects_per_client: 64,
            op_period: Some(LocalNs::from_millis(50)),
            tau: LocalNs::from_secs(10),
            duration: SimTime::from_secs(60),
            seed: 1,
        }
    }
}

/// Measured outcome.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LayerReport {
    /// The scheme measured.
    pub scheme: Scheme,
    /// Useful operations completed.
    pub useful_ops: u64,
    /// Maintenance messages sent (client→server; the return traffic is
    /// symmetric and counted separately).
    pub maintenance_msgs: u64,
    /// All client→server datagrams.
    pub total_msgs: u64,
    /// Peak lease-state bytes at the server.
    pub peak_lease_bytes: usize,
    /// Lease-related server operations (record updates + scan touches).
    pub server_lease_ops: u64,
    /// Maintenance messages per useful operation (the paper's headline
    /// ratio; ∞ when no useful ops ran).
    pub maint_per_op: f64,
}

/// Wire messages of the layer world.
#[derive(Debug, Clone, PartialEq)]
enum LayerMsg {
    /// A useful operation (metadata/lock work).
    Op { seq: u64 },
    /// Its acknowledgement.
    OpAck { seq: u64 },
    /// Tank keep-alive (maintenance).
    KeepAlive { seq: u64 },
    /// V-lease renewal for one object (maintenance).
    RenewObj { obj: u32 },
    /// V-lease renewal ack.
    RenewAck { obj: u32 },
    /// Heartbeat (maintenance).
    Heartbeat,
    /// Heartbeat ack.
    HeartbeatAck,
    /// NFS attribute poll for one object (maintenance).
    Poll { obj: u32 },
    /// Poll answer.
    PollAck { obj: u32 },
}

impl Payload for LayerMsg {
    fn kind(&self) -> &'static str {
        match self {
            LayerMsg::Op { .. } => "op",
            LayerMsg::OpAck { .. } => "op_ack",
            LayerMsg::KeepAlive { .. } => "keep_alive",
            LayerMsg::RenewObj { .. } => "renew_obj",
            LayerMsg::RenewAck { .. } => "renew_ack",
            LayerMsg::Heartbeat => "heartbeat",
            LayerMsg::HeartbeatAck => "heartbeat_ack",
            LayerMsg::Poll { .. } => "poll",
            LayerMsg::PollAck { .. } => "poll_ack",
        }
    }

    fn size_hint(&self) -> usize {
        24
    }
}

/// Timer tokens (small fixed space; no TokenMap needed).
const T_OP: u64 = 1;
const T_LEASE_POLL: u64 = 2;
const T_MAINT: u64 = 3;

/// A layer client.
struct LayerClient {
    scheme: Scheme,
    server: NodeId,
    objects: u32,
    op_period: Option<LocalNs>,
    tau: LocalNs,
    next_seq: u64,
    /// Tank scheme: the real client-side lease machine.
    tank: Option<ClientLease>,
    /// V-lease: local last-renewal time per object.
    v_last: Vec<LocalNs>,
    ops_acked: u64,
}

impl LayerClient {
    fn new(scheme: Scheme, server: NodeId, params: &LayerParams) -> Self {
        LayerClient {
            scheme,
            server,
            objects: params.objects_per_client as u32,
            op_period: params.op_period,
            tau: params.tau,
            next_seq: 1,
            tank: match scheme {
                Scheme::Tank => Some(ClientLease::new(LeaseConfig::with_tau(params.tau))),
                _ => None,
            },
            v_last: vec![LocalNs(0); params.objects_per_client],
            ops_acked: 0,
        }
    }

    fn think(&self, rng: &mut ChaCha8Rng) -> Option<LocalNs> {
        self.op_period
            .map(|p| LocalNs(rng.random_range(0..=p.0 * 2)))
    }

    fn send_op(&mut self, ctx: &mut Ctx<'_, LayerMsg, ()>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(t) = &mut self.tank {
            t.on_send(ReqSeq(seq), ctx.now());
        }
        // Ops touch a random object: under V, this renews that object's
        // lease for free (the reply re-grants it), mirroring how V piggy-
        // backs renewal on use.
        if self.scheme == Scheme::VLease {
            let obj = ctx.rng().random_range(0..self.objects) as usize;
            self.v_last[obj] = ctx.now();
        }
        ctx.send(NetId::CONTROL, self.server, LayerMsg::Op { seq });
    }

    fn pump_tank(&mut self, ctx: &mut Ctx<'_, LayerMsg, ()>) {
        let now = ctx.now();
        let Some(t) = &mut self.tank else { return };
        for action in t.poll(now) {
            if action == LeaseAction::SendKeepAlive {
                let seq = self.next_seq;
                self.next_seq += 1;
                t.on_send(ReqSeq(seq), now);
                ctx.send(NetId::CONTROL, self.server, LayerMsg::KeepAlive { seq });
            }
        }
        if let Some(at) = t.next_wakeup(now) {
            ctx.set_timer(at.minus(now).plus(LocalNs(1)), T_LEASE_POLL);
        }
    }
}

impl Actor<LayerMsg, ()> for LayerClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, LayerMsg, ()>) {
        // First useful op (bootstraps the Tank lease too).
        if let Some(d) = self.think(ctx.rng()) {
            ctx.set_timer(d, T_OP);
        } else if self.scheme == Scheme::Tank {
            // Idle tank client: bootstrap the lease with one op.
            self.send_op(ctx);
        }
        // Scheme maintenance clocks.
        match self.scheme {
            Scheme::Tank => {}
            Scheme::VLease => {
                // Check object ages at τ/10 granularity.
                ctx.set_timer(LocalNs(self.tau.0 / 10), T_MAINT);
            }
            Scheme::Heartbeat => {
                ctx.set_timer(LocalNs(self.tau.0 / 3), T_MAINT);
            }
            Scheme::NfsPoll => {
                ctx.set_timer(LocalNs(self.tau.0 / 10), T_MAINT);
            }
        }
    }

    fn on_message(
        &mut self,
        _from: NodeId,
        _net: NetId,
        msg: LayerMsg,
        ctx: &mut Ctx<'_, LayerMsg, ()>,
    ) {
        match msg {
            LayerMsg::OpAck { seq } | LayerMsg::KeepAlive { seq } => {
                // (KeepAlive never arrives at a client; the arm exists for
                // exhaustiveness.)
                if let LayerMsg::OpAck { .. } = msg {
                    self.ops_acked += 1;
                }
                if let Some(t) = &mut self.tank {
                    t.on_ack(ReqSeq(seq), ctx.now());
                }
                self.pump_tank(ctx);
            }
            LayerMsg::RenewAck { .. } | LayerMsg::HeartbeatAck | LayerMsg::PollAck { .. } => {}
            other => debug_assert!(false, "client got {other:?}"),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, LayerMsg, ()>) {
        match token {
            T_OP => {
                self.send_op(ctx);
                self.pump_tank(ctx);
                if let Some(d) = self.think(ctx.rng()) {
                    ctx.set_timer(d, T_OP);
                }
            }
            T_LEASE_POLL => self.pump_tank(ctx),
            T_MAINT => match self.scheme {
                Scheme::Tank => {}
                Scheme::VLease => {
                    // Renew every object older than 0.7τ (it would expire
                    // before the next check otherwise).
                    let now = ctx.now();
                    let threshold = (self.tau.0 as f64 * 0.7) as u64;
                    for obj in 0..self.objects {
                        let age = now.0.saturating_sub(self.v_last[obj as usize].0);
                        if age >= threshold {
                            self.v_last[obj as usize] = now;
                            ctx.send(NetId::CONTROL, self.server, LayerMsg::RenewObj { obj });
                        }
                    }
                    ctx.set_timer(LocalNs(self.tau.0 / 10), T_MAINT);
                }
                Scheme::Heartbeat => {
                    ctx.send(NetId::CONTROL, self.server, LayerMsg::Heartbeat);
                    ctx.set_timer(LocalNs(self.tau.0 / 3), T_MAINT);
                }
                Scheme::NfsPoll => {
                    // NFS re-validates each cached object once per τ,
                    // spread over the period in τ/10 slices.
                    let slice = (self.objects as u64 / 10).max(1) as u32;
                    let base = ctx.rng().random_range(0..self.objects.max(1));
                    for k in 0..slice.min(self.objects) {
                        let obj = (base + k) % self.objects;
                        ctx.send(NetId::CONTROL, self.server, LayerMsg::Poll { obj });
                    }
                    ctx.set_timer(LocalNs(self.tau.0 / 10), T_MAINT);
                }
            },
            _ => {}
        }
    }
}

/// The layer server.
struct LayerServer {
    scheme: Scheme,
    tau: LocalNs,
    /// Tank: the real passive authority.
    tank: Option<LeaseAuthority>,
    /// V: (client, object) → expiry.
    v_table: HashMap<(NodeId, u32), LocalNs>,
    /// Heartbeat: client → expiry.
    hb_table: HashMap<NodeId, LocalNs>,
    lease_ops: u64,
    peak_bytes: usize,
    useful_ops: u64,
}

impl LayerServer {
    fn new(scheme: Scheme, params: &LayerParams) -> Self {
        LayerServer {
            scheme,
            tau: params.tau,
            tank: match scheme {
                Scheme::Tank => Some(LeaseAuthority::new(LeaseConfig::with_tau(params.tau))),
                _ => None,
            },
            v_table: HashMap::new(),
            hb_table: HashMap::new(),
            lease_ops: 0,
            peak_bytes: 0,
            useful_ops: 0,
        }
    }

    fn lease_bytes(&self) -> usize {
        match self.scheme {
            Scheme::Tank => self.tank.as_ref().map(|t| t.memory_bytes()).unwrap_or(0),
            Scheme::VLease => self.v_table.len() * (std::mem::size_of::<(NodeId, u32)>() + 8),
            Scheme::Heartbeat => self.hb_table.len() * (std::mem::size_of::<NodeId>() + 8),
            Scheme::NfsPoll => 0,
        }
    }

    fn note_peak(&mut self) {
        self.peak_bytes = self.peak_bytes.max(self.lease_bytes());
    }
}

impl Actor<LayerMsg, ()> for LayerServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_, LayerMsg, ()>) {
        // Expiry scanning for the stateful schemes.
        match self.scheme {
            Scheme::VLease => {
                ctx.set_timer(self.tau, T_MAINT);
            }
            Scheme::Heartbeat => {
                ctx.set_timer(LocalNs(self.tau.0 / 3), T_MAINT);
            }
            _ => {}
        }
    }

    fn on_message(
        &mut self,
        from: NodeId,
        net: NetId,
        msg: LayerMsg,
        ctx: &mut Ctx<'_, LayerMsg, ()>,
    ) {
        let now = ctx.now();
        match msg {
            LayerMsg::Op { seq } => {
                self.useful_ops += 1;
                // Tank: the entire lease cost of an op is one standing
                // check on an (empty) table.
                if let Some(t) = &mut self.tank {
                    let _ = t.may_ack(from);
                }
                if self.scheme == Scheme::VLease {
                    // The reply re-grants the touched object's lease; the
                    // server updates that record. (Object identity rides
                    // out of band here; one record update is the cost.)
                    self.lease_ops += 1;
                }
                ctx.send(net, from, LayerMsg::OpAck { seq });
            }
            LayerMsg::KeepAlive { seq } => {
                if let Some(t) = &mut self.tank {
                    let _ = t.may_ack(from);
                }
                ctx.send(net, from, LayerMsg::OpAck { seq });
            }
            LayerMsg::RenewObj { obj } => {
                self.lease_ops += 1;
                self.v_table.insert((from, obj), now.plus(self.tau));
                self.note_peak();
                ctx.send(net, from, LayerMsg::RenewAck { obj });
            }
            LayerMsg::Heartbeat => {
                self.lease_ops += 1;
                self.hb_table.insert(from, now.plus(self.tau));
                self.note_peak();
                ctx.send(net, from, LayerMsg::HeartbeatAck);
            }
            LayerMsg::Poll { obj } => {
                // An attribute fetch: server work but no lease state.
                ctx.send(net, from, LayerMsg::PollAck { obj });
            }
            other => debug_assert!(false, "server got {other:?}"),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, LayerMsg, ()>) {
        if token != T_MAINT {
            return;
        }
        let now = ctx.now();
        match self.scheme {
            Scheme::VLease => {
                // Expiry scan: every record is touched.
                self.lease_ops += self.v_table.len() as u64;
                self.v_table.retain(|_, exp| *exp > now);
                ctx.set_timer(self.tau, T_MAINT);
            }
            Scheme::Heartbeat => {
                self.lease_ops += self.hb_table.len() as u64;
                self.hb_table.retain(|_, exp| *exp > now);
                ctx.set_timer(LocalNs(self.tau.0 / 3), T_MAINT);
            }
            _ => {}
        }
    }
}

/// Run one lease-layer world and report.
pub fn run_lease_layer(scheme: Scheme, params: LayerParams) -> LayerReport {
    let mut world: World<LayerMsg> = World::new(WorldConfig {
        seed: params.seed,
        record_trace: false,
        record_causal: false,
    });
    world.add_network(NetId::CONTROL, NetParams::default());
    let server = world.add_node(
        Box::new(LayerServer::new(scheme, &params)),
        ClockSpec::ideal(),
    );
    let mut rate_rng = ChaCha8Rng::seed_from_u64(params.seed ^ 0xBA5E);
    for _ in 0..params.clients {
        let rate = rate_rng.random_range(0.9995..1.0005);
        world.add_node(
            Box::new(LayerClient::new(scheme, server, &params)),
            ClockSpec {
                rate,
                offset_ns: rate_rng.next_u64() % 1_000_000_000,
            },
        );
    }
    world.run_until(params.duration);

    let stats = world.stats();
    let maintenance = stats.sent_kind("keep_alive", NetId::CONTROL)
        + stats.sent_kind("renew_obj", NetId::CONTROL)
        + stats.sent_kind("heartbeat", NetId::CONTROL)
        + stats.sent_kind("poll", NetId::CONTROL);
    let total = stats.sent_kind("op", NetId::CONTROL) + maintenance;
    let srv = world.node_ref::<LayerServer>(server).unwrap();
    let useful = srv.useful_ops;
    let lease_ops = match scheme {
        // For Tank, count only *tracked* work (state-dependent); the
        // empty-table standing checks are the claimed-zero cost and are
        // reported via the authority stats in E6's detail columns.
        Scheme::Tank => srv
            .tank
            .as_ref()
            .map(|t| t.stats().tracked_checks)
            .unwrap_or(0),
        _ => srv.lease_ops,
    };
    LayerReport {
        scheme,
        useful_ops: useful,
        maintenance_msgs: maintenance,
        total_msgs: total,
        peak_lease_bytes: srv.peak_bytes.max(srv.lease_bytes()),
        server_lease_ops: lease_ops,
        maint_per_op: if useful > 0 {
            maintenance as f64 / useful as f64
        } else {
            f64::INFINITY
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> LayerParams {
        LayerParams {
            clients: 4,
            objects_per_client: 32,
            op_period: Some(LocalNs::from_millis(50)),
            tau: LocalNs::from_secs(5),
            duration: SimTime::from_secs(30),
            seed: 3,
        }
    }

    #[test]
    fn tank_active_clients_have_zero_maintenance() {
        let r = run_lease_layer(Scheme::Tank, params());
        assert!(r.useful_ops > 1000, "ops flowed: {}", r.useful_ops);
        assert_eq!(r.maintenance_msgs, 0, "opportunistic renewal only");
        assert_eq!(r.peak_lease_bytes, 0, "passive authority holds nothing");
        assert_eq!(r.server_lease_ops, 0, "no tracked work");
    }

    #[test]
    fn tank_idle_clients_fall_back_to_keepalives() {
        let mut p = params();
        p.op_period = None;
        let r = run_lease_layer(Scheme::Tank, p);
        assert!(r.maintenance_msgs > 0, "idle clients keep-alive");
        // Still no server state.
        assert_eq!(r.peak_lease_bytes, 0);
    }

    #[test]
    fn v_lease_maintenance_scales_with_objects() {
        let small = run_lease_layer(
            Scheme::VLease,
            LayerParams {
                objects_per_client: 16,
                ..params()
            },
        );
        let big = run_lease_layer(
            Scheme::VLease,
            LayerParams {
                objects_per_client: 128,
                ..params()
            },
        );
        assert!(
            big.maintenance_msgs > 3 * small.maintenance_msgs,
            "per-object renewal grows with the cache: {} vs {}",
            small.maintenance_msgs,
            big.maintenance_msgs
        );
        assert!(big.peak_lease_bytes > small.peak_lease_bytes);
        assert!(big.server_lease_ops > 0);
    }

    #[test]
    fn heartbeat_maintenance_is_constant_per_client_and_stateful() {
        let r = run_lease_layer(Scheme::Heartbeat, params());
        // 4 clients × (30s / (5s/3)) ≈ 72 heartbeats.
        assert!(
            (50..120).contains(&r.maintenance_msgs),
            "{}",
            r.maintenance_msgs
        );
        assert!(r.peak_lease_bytes > 0, "server tracks every client");
        assert!(r.server_lease_ops > 0, "scans and updates cost work");
        // But it does NOT scale with objects.
        let big = run_lease_layer(
            Scheme::Heartbeat,
            LayerParams {
                objects_per_client: 1024,
                ..params()
            },
        );
        assert_eq!(big.maintenance_msgs, r.maintenance_msgs);
    }

    #[test]
    fn nfs_polling_scales_with_objects_and_proves_the_point() {
        let r = run_lease_layer(Scheme::NfsPoll, params());
        assert!(
            r.maintenance_msgs > 500,
            "polling is chatty: {}",
            r.maintenance_msgs
        );
        assert_eq!(r.peak_lease_bytes, 0);
    }

    #[test]
    fn tank_beats_everything_on_maintenance_ratio() {
        let p = params();
        let tank = run_lease_layer(Scheme::Tank, p);
        let v = run_lease_layer(Scheme::VLease, p);
        let hb = run_lease_layer(Scheme::Heartbeat, p);
        let nfs = run_lease_layer(Scheme::NfsPoll, p);
        assert!(tank.maint_per_op < v.maint_per_op);
        assert!(tank.maint_per_op < hb.maint_per_op);
        assert!(tank.maint_per_op < nfs.maint_per_op);
    }
}
