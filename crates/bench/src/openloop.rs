//! Open-loop workload generator for the real-network stack (E19).
//!
//! Closed-loop clients hide saturation: when the server slows down, the
//! clients slow down with it, and the measured rate politely tracks
//! capacity. An *open-loop* generator issues requests on a fixed
//! schedule regardless of completions, so offered load beyond the
//! capacity ceiling shows up as a goodput plateau and a latency
//! explosion — the knee this harness exists to find.
//!
//! Three pieces:
//!
//! * [`schedule`] — a seeded, deterministic arrival schedule: fixed
//!   interarrival spacing at the offered rate, client picked uniformly,
//!   key popularity Zipf(α) via the same [`ZipfGen`] the sim workloads
//!   use. Same config + seed ⇒ byte-identical schedule.
//! * [`Fleet`] — thousands of lightweight UDP clients (one socket each,
//!   no threads) multiplexed behind one [`Poller`]. Each client holds a
//!   session per shard (Hello'd once at setup) and a monotone sequence
//!   counter, so at-most-once semantics hold server-side while the
//!   driver pipelines many requests per client (the dedup window spans
//!   4096 sequence numbers).
//! * [`Fleet::run`] — walks the schedule, sending `GetAttr` metadata
//!   transactions to the shard owning each key and draining replies
//!   between arrivals. No retransmission: open loop means a lost
//!   datagram is a lost datagram. Latency (send → reply) lands in
//!   `bench.latency_ns`, the run's rate in `bench.offered_rate`.
//!
//! The driver is single-threaded on purpose: sends are paced off one
//! clock, and the reply path costs one `epoll_wait` per wakeup however
//! many thousand sockets are registered. (The portable sleeper backend
//! try-recvs every registered socket per wakeup — fine for tests, wrong
//! for 10k clients; capacity numbers should come from Linux/epoll.)

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tank_cluster::workload::{Mix, ZipfGen};
use tank_net::poll::Poller;
use tank_obs::{names, Histogram, Registry};
use tank_proto::message::{ReplyBody, RequestBody, ResponseOutcome};
use tank_proto::{
    CtlMsg, Ino, NetMsg, NodeId, ReqSeq, Request, SessionId, WireDecode, WireEncode, MAX_DATAGRAM,
};

use bytes::Bytes;

/// One open-loop run's shape.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Concurrent net clients (sockets).
    pub clients: usize,
    /// Files spread round-robin over the shards; keys index into them.
    pub files: usize,
    /// Zipf exponent for key popularity (α ≈ 1 typical).
    pub alpha: f64,
    /// Offered request rate, requests/second.
    pub rate: u64,
    /// Issue window: arrivals are scheduled over this span.
    pub duration: Duration,
    /// Post-issue grace in which replies are still collected.
    pub drain: Duration,
    /// Schedule seed; same config + seed ⇒ identical schedule.
    pub seed: u64,
}

/// One scheduled request: issue at `at_ns` (offset from run start), from
/// `client`, against key `key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Nanosecond offset from the start of the run.
    pub at_ns: u64,
    /// Issuing client index.
    pub client: u32,
    /// Target key (file index).
    pub key: u32,
}

/// Build the deterministic arrival schedule for `cfg`: `rate × duration`
/// arrivals at fixed interarrival spacing, clients uniform, keys
/// Zipf(α). Pure function of the config — the determinism the repo's
/// experiments are built on (same seed, same offered workload, every
/// run).
pub fn schedule(cfg: &OpenLoopConfig) -> Vec<Arrival> {
    assert!(cfg.rate > 0 && cfg.clients > 0 && cfg.files > 0);
    let n = (cfg.duration.as_nanos() * cfg.rate as u128 / 1_000_000_000) as usize;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let zipf = ZipfGen::new(cfg.files, cfg.alpha, Mix::default());
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let at_ns = (i as u128 * 1_000_000_000 / cfg.rate as u128) as u64;
        let client = rng.random_range(0..cfg.clients as u32);
        let key = zipf.sample(&mut rng) as u32;
        out.push(Arrival { at_ns, client, key });
    }
    out
}

/// What one run measured. Quantiles come from the `bench.latency_ns`
/// histogram in the registry passed to [`Fleet::run`] — hand each run a
/// fresh registry if per-run quantiles are wanted.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Offered rate (echoed from the config).
    pub offered: u64,
    /// Requests actually sent (≤ scheduled if the driver fell behind).
    pub sent: u64,
    /// ACKed replies matched to an outstanding request.
    pub completed: u64,
    /// NACKed replies.
    pub nacked: u64,
    /// Median latency, ns (0 when nothing completed).
    pub p50_ns: u64,
    /// 99th-percentile latency, ns.
    pub p99_ns: u64,
    /// 99.9th-percentile latency, ns.
    pub p999_ns: u64,
    /// Mean latency, ns.
    pub mean_ns: f64,
}

/// How the driver waits when it has nothing due: long enough to be
/// cheap, short enough to keep reply latency honest.
const IDLE_WAIT: Duration = Duration::from_millis(5);
/// Replies are drained at least this often mid-burst so client socket
/// buffers cannot overflow while the driver is busy sending.
const DRAIN_EVERY: u64 = 256;

/// A fleet of lightweight open-loop clients, reusable across rate
/// points: sessions, sockets and sequence counters persist, so a sweep
/// pays the Hello/Create setup once per shard topology.
pub struct Fleet {
    shards: Vec<SocketAddr>,
    /// `key → ino` on shard `key % shards.len()`.
    inos: Vec<Ino>,
    socks: Vec<UdpSocket>,
    /// `[client][shard] → session`.
    sessions: Vec<Vec<SessionId>>,
    /// Per-client monotone sequence counter (shared across shards so a
    /// reply is matched by `(client, seq)` alone).
    next_seq: Vec<u64>,
    poller: Poller,
    scratch: Vec<u8>,
}

impl Fleet {
    /// Stand up the fleet against running servers: create `files` spread
    /// round-robin over `shards` (via a throwaway admin client), bind
    /// one nonblocking socket per client, and Hello every client to
    /// every shard. Sequence numbers `1..=shards` are reserved for the
    /// Hellos; request traffic starts above them.
    pub fn new(shards: &[SocketAddr], clients: usize, files: usize) -> io::Result<Fleet> {
        assert!(!shards.is_empty() && clients > 0 && files > 0);
        let inos = create_files(shards, files)?;
        let mut socks = Vec::with_capacity(clients);
        let mut poller = Poller::new()?;
        for i in 0..clients {
            let s = UdpSocket::bind("127.0.0.1:0")?;
            s.set_nonblocking(true)?;
            poller.register(&s, i as u64)?;
            socks.push(s);
        }
        let mut fleet = Fleet {
            shards: shards.to_vec(),
            inos,
            socks,
            sessions: vec![vec![SessionId(0); shards.len()]; clients],
            next_seq: vec![shards.len() as u64 + 1; clients],
            poller,
            scratch: vec![0u8; MAX_DATAGRAM],
        };
        fleet.hello_all()?;
        Ok(fleet)
    }

    /// Hello every client to every shard, pipelined through the poller.
    /// Retries reuse the same per-(client, shard) sequence number, so a
    /// duplicate Hello replays the session instead of minting another.
    fn hello_all(&mut self) -> io::Result<()> {
        for shard in 0..self.shards.len() {
            let addr = self.shards[shard];
            let mut missing: Vec<usize> = (0..self.socks.len()).collect();
            for _attempt in 0..50 {
                for &c in &missing {
                    let req = Request {
                        src: NodeId(0),
                        session: SessionId(0),
                        seq: ReqSeq(shard as u64 + 1),
                        body: RequestBody::Hello { map_epoch: 0 },
                    };
                    let _ =
                        self.socks[c].send_to(&NetMsg::Ctl(CtlMsg::Request(req)).encoded(), addr);
                }
                let deadline = Instant::now() + Duration::from_millis(300);
                while !missing.is_empty() && Instant::now() < deadline {
                    let tokens: Vec<u64> = self.poller.wait(Duration::from_millis(20))?.to_vec();
                    for tok in tokens {
                        let c = tok as usize;
                        while let Ok((n, _)) = self.socks[c].recv_from(&mut self.scratch) {
                            let mut b = Bytes::copy_from_slice(&self.scratch[..n]);
                            if let Ok(NetMsg::Ctl(CtlMsg::Response(resp))) = NetMsg::decode(&mut b)
                            {
                                if let ResponseOutcome::Acked(Ok(ReplyBody::HelloOk {
                                    session,
                                    ..
                                })) = resp.outcome
                                {
                                    if resp.seq == ReqSeq(shard as u64 + 1) {
                                        self.sessions[c][shard] = session;
                                    }
                                }
                            }
                        }
                    }
                    missing.retain(|&c| self.sessions[c][shard] == SessionId(0));
                }
                if missing.is_empty() {
                    break;
                }
            }
            if !missing.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("{} clients failed Hello to shard {shard}", missing.len()),
                ));
            }
        }
        Ok(())
    }

    /// Execute one open-loop run. `registry` receives the
    /// `bench.offered_rate` and `bench.latency_ns` observations; pass a
    /// fresh one per rate point for clean per-point quantiles.
    pub fn run(&mut self, cfg: &OpenLoopConfig, registry: &Registry) -> io::Result<RunResult> {
        assert_eq!(
            cfg.clients,
            self.socks.len(),
            "fleet size is fixed at setup"
        );
        let sched = schedule(cfg);
        let offered_h = registry.histogram_def(&names::BENCH_OFFERED_RATE);
        let lat_h = registry.histogram_def(&names::BENCH_LATENCY_NS);
        offered_h.observe(cfg.rate);

        let mut outstanding: HashMap<(u32, u64), Instant> = HashMap::with_capacity(4096);
        let mut sent = 0u64;
        let mut completed = 0u64;
        let mut nacked = 0u64;
        let end = cfg.duration + cfg.drain;
        let t0 = Instant::now();
        let mut idx = 0usize;
        loop {
            let now = t0.elapsed();
            let now_ns = now.as_nanos() as u64;
            while idx < sched.len() && sched[idx].at_ns <= now_ns {
                let a = sched[idx];
                idx += 1;
                self.send_one(a, &mut outstanding);
                sent += 1;
                if sent.is_multiple_of(DRAIN_EVERY) {
                    self.drain_replies(
                        Duration::ZERO,
                        &mut outstanding,
                        &lat_h,
                        &mut completed,
                        &mut nacked,
                    )?;
                }
            }
            if now >= end || (idx >= sched.len() && outstanding.is_empty()) {
                break;
            }
            let wait = if idx < sched.len() {
                Duration::from_nanos(sched[idx].at_ns.saturating_sub(now_ns)).min(IDLE_WAIT)
            } else {
                IDLE_WAIT.min(end.saturating_sub(now))
            };
            self.drain_replies(wait, &mut outstanding, &lat_h, &mut completed, &mut nacked)?;
        }

        let snap = registry.snapshot();
        let lat = snap.histogram(names::BENCH_LATENCY_NS.name);
        Ok(RunResult {
            offered: cfg.rate,
            sent,
            completed,
            nacked,
            p50_ns: lat.and_then(|h| h.quantile(0.50)).unwrap_or(0),
            p99_ns: lat.and_then(|h| h.quantile(0.99)).unwrap_or(0),
            p999_ns: lat.and_then(|h| h.quantile(0.999)).unwrap_or(0),
            mean_ns: lat.map(|h| h.mean()).unwrap_or(0.0),
        })
    }

    /// Fire one scheduled arrival: a `GetAttr` on the key's ino, sent to
    /// the owning shard over the issuing client's socket.
    fn send_one(&mut self, a: Arrival, outstanding: &mut HashMap<(u32, u64), Instant>) {
        let c = a.client as usize;
        let shard = a.key as usize % self.shards.len();
        let seq = self.next_seq[c];
        self.next_seq[c] += 1;
        let req = Request {
            src: NodeId(0),
            session: self.sessions[c][shard],
            seq: ReqSeq(seq),
            body: RequestBody::GetAttr {
                ino: self.inos[a.key as usize],
            },
        };
        let bytes = NetMsg::Ctl(CtlMsg::Request(req)).encoded();
        // An open-loop send failure (e.g. a full buffer) is datagram
        // loss — the request stays outstanding and simply never
        // completes, exactly like a drop on the wire.
        let _ = self.socks[c].send_to(&bytes, self.shards[shard]);
        outstanding.insert((a.client, seq), Instant::now());
    }

    /// Discard stale replies until the wire goes quiet: a saturated rate
    /// point leaves the servers with a queued backlog whose replies
    /// would otherwise bleed compute into the next point. Returns once a
    /// full `quiet` interval passes with no reply, or at `limit`.
    pub fn drain_until_quiet(&mut self, quiet: Duration, limit: Duration) {
        let t0 = Instant::now();
        let mut last_reply = Instant::now();
        while t0.elapsed() < limit && last_reply.elapsed() < quiet {
            let Ok(tokens) = self.poller.wait(Duration::from_millis(20)) else {
                return;
            };
            let mut any = false;
            for &tok in tokens {
                while self.socks[tok as usize]
                    .recv_from(&mut self.scratch)
                    .is_ok()
                {
                    any = true;
                }
            }
            if any {
                last_reply = Instant::now();
            }
            self.poller.note_progress(any);
        }
    }

    /// Collect replies for up to `wait` (zero = nonblocking check),
    /// matching them to outstanding requests.
    fn drain_replies(
        &mut self,
        wait: Duration,
        outstanding: &mut HashMap<(u32, u64), Instant>,
        lat_h: &Histogram,
        completed: &mut u64,
        nacked: &mut u64,
    ) -> io::Result<()> {
        let tokens: &[u64] = self.poller.wait(wait)?;
        let mut any = false;
        for &tok in tokens {
            let c = tok as usize;
            while let Ok((n, _)) = self.socks[c].recv_from(&mut self.scratch) {
                any = true;
                let mut b = Bytes::copy_from_slice(&self.scratch[..n]);
                let Ok(NetMsg::Ctl(CtlMsg::Response(resp))) = NetMsg::decode(&mut b) else {
                    continue;
                };
                let Some(t_send) = outstanding.remove(&(c as u32, resp.seq.0)) else {
                    continue;
                };
                match resp.outcome {
                    ResponseOutcome::Acked(_) => {
                        *completed += 1;
                        lat_h.observe(t_send.elapsed().as_nanos() as u64);
                    }
                    ResponseOutcome::Nacked(_) => *nacked += 1,
                }
            }
        }
        self.poller.note_progress(any);
        Ok(())
    }
}

/// Create `files` spread round-robin over the shards (file `k` lives on
/// shard `k % shards`), returning `key → ino`. Runs closed-loop over a
/// throwaway blocking admin socket — setup is not under measurement, so
/// retries are fine here.
fn create_files(shards: &[SocketAddr], files: usize) -> io::Result<Vec<Ino>> {
    let sock = UdpSocket::bind("127.0.0.1:0")?;
    sock.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut inos = vec![Ino(0); files];
    let mut scratch = vec![0u8; MAX_DATAGRAM];
    for (shard, &addr) in shards.iter().enumerate() {
        let mut seq = 1u64;
        let hello = RequestBody::Hello { map_epoch: 0 };
        let session = match admin_call(&sock, addr, SessionId(0), seq, hello, &mut scratch)? {
            ReplyBody::HelloOk { session, .. } => session,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("admin Hello to shard {shard} answered {other:?}"),
                ))
            }
        };
        for key in (shard..files).step_by(shards.len()) {
            seq += 1;
            let body = RequestBody::Create {
                parent: Ino(1),
                name: format!("f{key}"),
            };
            match admin_call(&sock, addr, session, seq, body, &mut scratch)? {
                ReplyBody::Created { ino } => inos[key] = ino,
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("create f{key} on shard {shard} answered {other:?}"),
                    ))
                }
            }
        }
    }
    Ok(inos)
}

/// One blocking request/reply exchange with retries (admin path only).
fn admin_call(
    sock: &UdpSocket,
    addr: SocketAddr,
    session: SessionId,
    seq: u64,
    body: RequestBody,
    scratch: &mut [u8],
) -> io::Result<ReplyBody> {
    for _attempt in 0..50 {
        let req = Request {
            src: NodeId(0),
            session,
            seq: ReqSeq(seq),
            body: body.clone(),
        };
        sock.send_to(&NetMsg::Ctl(CtlMsg::Request(req)).encoded(), addr)?;
        // Several reads per attempt: stray earlier replies may be queued.
        for _ in 0..4 {
            let Ok((n, _)) = sock.recv_from(scratch) else {
                break;
            };
            let mut b = Bytes::copy_from_slice(&scratch[..n]);
            if let Ok(NetMsg::Ctl(CtlMsg::Response(resp))) = NetMsg::decode(&mut b) {
                if resp.seq == ReqSeq(seq) {
                    if let ResponseOutcome::Acked(Ok(reply)) = resp.outcome {
                        return Ok(reply);
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("admin request NACKed/failed: {:?}", resp.outcome),
                    ));
                }
            }
        }
    }
    Err(io::Error::new(
        io::ErrorKind::TimedOut,
        "admin request exhausted retries",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> OpenLoopConfig {
        OpenLoopConfig {
            clients: 32,
            files: 64,
            alpha: 1.0,
            rate: 2_000,
            duration: Duration::from_millis(500),
            drain: Duration::from_millis(100),
            seed,
        }
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let a = schedule(&cfg(7));
        let b = schedule(&cfg(7));
        assert_eq!(a, b, "same seed, same schedule");
        let c = schedule(&cfg(8));
        assert_ne!(a, c, "different seed, different draw");
        // 2000/s over 500ms = 1000 arrivals at fixed spacing.
        assert_eq!(a.len(), 1_000);
        assert_eq!(a[0].at_ns, 0);
        assert_eq!(a[1].at_ns - a[0].at_ns, 500_000);
        assert!(a.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
    }

    #[test]
    fn schedule_keys_follow_the_zipf_head() {
        let s = schedule(&cfg(3));
        let head = s.iter().filter(|a| a.key == 0).count();
        // Zipf(1) over 64 files puts ~21% of traffic on the hottest key;
        // uniform would put ~1.6%.
        assert!(
            head > s.len() / 20,
            "hot key underrepresented: {head}/{}",
            s.len()
        );
    }
}
