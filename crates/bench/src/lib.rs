//! Benchmark-only crate: see `benches/` for the Criterion harnesses and
//! DESIGN.md §4 for the experiment-to-bench mapping.
