//! Benchmark-only crate: see `benches/` for the Criterion harnesses,
//! [`openloop`] for the open-loop net-capacity generator (E19,
//! `exp_capacity`), and DESIGN.md §4 for the experiment-to-bench
//! mapping.

pub mod openloop;
