//! E19 — open-loop capacity sweep: find the real throughput ceiling.
//!
//! The event-driven net server (DESIGN.md §15) claims its reactor +
//! worker-pool drain path is no longer the bottleneck — the modeled
//! metadata device is. This experiment proves it the only honest way:
//! offered load is swept *open-loop* (arrivals on a fixed schedule,
//! zipf-popular keys, no retransmission, thousands of concurrent net
//! clients) past saturation at 1, 4 and 8 shards, and goodput vs.
//! offered load locates the knee.
//!
//! **Modeled service time.** The CI host is a single core, where eight
//! shard servers cannot scale on raw compute — and a metadata server's
//! real constraint is its metadata device, not cycles. Each server
//! therefore sleeps `SERVICE` per metadata transaction (KeepAlive
//! excluded) while holding its state lock: shard capacity ≈ 1/SERVICE
//! req/s. Sleeps overlap across shard processes exactly as independent
//! devices do, so the sweep honestly answers "does sharding raise the
//! ceiling?" — on one core or thirty-two. EXPERIMENTS.md §E19 discusses
//! the regime.
//!
//! Per shard count the ladder spans 0.2×–2.0× the nominal capacity; the
//! knee is the highest offered rate whose goodput stays within 90% of
//! offered, and the ceiling is the best measured goodput. Between rate
//! points the driver drains the server backlog so each point starts
//! clean.
//!
//! Safety is validated sim-side (the net stack shares the protocol
//! cores): for every swept shard count, a seeded sim cluster runs the
//! same zipf workload through the offline checker and the
//! happens-before auditor — zero violations, zero racy pairs.
//!
//! Acceptance built into the binary:
//! * at every shard count the lightest point's goodput reaches ≥80% of
//!   offered (the harness itself keeps up);
//! * the 8-shard measured ceiling is strictly above the 1-shard one;
//! * zero NACKs across the sweep, zero checker/hb violations sim-side.
//!
//! Emitted as `BENCH_capacity.json`. `--smoke` shrinks clients,
//! durations and the ladder for CI; assertions are identical except the
//! smoke sweep covers {1, 8} shards.

use std::sync::Arc;
use std::time::Duration;

use tank_bench::openloop::{Fleet, OpenLoopConfig};
use tank_cluster::table::{f, Table};
use tank_cluster::workload::{Mix, ZipfGen};
use tank_cluster::{Cluster, ClusterConfig};
use tank_core::LeaseConfig;
use tank_net::server::{LeaseServer, NetServerConfig, ServerHandle};
use tank_obs::{names, Registry};
use tank_sim::{LocalNs, SimTime};

/// Modeled per-metadata-transaction device time (see module doc).
const SERVICE: Duration = Duration::from_micros(400);
/// Nominal per-shard capacity implied by `SERVICE`.
const SHARD_CAP: u64 = 2_500;
/// Zipf exponent for key popularity.
const ALPHA: f64 = 1.0;

struct SweepShape {
    clients: usize,
    files: usize,
    shard_counts: Vec<usize>,
    /// Ladder as fractions of the shard count's nominal capacity.
    ladder: Vec<f64>,
    duration: Duration,
    drain: Duration,
    seeds: u64,
    sim_secs: u64,
}

fn shape(smoke: bool) -> SweepShape {
    if smoke {
        SweepShape {
            clients: 200,
            files: 64,
            shard_counts: vec![1, 8],
            ladder: vec![0.4, 0.8, 1.6],
            duration: Duration::from_secs(1),
            drain: Duration::from_millis(500),
            seeds: 1,
            sim_secs: 2,
        }
    } else {
        SweepShape {
            clients: 10_000,
            files: 512,
            shard_counts: vec![1, 4, 8],
            ladder: vec![0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.6, 2.0],
            duration: Duration::from_secs(3),
            drain: Duration::from_secs(1),
            seeds: 1,
            sim_secs: 4,
        }
    }
}

fn server_cfg() -> NetServerConfig {
    let mut cfg = NetServerConfig::default();
    // τ = 120 s: sessions outlive the whole sweep without keep-alives,
    // so lease traffic never competes with the offered load.
    cfg.lease = LeaseConfig::with_tau(LocalNs::from_secs(120));
    cfg.service = SERVICE;
    cfg.workers = 2;
    // Ask for a deep kernel backlog; rmem_max may clamp it, and the
    // open-loop protocol treats any overflow as wire loss.
    cfg.recv_buf = Some(8 << 20);
    cfg
}

/// One measured rate point.
struct Point {
    offered: u64,
    sent: u64,
    completed: u64,
    goodput: f64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
}

/// Drain leftover backlog replies after a saturated point so the next
/// point starts against idle servers: keep collecting until a quiet
/// interval sees nothing.
fn flush_backlog(fleet: &mut Fleet) {
    fleet.drain_until_quiet(Duration::from_millis(400), Duration::from_secs(60));
}

fn violation_count(check: &tank_consistency::CheckReport) -> usize {
    check.lost_updates.len()
        + check.stale_reads.len()
        + check.write_order_violations.len()
        + check.early_grants.len()
        + check.cross_shard.len()
        + check.batch_atomicity.len()
        + check.coherence.len()
}

/// Sim-side safety battery for one shard count: same zipf popularity,
/// full checker + happens-before audit. Returns (checker violations,
/// racy pairs).
fn sim_battery(shards: usize, files: usize, seeds: u64, secs: u64) -> (usize, usize) {
    let mut violations = 0usize;
    let mut racy = 0usize;
    for seed in 0..seeds {
        let mut cfg = ClusterConfig::default();
        cfg.shards = shards as u16;
        cfg.clients = 4;
        cfg.files = files.min(64);
        cfg.file_blocks = 4;
        cfg.lease = LeaseConfig::with_tau(LocalNs::from_secs(2));
        cfg.lease.epsilon = 0.01;
        cfg.gen_concurrency = 2;
        cfg.record_hb = true;
        let mut cluster = Cluster::build(cfg, seed);
        for i in 0..4 {
            cluster.attach_workload(
                i,
                Box::new(ZipfGen::new(files.min(64), ALPHA, Mix::default())),
            );
        }
        cluster.run_until(SimTime::from_secs(secs));
        cluster.settle();
        let hb = cluster.hb_audit();
        if !hb.racy.is_empty() {
            eprintln!("hb audit at {shards} shards, seed {seed}:\n{}", hb.render());
        }
        racy += hb.racy.len();
        let report = cluster.finish();
        violations += violation_count(&report.check);
    }
    (violations, racy)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sh = shape(smoke);
    println!("E19 — open-loop capacity sweep (event-driven net server)");
    println!(
        "({} clients, {} files, zipf α={ALPHA}, service {}µs ⇒ ~{SHARD_CAP} req/s per shard{})",
        sh.clients,
        sh.files,
        SERVICE.as_micros(),
        if smoke { ", --smoke" } else { "" }
    );

    let mut t = Table::new(&[
        "shards",
        "offered/s",
        "sent",
        "completed",
        "goodput/s",
        "p50 ms",
        "p99 ms",
        "p999 ms",
    ]);
    let mut bench = String::from("{\n  \"bench\": \"open_loop_capacity\",\n  \"sweeps\": [\n");
    let mut ceilings: Vec<(usize, f64, u64)> = Vec::new(); // (shards, ceiling, knee)
    let mut total_nacks = 0u64;

    for (si, &shards) in sh.shard_counts.iter().enumerate() {
        // Fresh servers + fleet per shard count.
        let registry = Arc::new(Registry::new());
        let handles: Vec<ServerHandle> = (0..shards)
            .map(|_| {
                LeaseServer::spawn_observed("127.0.0.1:0", server_cfg(), Some(&registry))
                    .expect("spawn shard server")
            })
            .collect();
        let addrs: Vec<_> = handles.iter().map(|h| h.addr).collect();
        let mut fleet = Fleet::new(&addrs, sh.clients, sh.files).expect("fleet setup");

        let nominal = SHARD_CAP * shards as u64;
        let mut points: Vec<Point> = Vec::new();
        for &frac in &sh.ladder {
            let rate = ((nominal as f64 * frac) as u64).max(100);
            let cfg = OpenLoopConfig {
                clients: sh.clients,
                files: sh.files,
                alpha: ALPHA,
                rate,
                duration: sh.duration,
                drain: sh.drain,
                seed: 19,
            };
            let point_reg = Registry::new();
            let res = fleet.run(&cfg, &point_reg).expect("open-loop run");
            total_nacks += res.nacked;
            let goodput = res.completed as f64 / sh.duration.as_secs_f64();
            t.row(vec![
                shards.to_string(),
                rate.to_string(),
                res.sent.to_string(),
                res.completed.to_string(),
                f(goodput),
                f(res.p50_ns as f64 / 1e6),
                f(res.p99_ns as f64 / 1e6),
                f(res.p999_ns as f64 / 1e6),
            ]);
            points.push(Point {
                offered: rate,
                sent: res.sent,
                completed: res.completed,
                goodput,
                p50_ns: res.p50_ns,
                p99_ns: res.p99_ns,
                p999_ns: res.p999_ns,
            });
            flush_backlog(&mut fleet);
        }

        // Knee: highest offered rate whose goodput keeps within 90% of
        // offered. Ceiling: best goodput anywhere on the ladder.
        let knee = points
            .iter()
            .filter(|p| p.goodput >= p.offered as f64 * 0.9)
            .map(|p| p.offered)
            .max()
            .unwrap_or(0);
        let ceiling = points.iter().map(|p| p.goodput).fold(0.0f64, f64::max);
        ceilings.push((shards, ceiling, knee));

        // The harness must keep up when unloaded, or the sweep measures
        // the driver instead of the server.
        let lightest = &points[0];
        assert!(
            lightest.goodput >= lightest.offered as f64 * 0.8,
            "{shards} shards: lightest point lost too much \
             ({:.0} of {} offered)",
            lightest.goodput,
            lightest.offered
        );

        let stats: Vec<_> = handles.into_iter().map(|h| h.stop()).collect();
        let served: u64 = stats.iter().map(|s| s.requests).sum();
        let snap = registry.snapshot();
        let wakeups = snap.counter(names::NET_REACTOR_WAKEUPS.name).unwrap_or(0);
        let per_wakeup = snap
            .histogram(names::NET_REACTOR_DATAGRAMS_PER_WAKEUP.name)
            .map(|h| h.mean())
            .unwrap_or(0.0);
        println!(
            "{shards} shard(s): knee {knee} req/s, ceiling {ceiling:.0} req/s; \
             servers saw {served} requests over {wakeups} reactor wakeups \
             ({per_wakeup:.2} datagrams/wakeup)"
        );

        let (violations, racy) = sim_battery(shards, sh.files, sh.seeds, sh.sim_secs);
        assert_eq!(
            (violations, racy),
            (0, 0),
            "sim-side battery at {shards} shards: {violations} checker violations, {racy} racy pairs"
        );

        bench.push_str(&format!(
            "    {{ \"shards\": {shards}, \"knee_req_s\": {knee}, \
             \"ceiling_req_s\": {ceiling:.1}, \"reactor_wakeups\": {wakeups}, \
             \"datagrams_per_wakeup\": {per_wakeup:.2}, \
             \"sim_checker_violations\": {violations}, \"sim_racy_pairs\": {racy}, \
             \"points\": [\n"
        ));
        for (k, p) in points.iter().enumerate() {
            bench.push_str(&format!(
                "      {{ \"offered_req_s\": {}, \"sent\": {}, \"completed\": {}, \
                 \"goodput_req_s\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \
                 \"p999_ns\": {} }}{}\n",
                p.offered,
                p.sent,
                p.completed,
                p.goodput,
                p.p50_ns,
                p.p99_ns,
                p.p999_ns,
                if k + 1 < points.len() { "," } else { "" }
            ));
        }
        bench.push_str(&format!(
            "    ] }}{}\n",
            if si + 1 < sh.shard_counts.len() {
                ","
            } else {
                ""
            }
        ));
    }

    print!("{}", t.render());
    assert_eq!(total_nacks, 0, "NACKs during the capacity sweep");
    println!("sweep: zero NACKs; sim battery: zero violations / racy pairs at every shard count");

    let one = ceilings
        .iter()
        .find(|(s, ..)| *s == 1)
        .expect("1-shard sweep");
    let eight = ceilings
        .iter()
        .find(|(s, ..)| *s == 8)
        .expect("8-shard sweep");
    assert!(
        eight.1 > one.1,
        "8-shard ceiling must beat 1 shard: {:.0} vs {:.0} req/s",
        eight.1,
        one.1
    );
    println!();
    for (s, ceiling, knee) in &ceilings {
        println!("{s} shard(s): knee {knee} req/s, measured ceiling {ceiling:.0} req/s");
    }
    println!(
        "sharding raised the open-loop ceiling {:.2}x (1 → 8 shards)",
        eight.1 / one.1.max(1e-9)
    );

    bench.push_str("  ],\n");
    bench.push_str(&format!(
        "  \"service_us\": {},\n  \"clients\": {},\n  \"files\": {},\n  \
         \"alpha\": {ALPHA},\n  \"ceiling_1_shard\": {:.1},\n  \
         \"ceiling_8_shard\": {:.1},\n  \"scaling_1_to_8\": {:.2}\n}}\n",
        SERVICE.as_micros(),
        sh.clients,
        sh.files,
        one.1,
        eight.1,
        eight.1 / one.1.max(1e-9)
    ));
    std::fs::write("BENCH_capacity.json", &bench).expect("write BENCH_capacity.json");
    println!("wrote BENCH_capacity.json");
}
