//! Wire codec throughput for the real-network path.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tank_proto::message::{ReplyBody, RequestBody, ResponseOutcome};
use tank_proto::{
    BlockId, CtlMsg, Epoch, Incarnation, Ino, NetMsg, NodeId, ReqSeq, Request, Response, SanMsg,
    SessionId, WireDecode, WireEncode, WriteTag,
};

fn msgs() -> Vec<(&'static str, NetMsg)> {
    vec![
        (
            "keepalive_request",
            NetMsg::Ctl(CtlMsg::Request(Request {
                src: NodeId(3),
                session: SessionId(9),
                seq: ReqSeq(1234),
                body: RequestBody::KeepAlive,
            })),
        ),
        (
            "lock_granted_16_blocks",
            NetMsg::Ctl(CtlMsg::Response(Response {
                dst: NodeId(3),
                session: SessionId(9),
                seq: ReqSeq(1234),
                incarnation: Incarnation(1),
                outcome: ResponseOutcome::Acked(Ok(ReplyBody::LockGranted {
                    ino: Ino(77),
                    mode: tank_proto::LockMode::Exclusive,
                    epoch: Epoch(12),
                    blocks: (0..16).map(BlockId).collect(),
                    size: 65536,
                })),
            })),
        ),
        (
            "san_write_4k",
            NetMsg::San(SanMsg::WriteBlock {
                req_id: 9,
                block: BlockId(17),
                data: vec![7u8; 4096],
                tag: WriteTag {
                    writer: NodeId(3),
                    epoch: Epoch(12),
                    wseq: 5,
                },
            }),
        ),
    ]
}

fn bench(c: &mut Criterion) {
    for (name, msg) in msgs() {
        let encoded: Bytes = msg.encoded();
        let mut g = c.benchmark_group(format!("wire/{name}"));
        g.throughput(Throughput::Bytes(encoded.len() as u64));
        g.bench_function("encode", |b| b.iter(|| black_box(msg.encoded())));
        g.bench_function("decode", |b| {
            b.iter(|| {
                let mut buf = encoded.clone();
                black_box(NetMsg::decode(&mut buf).unwrap())
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
