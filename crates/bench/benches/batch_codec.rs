//! Batch codec throughput and the grant scratch-buffer rotation.
//!
//! Two claims from the batching work, measured rather than asserted:
//!
//! 1. **Batch encode/decode scales linearly** in element count — the
//!    length-prefixed `RequestBody::Batch` / `ReplyBody::Batch` framing
//!    adds no per-element surprises at the coalescing caps the client
//!    actually uses (1/4/16) or well beyond them (64).
//! 2. **`rotate_grants` does not allocate after warm-up** — the grant
//!    delivery pass on the server's hot request loop reuses one
//!    `VecDeque`/`Vec` pair (see `tank_net::server::rotate_grants`).
//!    The bench cycles grants queue→batch→queue so a per-pass allocation
//!    would show up as throughput loss against the element count.
//! 3. **A wakeup's drain-and-decode is arena-cheap** — the reactor packs
//!    every ready datagram into one reused [`WakeupBatch`] arena and
//!    `decode_batch` backs all frames with a single `Bytes` copy, so the
//!    per-datagram cost is one slice + decode, not an allocation. The
//!    bench replays the exact server hot-path shape (arena fill as
//!    `drain_ready` does it, then `decode_batch` into a reused request
//!    vec) at the reactor's observed datagrams-per-wakeup scales.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::collections::VecDeque;
use std::hint::black_box;
use tank_net::reactor::{decode_batch, WakeupBatch};
use tank_net::server::rotate_grants;
use tank_proto::message::{FileAttr, FsError, ReplyBody, RequestBody, ResponseOutcome};
use tank_proto::{
    CtlMsg, Epoch, Incarnation, Ino, LockMode, NetMsg, NodeId, ReqSeq, Request, Response,
    SessionId, WireDecode, WireEncode,
};
use tank_server::lock::Grant;

const SIZES: [usize; 4] = [1, 4, 16, 64];

/// A request batch of `n` elements, shaped like the client's coalescing
/// queue output: mostly reads with the occasional mutation.
fn batch_request(n: usize) -> NetMsg {
    let elems = (0..n)
        .map(|i| match i % 4 {
            0 | 1 => RequestBody::GetAttr { ino: Ino(i as u64) },
            2 => RequestBody::Lookup {
                parent: Ino(1),
                name: format!("f{i}"),
            },
            _ => RequestBody::SetAttr {
                ino: Ino(i as u64),
                size: Some(4096),
            },
        })
        .collect();
    NetMsg::Ctl(CtlMsg::Request(Request {
        src: NodeId(3),
        session: SessionId(9),
        seq: ReqSeq(1234),
        body: RequestBody::Batch(elems),
    }))
}

/// The matching reply: per-element `Ok` outcomes with one trailing error,
/// exercising both arms of the `Result` framing.
fn batch_reply(n: usize) -> NetMsg {
    let mut outcomes: Vec<Result<ReplyBody, FsError>> = (0..n.saturating_sub(1))
        .map(|_| {
            Ok(ReplyBody::Attr {
                attr: FileAttr {
                    size: 4096,
                    mtime: 77,
                    version: 3,
                    is_dir: false,
                },
            })
        })
        .collect();
    outcomes.push(Err(FsError::NotFound));
    NetMsg::Ctl(CtlMsg::Response(Response {
        dst: NodeId(3),
        session: SessionId(9),
        seq: ReqSeq(1234),
        incarnation: Incarnation(1),
        outcome: ResponseOutcome::Acked(Ok(ReplyBody::Batch(outcomes))),
    }))
}

fn bench_codec(c: &mut Criterion) {
    for n in SIZES {
        for (side, msg) in [("request", batch_request(n)), ("reply", batch_reply(n))] {
            let encoded: Bytes = msg.encoded();
            let mut g = c.benchmark_group(format!("batch/{side}/{n}"));
            g.throughput(Throughput::Bytes(encoded.len() as u64));
            g.bench_function("encode", |b| b.iter(|| black_box(msg.encoded())));
            g.bench_function("decode", |b| {
                b.iter(|| {
                    let mut buf = encoded.clone();
                    black_box(NetMsg::decode(&mut buf).unwrap())
                })
            });
            g.finish();
        }
    }
}

fn bench_rotate_grants(c: &mut Criterion) {
    for n in SIZES {
        let mut queue: VecDeque<Grant> = (0..n)
            .map(|i| Grant {
                client: NodeId(i as u32),
                ino: Ino(i as u64),
                mode: LockMode::Exclusive,
                epoch: Epoch(i as u64),
                answers: Some((SessionId(9), ReqSeq(i as u64))),
            })
            .collect();
        let mut batch: Vec<Grant> = Vec::new();
        let mut g = c.benchmark_group(format!("batch/rotate_grants/{n}"));
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function("rotate", |b| {
            b.iter(|| {
                rotate_grants(&mut queue, &mut batch);
                // Refill the queue from the batch (move, not clone) so every
                // iteration rotates a full queue — mirroring a delivery pass
                // that immediately re-queues undeliverable grants.
                queue.extend(batch.drain(..));
                black_box(queue.len())
            })
        });
        g.finish();
    }
}

/// One wakeup's worth of single-request datagrams, packed into a
/// [`WakeupBatch`] arena exactly as `drain_ready` packs them off the
/// socket: payload bytes end-to-end, one `(offset, len, peer)` frame per
/// datagram.
fn wakeup_of(n: usize) -> WakeupBatch {
    let peer: std::net::SocketAddr = "127.0.0.1:4040".parse().expect("addr");
    let mut batch = WakeupBatch::new();
    for i in 0..n {
        let body = match i % 4 {
            0 | 1 => RequestBody::GetAttr { ino: Ino(i as u64) },
            2 => RequestBody::Lookup {
                parent: Ino(1),
                name: format!("f{i}"),
            },
            _ => RequestBody::SetAttr {
                ino: Ino(i as u64),
                size: Some(4096),
            },
        };
        let encoded: Bytes = NetMsg::Ctl(CtlMsg::Request(Request {
            src: NodeId(3),
            session: SessionId(9),
            seq: ReqSeq(i as u64),
            body,
        }))
        .encoded();
        let off = batch.arena.len();
        batch.arena.extend_from_slice(&encoded);
        batch.frames.push((off, encoded.len(), peer));
    }
    batch
}

fn bench_drain_decode(c: &mut Criterion) {
    for n in SIZES {
        let batch = wakeup_of(n);
        let mut requests: Vec<(std::net::SocketAddr, Request)> = Vec::new();
        let mut g = c.benchmark_group(format!("batch/drain_decode/{n}"));
        g.throughput(Throughput::Bytes(batch.arena.len() as u64));
        g.bench_function("decode_batch", |b| {
            b.iter(|| {
                // The worker's exact prologue: clear the reused request
                // vec, then decode every frame off one shared buffer.
                requests.clear();
                decode_batch(&batch, &mut requests);
                black_box(requests.len())
            })
        });
        g.finish();
    }
}

criterion_group!(
    benches,
    bench_codec,
    bench_rotate_grants,
    bench_drain_decode
);
criterion_main!(benches);
