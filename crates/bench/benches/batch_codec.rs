//! Batch codec throughput and the grant scratch-buffer rotation.
//!
//! Two claims from the batching work, measured rather than asserted:
//!
//! 1. **Batch encode/decode scales linearly** in element count — the
//!    length-prefixed `RequestBody::Batch` / `ReplyBody::Batch` framing
//!    adds no per-element surprises at the coalescing caps the client
//!    actually uses (1/4/16) or well beyond them (64).
//! 2. **`rotate_grants` does not allocate after warm-up** — the grant
//!    delivery pass on the server's hot request loop reuses one
//!    `VecDeque`/`Vec` pair (see `tank_net::server::rotate_grants`).
//!    The bench cycles grants queue→batch→queue so a per-pass allocation
//!    would show up as throughput loss against the element count.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::collections::VecDeque;
use std::hint::black_box;
use tank_net::server::rotate_grants;
use tank_proto::message::{FileAttr, FsError, ReplyBody, RequestBody, ResponseOutcome};
use tank_proto::{
    CtlMsg, Epoch, Incarnation, Ino, LockMode, NetMsg, NodeId, ReqSeq, Request, Response,
    SessionId, WireDecode, WireEncode,
};
use tank_server::lock::Grant;

const SIZES: [usize; 4] = [1, 4, 16, 64];

/// A request batch of `n` elements, shaped like the client's coalescing
/// queue output: mostly reads with the occasional mutation.
fn batch_request(n: usize) -> NetMsg {
    let elems = (0..n)
        .map(|i| match i % 4 {
            0 | 1 => RequestBody::GetAttr { ino: Ino(i as u64) },
            2 => RequestBody::Lookup {
                parent: Ino(1),
                name: format!("f{i}"),
            },
            _ => RequestBody::SetAttr {
                ino: Ino(i as u64),
                size: Some(4096),
            },
        })
        .collect();
    NetMsg::Ctl(CtlMsg::Request(Request {
        src: NodeId(3),
        session: SessionId(9),
        seq: ReqSeq(1234),
        body: RequestBody::Batch(elems),
    }))
}

/// The matching reply: per-element `Ok` outcomes with one trailing error,
/// exercising both arms of the `Result` framing.
fn batch_reply(n: usize) -> NetMsg {
    let mut outcomes: Vec<Result<ReplyBody, FsError>> = (0..n.saturating_sub(1))
        .map(|_| {
            Ok(ReplyBody::Attr {
                attr: FileAttr {
                    size: 4096,
                    mtime: 77,
                    version: 3,
                    is_dir: false,
                },
            })
        })
        .collect();
    outcomes.push(Err(FsError::NotFound));
    NetMsg::Ctl(CtlMsg::Response(Response {
        dst: NodeId(3),
        session: SessionId(9),
        seq: ReqSeq(1234),
        incarnation: Incarnation(1),
        outcome: ResponseOutcome::Acked(Ok(ReplyBody::Batch(outcomes))),
    }))
}

fn bench_codec(c: &mut Criterion) {
    for n in SIZES {
        for (side, msg) in [("request", batch_request(n)), ("reply", batch_reply(n))] {
            let encoded: Bytes = msg.encoded();
            let mut g = c.benchmark_group(format!("batch/{side}/{n}"));
            g.throughput(Throughput::Bytes(encoded.len() as u64));
            g.bench_function("encode", |b| b.iter(|| black_box(msg.encoded())));
            g.bench_function("decode", |b| {
                b.iter(|| {
                    let mut buf = encoded.clone();
                    black_box(NetMsg::decode(&mut buf).unwrap())
                })
            });
            g.finish();
        }
    }
}

fn bench_rotate_grants(c: &mut Criterion) {
    for n in SIZES {
        let mut queue: VecDeque<Grant> = (0..n)
            .map(|i| Grant {
                client: NodeId(i as u32),
                ino: Ino(i as u64),
                mode: LockMode::Exclusive,
                epoch: Epoch(i as u64),
                answers: Some((SessionId(9), ReqSeq(i as u64))),
            })
            .collect();
        let mut batch: Vec<Grant> = Vec::new();
        let mut g = c.benchmark_group(format!("batch/rotate_grants/{n}"));
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function("rotate", |b| {
            b.iter(|| {
                rotate_grants(&mut queue, &mut batch);
                // Refill the queue from the batch (move, not clone) so every
                // iteration rotates a full queue — mirroring a delivery pass
                // that immediately re-queues undeliverable grants.
                queue.extend(batch.drain(..));
                black_box(queue.len())
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_codec, bench_rotate_grants);
criterion_main!(benches);
