//! Metadata-transaction throughput (the server performance unit of §1.1:
//! a metadata server is measured in transactions per second).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tank_meta::MetaStore;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("meta_transactions");

    g.bench_function("create_lookup_unlink", |b| {
        let mut s = MetaStore::new(1 << 20, 4096);
        let root = s.root();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let name = format!("f{i}");
            let ino = s.create(root, &name, i).unwrap();
            black_box(s.lookup(root, &name).unwrap());
            s.unlink(root, &name).unwrap();
            black_box(ino);
        });
    });

    g.bench_function("getattr_hot", |b| {
        let mut s = MetaStore::new(1 << 20, 4096);
        let ino = s.create(s.root(), "f", 0).unwrap();
        b.iter(|| black_box(s.getattr(ino).unwrap()));
    });

    g.bench_function("alloc_commit_8_blocks", |b| {
        let mut s = MetaStore::new(1 << 24, 4096);
        let ino = s.create(s.root(), "f", 0).unwrap();
        b.iter(|| {
            let blocks = s.alloc_blocks(ino, 8).unwrap();
            black_box(&blocks);
            s.setattr(ino, Some(0), 1).unwrap(); // truncate frees them again
        });
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
