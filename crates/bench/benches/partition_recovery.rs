//! End-to-end partition-recovery runs: wall-clock cost of simulating the
//! full Figure-2 scenario (the unit of the fault-sweep experiments).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tank_client::fs::Script;
use tank_client::FsOp;
use tank_cluster::{Cluster, ClusterConfig};
use tank_core::LeaseConfig;
use tank_server::RecoveryPolicy;
use tank_sim::{LocalNs, SimTime};

fn figure2_run(seed: u64) -> bool {
    let mut cfg = ClusterConfig::default();
    cfg.clients = 2;
    cfg.files = 1;
    cfg.block_size = 512;
    cfg.lease = LeaseConfig::with_tau(LocalNs::from_secs(2));
    cfg.policy = RecoveryPolicy::LeaseFence;
    let mut cluster = Cluster::build(cfg, seed);
    let ms = LocalNs::from_millis;
    cluster.attach_script(
        0,
        Script::new().at(
            ms(500),
            FsOp::Write {
                path: "/f0".into(),
                offset: 0,
                data: vec![1; 512],
            },
        ),
    );
    cluster.attach_script(
        1,
        Script::new().at(
            ms(1_500),
            FsOp::Write {
                path: "/f0".into(),
                offset: 0,
                data: vec![2; 512],
            },
        ),
    );
    cluster.isolate_control(
        0,
        SimTime::from_millis(1_000),
        Some(SimTime::from_millis(12_000)),
    );
    cluster.run_until(SimTime::from_secs(16));
    cluster.finish().check.safe()
}

fn bench(c: &mut Criterion) {
    c.bench_function("figure2_full_recovery_16s_virtual", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(figure2_run(seed))
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
