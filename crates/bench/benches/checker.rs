//! Offline checker throughput over synthetic histories.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tank_consistency::{CheckOptions, Checker, Event};
use tank_proto::{BlockId, Epoch, Ino, NodeId, WriteTag};
use tank_sim::SimTime;

fn history(n: usize) -> Vec<(SimTime, NodeId, Event)> {
    let mut evs = Vec::with_capacity(n);
    for i in 0..n as u64 {
        let node = NodeId((i % 8) as u32);
        let ino = Ino(i % 64);
        let idx = (i % 4) as u32;
        let tag = WriteTag {
            writer: node,
            epoch: Epoch(i / 3 + 1),
            wseq: i,
        };
        let t = SimTime(i * 1000);
        match i % 3 {
            0 => evs.push((t, node, Event::WriteAcked { ino, idx, tag })),
            1 => evs.push((
                t,
                NodeId(0),
                Event::Hardened {
                    initiator: node,
                    block: BlockId(ino.0 * 4 + idx as u64),
                    tag: WriteTag {
                        writer: node,
                        epoch: Epoch(i / 3 + 1),
                        wseq: i - 1,
                    },
                    previous: WriteTag::default(),
                },
            )),
            _ => evs.push((
                t,
                node,
                Event::ReadServed {
                    ino,
                    idx,
                    tag,
                    from_cache: i % 2 == 0,
                },
            )),
        }
    }
    evs
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("checker");
    for &n in &[10_000usize, 100_000] {
        let evs = history(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("audit_{n}_events"), |b| {
            let checker = Checker::new(CheckOptions::default());
            b.iter(|| black_box(checker.run(&evs)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
