//! Simulated SAN throughput: events/second through the disk actor,
//! including the simulator's scheduling overhead — this bounds how much
//! virtual traffic the experiments can model per wall second.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tank_proto::{BlockId, Epoch, NetMsg, NodeId, SanMsg, WriteTag};
use tank_sim::{Actor, ClockSpec, Ctx, LocalNs, NetId, NetParams, SimTime, World, WorldConfig};
use tank_storage::{DiskConfig, DiskNode};

struct Blaster {
    disk: NodeId,
    remaining: u32,
    bs: usize,
}

impl Actor<NetMsg, ()> for Blaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_, NetMsg, ()>) {
        ctx.set_timer(LocalNs(1), 0);
    }
    fn on_message(&mut self, _f: NodeId, _n: NetId, _m: NetMsg, ctx: &mut Ctx<'_, NetMsg, ()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            let tag = WriteTag {
                writer: ctx.node(),
                epoch: Epoch(1),
                wseq: self.remaining as u64,
            };
            ctx.send(
                NetId::SAN,
                self.disk,
                NetMsg::San(SanMsg::WriteBlock {
                    req_id: self.remaining as u64,
                    block: BlockId((self.remaining % 1024) as u64),
                    data: vec![0u8; self.bs],
                    tag,
                }),
            );
        }
    }
    fn on_timer(&mut self, _t: u64, ctx: &mut Ctx<'_, NetMsg, ()>) {
        // Kick off a closed loop of writes.
        let tag = WriteTag {
            writer: ctx.node(),
            epoch: Epoch(1),
            wseq: 0,
        };
        ctx.send(
            NetId::SAN,
            self.disk,
            NetMsg::San(SanMsg::WriteBlock {
                req_id: 0,
                block: BlockId(0),
                data: vec![0u8; self.bs],
                tag,
            }),
        );
    }
}

fn run_io(n: u32, bs: usize) -> u64 {
    let mut w: World<NetMsg> = World::new(WorldConfig::default());
    w.add_network(NetId::SAN, NetParams::ideal(10_000));
    let disk = w.add_node(
        Box::new(DiskNode::<()>::unobserved(DiskConfig {
            blocks: 4096,
            block_size: bs,
        })),
        ClockSpec::ideal(),
    );
    w.add_node(
        Box::new(Blaster {
            disk,
            remaining: n,
            bs,
        }),
        ClockSpec::ideal(),
    );
    w.run_until(SimTime::from_secs(3600));
    w.events_processed()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage_io");
    for &bs in &[512usize, 4096] {
        g.throughput(Throughput::Elements(10_000));
        g.bench_function(format!("closed_loop_10k_writes_{bs}B"), |b| {
            b.iter(|| black_box(run_io(10_000, bs)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
