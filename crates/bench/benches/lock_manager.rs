//! Lock-manager throughput: uncontended grant/release cycles, contended
//! queue/demand/promote cycles, and steal-everything recovery.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tank_proto::{Ino, LockMode, NodeId, ReqSeq, SessionId};
use tank_server::lock::LockManager;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("lock_manager");
    let sess = SessionId(1);

    g.bench_function("grant_release_uncontended", |b| {
        let mut m = LockManager::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let ino = Ino(i % 1024);
            black_box(m.request(NodeId(1), ino, LockMode::Exclusive, sess, ReqSeq(i)));
            black_box(m.release(NodeId(1), ino, None));
        });
    });

    g.bench_function("queue_and_promote_contended", |b| {
        let mut m = LockManager::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let ino = Ino(7);
            m.request(NodeId(1), ino, LockMode::Exclusive, sess, ReqSeq(i * 2));
            m.request(NodeId(2), ino, LockMode::Exclusive, sess, ReqSeq(i * 2 + 1));
            black_box(m.release(NodeId(1), ino, None)); // promotes 2
            black_box(m.release(NodeId(2), ino, None));
        });
    });

    g.bench_function("steal_all_64_holdings", |b| {
        b.iter_with_setup(
            || {
                let mut m = LockManager::new();
                for k in 0..64u64 {
                    m.request(NodeId(9), Ino(k), LockMode::Exclusive, sess, ReqSeq(k));
                }
                m
            },
            |mut m| {
                black_box(m.steal_all(NodeId(9)));
            },
        );
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
