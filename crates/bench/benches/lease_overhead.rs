//! The abstract's "no computation at the locking authority" claim as a
//! microbenchmark: the per-request lease cost at the server under the
//! paper's passive authority (an empty-table check) vs stateful designs
//! (per-client and per-object table updates).

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use tank_core::{LeaseAuthority, LeaseConfig};
use tank_proto::NodeId;
use tank_sim::LocalNs;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("lease_overhead_per_request");

    g.bench_function("tank_passive_empty_table", |b| {
        let mut auth = LeaseAuthority::new(LeaseConfig::default());
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(auth.may_ack(NodeId(i % 256)));
        });
    });

    g.bench_function("heartbeat_table_update", |b| {
        // Frangipani-style: every renewal writes the client's expiry.
        let mut table: HashMap<NodeId, LocalNs> = HashMap::new();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            table.insert(NodeId(i % 256), LocalNs(i as u64));
            black_box(table.len());
        });
    });

    g.bench_function("v_lease_object_update", |b| {
        // V-style: every op/renewal writes a (client, object) record.
        let mut table: HashMap<(NodeId, u32), LocalNs> = HashMap::new();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            table.insert((NodeId(i % 256), i % 4096), LocalNs(i as u64));
            black_box(table.len());
        });
    });

    g.bench_function("heartbeat_expiry_scan_4096", |b| {
        let mut table: HashMap<NodeId, LocalNs> = HashMap::new();
        for i in 0..4096u32 {
            table.insert(NodeId(i), LocalNs(i as u64));
        }
        b.iter(|| {
            black_box(table.values().filter(|e| e.0 > 2048).count());
        });
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
