//! Client lease state-machine hot paths: the per-message cost of
//! opportunistic renewal (on_send + on_ack) and the poll cycle.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tank_core::{ClientLease, LeaseConfig};
use tank_proto::ReqSeq;
use tank_sim::LocalNs;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("lease_fsm");

    g.bench_function("send_ack_renewal", |b| {
        let mut lease = ClientLease::new(LeaseConfig::default());
        let mut seq = 0u64;
        let mut now = 0u64;
        b.iter(|| {
            seq += 1;
            now += 1_000;
            lease.on_send(ReqSeq(seq), LocalNs(now));
            black_box(lease.on_ack(ReqSeq(seq), LocalNs(now + 500)));
        });
    });

    g.bench_function("poll_quiet", |b| {
        let mut lease = ClientLease::new(LeaseConfig::default());
        lease.on_send(ReqSeq(1), LocalNs(0));
        lease.on_ack(ReqSeq(1), LocalNs(1));
        let mut now = 0u64;
        b.iter(|| {
            now += 10_000;
            black_box(lease.poll(LocalNs(now % 3_000_000_000)));
        });
    });

    g.bench_function("phase_query", |b| {
        let mut lease = ClientLease::new(LeaseConfig::default());
        lease.on_send(ReqSeq(1), LocalNs(0));
        lease.on_ack(ReqSeq(1), LocalNs(1));
        let mut now = 0u64;
        b.iter(|| {
            now += 1_000;
            black_box(lease.phase(LocalNs(now)));
        });
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
