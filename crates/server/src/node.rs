//! The Storage Tank server actor.
//!
//! Wires the metadata store, lock manager, passive lease authority, fence
//! controller and session table into one message-driven node. See the
//! crate docs for the architecture; the key protocol rules enforced here:
//!
//! * every client-initiated request is answered exactly once (dedup via
//!   the session window; duplicates replay the cached response);
//! * application errors ride inside ACKs (they still renew leases);
//!   protocol NACKs (§3.3) are reserved for suspect/expired clients;
//! * the server never initiates lease traffic; its only initiated messages
//!   are pushes (lock demands), and a push that stays unanswered through
//!   its retry budget *is* the delivery error that engages the configured
//!   [`RecoveryPolicy`];
//! * with [`RecoveryPolicy::LeaseFence`], once the authority's timer is
//!   armed the client is never ACKed again until it re-Hellos after the
//!   steal (§3.1's correctness rule), and fencing is constructed before
//!   locks are redistributed (§6).

use std::collections::HashMap;
use std::sync::Arc;

use tank_core::{ClientStanding, LeaseAuthority};
use tank_meta::{snapshot, DurableStore, MetaError, MetaStore, WalRecord, WalStats, Watermarks};
use tank_obs::Registry;
use tank_proto::message::{FileAttr, FsError, ReplyBody, RequestBody, ResponseOutcome};
use tank_proto::{
    BlockRange, CtlMsg, FenceOp, Incarnation, Ino, LockMode, NackReason, NetMsg, NodeId, PushBody,
    ReplMsg, ReqSeq, Request, Response, RouteError, SanMsg, ServerPush, SessionId, WriteTag,
};
use tank_sim::{Actor, Ctx, LocalNs, NetId, TimerId, TokenMap};

use crate::config::{DataPath, RecoveryPolicy, ServerConfig};
use crate::events::ServerEvent;
use crate::fence::FenceController;
use crate::lock::{Grant, LockManager, LockRequestOutcome};
use crate::obs::ServerObs;
use crate::session::{Admission, SessionTable};

/// Operation counters for the experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct ServerStats {
    /// Requests received (after dedup).
    pub requests: u64,
    /// Protocol NACKs sent.
    pub nacks: u64,
    /// Pushes (demands/invalidations) sent, including retries.
    pub pushes_sent: u64,
    /// Delivery errors declared.
    pub delivery_errors: u64,
    /// Lock-steal campaigns executed.
    pub steals: u64,
    /// Individual locks stolen.
    pub locks_stolen: u64,
    /// Fence campaigns completed.
    pub fences_completed: u64,
    /// Duplicate requests replayed from the response cache.
    pub replays: u64,
    /// Fail-stop restarts recovered from.
    pub recoveries: u64,
    /// Requests refused with `Recovering` during a grace window.
    pub recovery_nacks: u64,
    /// Standby takeovers via the diskless-lease election.
    pub elections: u64,
}

/// Timer tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServerTimer {
    /// Retry an unacknowledged push.
    PushRetry(u64),
    /// A demand was PushAcked but the release never arrived.
    ReleaseWait(u64),
    /// The lease authority's τ(1+ε) timer for a client.
    LeaseExpiry(NodeId),
    /// Steal-side grace for in-flight hardens: the lease expired (the
    /// client is condemned and NACKed) but the fence-and-steal waits
    /// `harden_grace` for SAN writes the client issued before its own
    /// expiry to land.
    StealGrace(NodeId),
    /// The post-restart recovery grace window elapsed.
    RecoveryDone,
    /// Periodic replication beat: the primary retransmits/heartbeats, the
    /// standby checks its election clock. Armed only when a peer is wired.
    ReplTick,
}

/// An outstanding server push.
#[derive(Debug, Clone)]
struct PendingPush {
    dst: NodeId,
    session: SessionId,
    body: PushBody,
    retries_left: u32,
    acked: bool,
    timer: Option<TimerId>,
}

/// A function-shipped I/O waiting on the SAN.
#[derive(Debug, Clone)]
struct SanPending {
    client: NodeId,
    session: SessionId,
    seq: ReqSeq,
    /// For writes: (ino, resulting size) committed on success.
    commit: Option<(Ino, u64)>,
}

/// The server node.
pub struct ServerNode<Ob> {
    cfg: ServerConfig,
    id: Option<NodeId>,
    meta: MetaStore,
    locks: LockManager,
    authority: LeaseAuthority,
    sessions: SessionTable,
    fences: FenceController,
    next_push_seq: u64,
    pushes: HashMap<u64, PendingPush>,
    timers: TokenMap<ServerTimer>,
    pending_san: HashMap<u64, SanPending>,
    next_san_req: u64,
    /// Bumped on every fail-stop restart; stamped on every response so
    /// clients detect restarts.
    incarnation: Incarnation,
    /// True while inside the post-restart recovery grace window.
    recovering: bool,
    stats: ServerStats,
    observe: Box<dyn Fn(ServerEvent) -> Option<Ob>>,
    obs: Option<ServerObs>,
    /// When each client's condemnation timer was armed (server-local),
    /// consumed at fire time to measure steal latency against `τ_s(1+ε)`.
    condemn_armed_at: HashMap<NodeId, LocalNs>,
    /// The slice of the shared disks this shard governs: the only range it
    /// allocates from, and the only range its fence commands cover — a
    /// shard must never fence another shard's traffic (§6, sharded).
    fence_range: BlockRange,
    /// The private durable device: snapshot + write-ahead log. Every
    /// metadata mutation is appended here and group-commit-fsynced before
    /// the acknowledgment that reports it leaves the node.
    wal: DurableStore,
    /// Store geometry, kept so recovery can rebuild a fresh sharded store
    /// when no snapshot exists yet.
    total_blocks: u64,
    block_size: usize,
    /// True while this node is a warm standby: it mirrors its peer's log
    /// and NACKs every client request until elected.
    standby: bool,
    /// Replication peer: the standby when primary, the primary when
    /// standby. `None` = replication unconfigured (the default; zero
    /// overhead for single-node shards).
    peer: Option<NodeId>,
    /// Snapshot generation / durable offset the standby last acked.
    peer_acked_gen: u64,
    peer_acked_durable: u64,
    /// What we last shipped (optimistic send cursor; the periodic tick
    /// falls back to the acked cursor, which heals dropped shipments).
    peer_sent_gen: u64,
    peer_sent_durable: u64,
    /// Standby's election clock: local time of the last Append/Heartbeat
    /// from the primary.
    last_repl_at: LocalNs,
    /// Canonical state image captured at the last recovery/promotion
    /// (tests compare it byte-for-byte against the pre-crash primary).
    last_replay_image: Option<Vec<u8>>,
}

impl<Ob> ServerNode<Ob> {
    /// New server with a fresh metadata store over `total_blocks` blocks.
    pub fn new(
        cfg: ServerConfig,
        total_blocks: u64,
        block_size: usize,
        observe: Box<dyn Fn(ServerEvent) -> Option<Ob>>,
    ) -> Self {
        let authority = LeaseAuthority::new(cfg.lease);
        let fence_range = cfg.map.block_range(cfg.sid, total_blocks);
        let meta = MetaStore::new_sharded(cfg.map, cfg.sid, total_blocks, block_size);
        let wal = DurableStore::new(cfg.compact_threshold);
        ServerNode {
            cfg,
            id: None,
            meta,
            locks: LockManager::new(),
            authority,
            sessions: SessionTable::new(),
            fences: FenceController::new(),
            next_push_seq: 1,
            pushes: HashMap::new(),
            timers: TokenMap::new(),
            pending_san: HashMap::new(),
            next_san_req: 1,
            incarnation: Incarnation(1),
            recovering: false,
            stats: ServerStats::default(),
            observe,
            obs: None,
            condemn_armed_at: HashMap::new(),
            fence_range,
            wal,
            total_blocks,
            block_size,
            standby: false,
            peer: None,
            peer_acked_gen: 0,
            peer_acked_durable: 0,
            peer_sent_gen: 0,
            peer_sent_durable: 0,
            last_repl_at: LocalNs(0),
            last_replay_image: None,
        }
    }

    /// Server with no observer.
    pub fn unobserved(cfg: ServerConfig, total_blocks: u64, block_size: usize) -> Self {
        ServerNode::new(cfg, total_blocks, block_size, Box::new(|_| None))
    }

    /// Attach an observability registry: grant/NACK/steal counters, the
    /// condemnation-latency histogram, and structured trace events.
    pub fn set_obs(&mut self, registry: Arc<Registry>) {
        self.obs = Some(ServerObs::new(registry));
    }

    /// Builder form of [`set_obs`](Self::set_obs).
    pub fn with_obs(mut self, registry: Arc<Registry>) -> Self {
        self.set_obs(registry);
        self
    }

    /// Operation counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// The lease authority (accounting access for the experiments).
    pub fn authority(&self) -> &LeaseAuthority {
        &self.authority
    }

    /// The metadata store (harvest access).
    pub fn meta(&self) -> &MetaStore {
        &self.meta
    }

    /// The lock manager (harvest access).
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// Root inode convenience.
    pub fn root_ino(&self) -> Ino {
        self.meta.root()
    }

    /// The current server incarnation.
    pub fn incarnation(&self) -> Incarnation {
        self.incarnation
    }

    /// True while the post-restart recovery grace window is open.
    pub fn is_recovering(&self) -> bool {
        self.recovering
    }

    /// True while this node is a warm standby (not yet elected).
    pub fn is_standby(&self) -> bool {
        self.standby
    }

    /// Wire this node into a replication pair (harness setup, before the
    /// world starts). With `standby = true` this node becomes the warm
    /// mirror of `peer`: it ingests log shipments, NACKs every client
    /// request `Misrouted(NotPrimary)`, and takes over via the
    /// diskless-lease election after τ(1+ε) of replication silence. With
    /// `standby = false`, `peer` is the standby this primary ships its
    /// durable log to at every group commit.
    pub fn set_replication(&mut self, peer: NodeId, standby: bool) {
        self.peer = Some(peer);
        self.standby = standby;
    }

    /// The durable device (read access for durability audits).
    pub fn wal(&self) -> &DurableStore {
        &self.wal
    }

    /// The durable device, mutable (tests inject torn tails / bit flips).
    pub fn wal_mut(&mut self) -> &mut DurableStore {
        &mut self.wal
    }

    /// Durable-log statistics (appends / fsyncs / compactions).
    pub fn wal_stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// Canonical byte image of the current namespace + allocator state
    /// (watermark-free), for byte-identical comparison in tests.
    pub fn namespace_image(&self) -> Vec<u8> {
        snapshot::encode(&self.meta, &Watermarks::default())
    }

    /// The namespace image captured at the last recovery or promotion.
    pub fn last_replay_image(&self) -> Option<&[u8]> {
        self.last_replay_image.as_deref()
    }

    /// Pre-create a file with `blocks` allocated blocks and a committed
    /// size covering them (harness setup; not a protocol path). Returns
    /// its inode.
    pub fn precreate_file(&mut self, name: &str, blocks: u32) -> Ino {
        let root = self.meta.root();
        let ino = self.meta.create(root, name, 0).expect("precreate: create");
        self.wal.append(&WalRecord::Create {
            parent: root,
            name: name.to_owned(),
            now: 0,
            ino,
        });
        if blocks > 0 {
            self.meta
                .alloc_blocks(ino, blocks)
                .expect("precreate: alloc");
            self.wal.append(&WalRecord::Alloc { ino, count: blocks });
            let size = blocks as u64 * self.meta.block_size() as u64;
            self.meta
                .commit_write(ino, size, 0)
                .expect("precreate: commit");
            self.wal.append(&WalRecord::Commit {
                ino,
                new_size: size,
                now: 0,
            });
        }
        self.wal.fsync();
        ino
    }

    fn emit(&mut self, ev: ServerEvent, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        if let Some(ob) = (self.observe)(ev) {
            ctx.observe(ob);
        }
    }

    // --------------------------------------------------------- durability

    /// Append one redo record to the (volatile) log tail. Durability comes
    /// from the group-commit fsync at the next acknowledgment point.
    fn wal_append(&mut self, rec: &WalRecord) {
        self.wal.append(rec);
        if let Some(obs) = &self.obs {
            obs.wal_appends.inc();
        }
    }

    /// Push the log tail to the durable device (no-op when nothing is
    /// pending; the fsync counter and the [`ServerEvent::WalSynced`]
    /// event only move when the watermark does).
    fn wal_fsync(&mut self, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        if self.wal.fsync() {
            if let Some(obs) = &self.obs {
                obs.wal_fsyncs.inc();
            }
            let durable = self.wal.durable_len() as u64;
            self.emit(ServerEvent::WalSynced { durable }, ctx);
        }
    }

    /// The watermarks a snapshot must carry so recovery restores counters
    /// monotonically past everything this incarnation issued.
    fn watermarks(&self) -> Watermarks {
        Watermarks {
            session: self.sessions.watermark(),
            epoch: self.locks.epoch_watermark(),
            incarnation: self.incarnation.0,
        }
    }

    /// Group commit: fsync the log tail, fold it into a snapshot when it
    /// outgrows the threshold, and ship new durable bytes to the warm
    /// standby. Called at every acknowledgment point — no response leaves
    /// this node before the records that justify it are durable.
    fn wal_sync_and_ship(&mut self, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        self.wal_fsync(ctx);
        if self.wal.needs_compaction() {
            let wm = self.watermarks();
            let bytes = snapshot::encode(&self.meta, &wm);
            self.wal.install_snapshot(bytes);
            if let Some(obs) = &self.obs {
                obs.snapshot_compactions.inc();
            }
        }
        self.ship_delta(ctx);
    }

    /// Ship newly durable bytes to the standby, cumulatively from the last
    /// offset we *sent*. The periodic [`ServerTimer::ReplTick`] resets the
    /// send cursor to the last offset the standby *acked*, so dropped or
    /// reordered shipments self-heal without retransmission state. A full
    /// snapshot rides along while the standby's generation trails ours.
    fn ship_delta(&mut self, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        if self.standby {
            return;
        }
        let Some(peer) = self.peer else {
            return;
        };
        let gen = self.wal.snap_gen();
        let durable = self.wal.durable_len() as u64;
        let (snapshot, offset) = if self.peer_sent_gen < gen {
            // Our compaction outran the standby: re-base it.
            (self.wal.snapshot().map(|s| s.to_vec()), 0)
        } else {
            (None, self.peer_sent_durable.min(durable))
        };
        if snapshot.is_none() && offset == durable {
            return; // nothing new; the tick-time heartbeat covers liveness
        }
        let bytes = self.wal.durable_delta(offset as usize).to_vec();
        self.peer_sent_gen = gen;
        self.peer_sent_durable = durable;
        ctx.send(
            NetId::CONTROL,
            peer,
            NetMsg::Repl(ReplMsg::Append {
                snap_gen: gen,
                snapshot,
                offset,
                bytes,
                durable,
            }),
        );
    }

    // ------------------------------------------------------------ replies

    fn respond(
        &mut self,
        client: NodeId,
        session: SessionId,
        seq: ReqSeq,
        outcome: ResponseOutcome,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        let resp = Response {
            dst: client,
            session,
            seq,
            incarnation: self.incarnation,
            outcome,
        };
        if resp.is_ack() {
            self.sessions.record_response(client, seq, resp.clone());
        } else {
            self.stats.nacks += 1;
        }
        // Write-ahead discipline: everything this response reports must be
        // durable before the response exists on the wire.
        self.wal_sync_and_ship(ctx);
        ctx.send(NetId::CONTROL, client, NetMsg::Ctl(CtlMsg::Response(resp)));
    }

    fn ack(
        &mut self,
        client: NodeId,
        session: SessionId,
        seq: ReqSeq,
        result: Result<ReplyBody, FsError>,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        self.respond(client, session, seq, ResponseOutcome::Acked(result), ctx);
    }

    fn nack(
        &mut self,
        client: NodeId,
        session: SessionId,
        seq: ReqSeq,
        reason: NackReason,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        if let Some(obs) = &self.obs {
            match reason {
                NackReason::LeaseTimingOut => obs.nack_lease_timing_out.inc(),
                NackReason::SessionExpired => obs.nack_session_expired.inc(),
                NackReason::StaleSession => obs.nack_stale_session.inc(),
                NackReason::Recovering => obs.nack_recovering.inc(),
                NackReason::Misrouted(_) => obs.nack_misrouted.inc(),
            }
            obs.trace(ctx, "nack", || {
                format!("client=n{} seq={} reason={reason:?}", client.0, seq.0)
            });
        }
        self.respond(client, session, seq, ResponseOutcome::Nacked(reason), ctx);
    }

    // ------------------------------------------------------------- pushes

    /// Issue a demand to `holder`. When the holder has no live session its
    /// lock is released instead; the resulting grants are *returned* (not
    /// delivered) so callers can process them iteratively — recursing here
    /// can overflow the stack under long waiter chains.
    #[must_use]
    fn start_demand(
        &mut self,
        holder: NodeId,
        ino: Ino,
        mode_needed: LockMode,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) -> Vec<Grant> {
        // One outstanding demand per (holder, ino) is enough.
        let dup = self.pushes.values().any(|p| {
            p.dst == holder && matches!(p.body, PushBody::Demand { ino: i, .. } if i == ino)
        });
        if dup {
            return Vec::new();
        }
        let Some(session) = self.sessions.current(holder) else {
            // Holder has no live session (already reset): treat as
            // released.
            return self.locks.release(holder, ino, None);
        };
        let Some(epoch) = self.locks.holding_epoch(holder, ino) else {
            return Vec::new(); // no longer a holder; nothing to demand
        };
        let push_seq = self.next_push_seq;
        self.next_push_seq += 1;
        self.pushes.insert(
            push_seq,
            PendingPush {
                dst: holder,
                session,
                body: PushBody::Demand {
                    ino,
                    mode_needed,
                    epoch,
                },
                retries_left: self.cfg.push_retries,
                acked: false,
                timer: None,
            },
        );
        if let Some(obs) = &self.obs {
            obs.datalock_revokes.inc();
        }
        self.send_push(push_seq, ctx);
        Vec::new()
    }

    fn send_push(&mut self, push_seq: u64, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        let interval = self.cfg.push_retry_interval;
        let Some(p) = self.pushes.get_mut(&push_seq) else {
            return;
        };
        let msg = ServerPush {
            dst: p.dst,
            session: p.session,
            push_seq,
            body: p.body.clone(),
        };
        let dst = p.dst;
        let token = self.timers.insert(ServerTimer::PushRetry(push_seq));
        let timer = ctx.set_timer(interval, token);
        if let Some(p) = self.pushes.get_mut(&push_seq) {
            p.timer = Some(timer);
        }
        self.stats.pushes_sent += 1;
        if let Some(obs) = &self.obs {
            obs.demands_sent.inc();
            obs.trace(ctx, "demand", || {
                format!("client=n{} push_seq={push_seq}", dst.0)
            });
        }
        ctx.send(NetId::CONTROL, dst, NetMsg::Ctl(CtlMsg::Push(msg)));
    }

    /// Cancel pushes matching `pred` (their goal was achieved).
    fn cancel_pushes(
        &mut self,
        pred: impl Fn(&PendingPush) -> bool,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        let mut done: Vec<u64> = self
            .pushes
            .iter()
            .filter(|(_, p)| pred(p))
            .map(|(k, _)| *k)
            .collect();
        done.sort_unstable();
        for k in done {
            if let Some(p) = self.pushes.remove(&k) {
                if let Some(t) = p.timer {
                    ctx.cancel_timer(t);
                }
            }
            self.timers.cancel_where(
                |t| matches!(t, ServerTimer::PushRetry(s) | ServerTimer::ReleaseWait(s) if *s == k),
            );
        }
    }

    // ----------------------------------------------------------- recovery

    fn delivery_error(&mut self, client: NodeId, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        self.stats.delivery_errors += 1;
        if let Some(obs) = &self.obs {
            obs.delivery_errors.inc();
            obs.trace(ctx, "delivery-error", || format!("client=n{}", client.0));
        }
        self.emit(ServerEvent::DeliveryError { client }, ctx);
        // Stop pushing at the unresponsive client.
        self.cancel_pushes(|p| p.dst == client, ctx);
        match self.cfg.policy {
            RecoveryPolicy::HonorLocks => {
                // §2 without a safety protocol: locked data simply stays
                // unavailable until the client reappears.
            }
            RecoveryPolicy::StealImmediately => {
                self.sessions.remove(client);
                self.do_steal(client, ctx);
            }
            RecoveryPolicy::FenceThenSteal => {
                self.sessions.remove(client);
                self.begin_fence(client, ctx);
            }
            RecoveryPolicy::LeaseFence => {
                let now = ctx.now();
                if let Some(fires_at) = self.authority.on_delivery_error(client, now) {
                    let delay = LocalNs(fires_at.0.saturating_sub(now.0));
                    let token = self.timers.insert(ServerTimer::LeaseExpiry(client));
                    ctx.set_timer(delay, token);
                    self.condemn_armed_at.entry(client).or_insert(now);
                    if let Some(obs) = &self.obs {
                        obs.condemn_armed.inc();
                        obs.trace(ctx, "condemn-armed", || {
                            format!("client=n{} fires_in_ns={}", client.0, delay.0)
                        });
                    }
                }
            }
        }
    }

    fn begin_fence(&mut self, client: NodeId, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        let disks = self.cfg.disks.clone();
        let sends = self.fences.begin(client, FenceOp::Fence, &disks);
        if sends.is_empty() {
            // No disks configured: fence is trivially in force.
            self.fence_complete(client, ctx);
            return;
        }
        for (req_id, disk) in sends {
            ctx.send(
                NetId::SAN,
                disk,
                NetMsg::San(SanMsg::FenceCmd {
                    req_id,
                    target: client,
                    op: FenceOp::Fence,
                    range: self.fence_range,
                }),
            );
        }
    }

    fn begin_unfence(&mut self, client: NodeId, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        let disks = self.cfg.disks.clone();
        for (req_id, disk) in self.fences.begin(client, FenceOp::Unfence, &disks) {
            ctx.send(
                NetId::SAN,
                disk,
                NetMsg::San(SanMsg::FenceCmd {
                    req_id,
                    target: client,
                    op: FenceOp::Unfence,
                    range: self.fence_range,
                }),
            );
        }
    }

    fn fence_complete(&mut self, client: NodeId, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        self.stats.fences_completed += 1;
        if let Some(obs) = &self.obs {
            obs.fences.inc();
            obs.trace(ctx, "fence", || format!("client=n{}", client.0));
        }
        self.emit(ServerEvent::Fenced { client }, ctx);
        self.do_steal(client, ctx);
    }

    fn do_steal(&mut self, client: NodeId, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        self.stats.steals += 1;
        let (stolen, grants) = self.locks.steal_all(client);
        self.stats.locks_stolen += stolen.len() as u64;
        if let Some(obs) = &self.obs {
            obs.steals.inc();
            obs.lock_stolen.add(stolen.len() as u64);
            obs.trace(ctx, "steal", || {
                format!("client=n{} locks={}", client.0, stolen.len())
            });
        }
        for (ino, epoch) in stolen {
            self.emit(ServerEvent::LockStolen { client, ino, epoch }, ctx);
        }
        self.deliver_grants(grants, ctx);
    }

    /// Deliver grants and issue follow-up demands, iteratively: demands to
    /// session-less holders release their locks, which may produce further
    /// grants, and so on — a work queue keeps the stack flat.
    fn deliver_grants(&mut self, grants: Vec<Grant>, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        let mut queue: std::collections::VecDeque<Grant> = grants.into();
        let mut guard = 0u32;
        while !queue.is_empty() {
            guard += 1;
            assert!(guard < 1_000_000, "grant delivery failed to converge");
            let mut touched: Vec<Ino> = Vec::new();
            while let Some(g) = queue.pop_front() {
                touched.push(g.ino);
                // Grant epochs order conflicting ownership across crashes;
                // the watermark must be durable before the grant is ACKed.
                self.wal_append(&WalRecord::EpochWatermark(g.epoch.0));
                if let Some(obs) = &self.obs {
                    obs.lock_granted.inc();
                    match g.mode {
                        LockMode::SharedRead => obs.datalock_shared_grants.inc(),
                        LockMode::Exclusive => obs.datalock_exclusive_grants.inc(),
                    }
                    obs.trace(ctx, "grant", || {
                        format!("client=n{} ino={} epoch={}", g.client.0, g.ino.0, g.epoch.0)
                    });
                }
                self.emit(
                    ServerEvent::LockGranted {
                        client: g.client,
                        ino: g.ino,
                        epoch: g.epoch,
                        mode: g.mode,
                    },
                    ctx,
                );
                if let Some((session, seq)) = g.answers {
                    // The waiter may have re-sessioned while queued; answer
                    // on the session it asked with (a stale client ignores
                    // it).
                    let (blocks, size) = self.meta.file_extent(g.ino).unwrap_or((Vec::new(), 0));
                    self.ack(
                        g.client,
                        session,
                        seq,
                        Ok(ReplyBody::LockGranted {
                            ino: g.ino,
                            mode: g.mode,
                            epoch: g.epoch,
                            blocks,
                            size,
                        }),
                        ctx,
                    );
                }
            }
            // The queue may still have waiters blocked by the *new*
            // holders: (re-)demand on their behalf, or the queue wedges.
            touched.sort();
            touched.dedup();
            for ino in touched {
                for (holder, mode) in self.locks.pending_demands(ino) {
                    queue.extend(self.start_demand(holder, ino, mode, ctx));
                }
            }
        }
    }

    // ----------------------------------------------------------- requests

    fn do_hello(&mut self, client: NodeId, req: &Request, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        // Hello sits outside the session dedup window (it *creates* the
        // session), so duplicates are suppressed by (client, seq) here:
        // re-executing one would mint a second session and orphan the
        // one the client is actually using.
        if let Some(resp) = self.sessions.hello_replay(client, req.seq) {
            self.stats.replays += 1;
            // tank-lint: allow(L6) resends the cached hello reply; its state was synced when first produced
            ctx.send(NetId::CONTROL, client, NetMsg::Ctl(CtlMsg::Response(resp)));
            return;
        }
        // A fresh session abandons everything the old incarnation held.
        let (stolen, grants) = self.locks.steal_all(client);
        for (ino, epoch) in stolen {
            if let Some(obs) = &self.obs {
                obs.lock_released.inc();
                obs.trace(ctx, "release", || {
                    format!(
                        "client=n{} ino={} epoch={} abandoned",
                        client.0, ino.0, epoch.0
                    )
                });
            }
            self.emit(ServerEvent::LockReleased { client, ino, epoch }, ctx);
        }
        self.deliver_grants(grants, ctx);
        self.authority.on_new_session(client);
        if self.fences.is_fenced(client) {
            self.begin_unfence(client, ctx);
        }
        let session = self.sessions.begin(client);
        // The session watermark is the at-most-once fix: a reborn server
        // restores it from the log, so post-crash sessions can never reuse
        // an id whose dedup window a surviving client still holds open.
        self.wal_append(&WalRecord::SessionWatermark(self.sessions.watermark()));
        if let Some(obs) = &self.obs {
            obs.sessions.inc();
            obs.trace(ctx, "session", || {
                format!("client=n{} session={}", client.0, session.0)
            });
        }
        self.emit(ServerEvent::NewSession { client }, ctx);
        // Hello replies are addressed with the *new* session so the lease
        // renewal lands in the new incarnation.
        let resp = Response {
            dst: client,
            session,
            seq: req.seq,
            incarnation: self.incarnation,
            outcome: ResponseOutcome::Acked(Ok(ReplyBody::HelloOk {
                session,
                map_epoch: self.cfg.map.epoch(),
            })),
        };
        self.sessions.record_hello(client, req.seq, resp.clone());
        // Hello bypasses `respond` (it addresses the new session), so it
        // carries its own group-commit point.
        self.wal_sync_and_ship(ctx);
        ctx.send(NetId::CONTROL, client, NetMsg::Ctl(CtlMsg::Response(resp)));
    }

    fn map_meta<T>(r: Result<T, MetaError>) -> Result<T, FsError> {
        r.map_err(|e| match e {
            MetaError::NotFound => FsError::NotFound,
            MetaError::Exists => FsError::Exists,
            MetaError::Invalid => FsError::Invalid,
            MetaError::NoSpace => FsError::NoSpace,
        })
    }

    fn execute(&mut self, client: NodeId, req: Request, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        let session = req.session;
        let seq = req.seq;
        match req.body {
            RequestBody::Hello { .. } => unreachable!("hello handled before execute"),
            RequestBody::LockAcquire { ino, mode } => {
                self.do_lock_acquire(client, session, seq, ino, mode, ctx);
            }
            RequestBody::ReadData { ino, offset, len } => {
                self.do_read_data(client, session, seq, ino, offset, len, ctx);
            }
            RequestBody::WriteData { ino, offset, data } => {
                self.do_write_data(client, session, seq, ino, offset, data, ctx);
            }
            RequestBody::Batch(elems) => {
                self.do_batch(client, session, seq, elems, ctx);
            }
            body => {
                let result = self.execute_sync(client, body, ctx);
                self.ack(client, session, seq, result, ctx);
            }
        }
    }

    /// Vectored execution of a batch: elements run in order and the first
    /// file-system error stops the rest (later elements are never
    /// executed and get no outcome entry). The batch is answered with one
    /// ACK carrying the per-element outcomes — one message, one lease
    /// renewal, exactly the §3.1 accounting a single op would get.
    fn do_batch(
        &mut self,
        client: NodeId,
        session: SessionId,
        seq: ReqSeq,
        elems: Vec<RequestBody>,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        let mut outcomes: Vec<Result<ReplyBody, FsError>> = Vec::with_capacity(elems.len());
        for body in elems {
            // Wire decoding already rejects nesting; non-batchable shapes
            // (lock acquires, SAN round trips...) cannot produce an
            // in-order synchronous reply, so they fail the element rather
            // than wedging the batch.
            let result = if body.batchable() {
                self.execute_sync(client, body, ctx)
            } else {
                Err(FsError::Invalid)
            };
            let stop = result.is_err();
            outcomes.push(result);
            if stop {
                break;
            }
        }
        self.ack(client, session, seq, Ok(ReplyBody::Batch(outcomes)), ctx);
    }

    /// Execute one synchronously-answerable request body and return its
    /// file-system outcome. Shapes that answer asynchronously
    /// (`LockAcquire` may queue behind a conflicting holder; the SAN data
    /// path suspends the request) or that carry session semantics are
    /// `Invalid` here — [`Self::execute`] routes them to their own
    /// handlers before delegating, and batch elements exclude them.
    fn execute_sync(
        &mut self,
        client: NodeId,
        body: RequestBody,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) -> Result<ReplyBody, FsError> {
        let now = ctx.now().0;
        match body {
            RequestBody::KeepAlive => Ok(ReplyBody::Ok),
            RequestBody::Create { parent, name } => {
                let r = Self::map_meta(self.meta.create(parent, &name, now));
                if let Ok(ino) = r {
                    self.wal_append(&WalRecord::Create {
                        parent,
                        name,
                        now,
                        ino,
                    });
                }
                r.map(|ino| ReplyBody::Created { ino })
            }
            RequestBody::Mkdir { parent, name } => {
                let r = Self::map_meta(self.meta.mkdir(parent, &name, now));
                if let Ok(ino) = r {
                    self.wal_append(&WalRecord::Mkdir {
                        parent,
                        name,
                        now,
                        ino,
                    });
                }
                r.map(|ino| ReplyBody::Created { ino })
            }
            RequestBody::Lookup { parent, name } => Self::map_meta(self.meta.lookup(parent, &name))
                .map(|(ino, attr)| ReplyBody::Resolved { ino, attr }),
            RequestBody::ReadDir { dir } => {
                Self::map_meta(self.meta.readdir(dir)).map(|entries| ReplyBody::Dir { entries })
            }
            RequestBody::RenameLink { dir, name, ino } => {
                let r = Self::map_meta(self.meta.rename_link(dir, &name, ino));
                if r.is_ok() {
                    self.wal_append(&WalRecord::RenameLink { dir, name, ino });
                }
                r.map(|_| ReplyBody::Ok)
            }
            RequestBody::RenameUnlink { dir, name } => {
                let r = Self::map_meta(self.meta.rename_unlink(dir, &name));
                if r.is_ok() {
                    self.wal_append(&WalRecord::RenameUnlink { dir, name });
                }
                r.map(|_| ReplyBody::Ok)
            }
            RequestBody::Unlink { parent, name } => {
                // Unlinking a locked file would free its blocks for
                // reallocation while a holder may still flush to them —
                // block reuse corruption. Deny while contended.
                match self.meta.lookup(parent, &name) {
                    Ok((ino, _)) if self.locks.is_contended(ino) => Err(FsError::Unavailable),
                    _ => {
                        let r = Self::map_meta(self.meta.unlink(parent, &name));
                        if r.is_ok() {
                            self.wal_append(&WalRecord::Unlink { parent, name });
                        }
                        r.map(|_| ReplyBody::Ok)
                    }
                }
            }
            RequestBody::GetAttr { ino } => {
                Self::map_meta(self.meta.getattr(ino)).map(|attr| ReplyBody::Attr { attr })
            }
            RequestBody::SetAttr { ino, size } => {
                // Truncation changes data visibility: it requires the
                // exclusive lock, like any other write.
                if size.is_some() && !self.locks.holds(client, ino, LockMode::Exclusive) {
                    Err(FsError::NotLocked)
                } else {
                    let r = Self::map_meta(self.meta.setattr(ino, size, now));
                    if r.is_ok() {
                        self.wal_append(&WalRecord::SetAttr { ino, size, now });
                    }
                    r.map(|attr| ReplyBody::Attr { attr })
                }
            }
            RequestBody::LockRelease { ino, epoch } => {
                let held = self.locks.holding_epoch(client, ino);
                let grants = self.locks.release(client, ino, Some(epoch));
                if held == Some(epoch) {
                    if let Some(obs) = &self.obs {
                        obs.lock_released.inc();
                        obs.trace(ctx, "release", || {
                            format!("client=n{} ino={} epoch={}", client.0, ino.0, epoch.0)
                        });
                    }
                    self.emit(ServerEvent::LockReleased { client, ino, epoch }, ctx);
                    // The demand (if any) is satisfied.
                    self.cancel_pushes(
                        |p| {
                            p.dst == client
                                && matches!(p.body, PushBody::Demand { ino: i, .. } if i == ino)
                        },
                        ctx,
                    );
                }
                self.deliver_grants(grants, ctx);
                Ok(ReplyBody::Ok)
            }
            RequestBody::PushAck { push_seq } => {
                self.do_push_ack(push_seq, ctx);
                Ok(ReplyBody::Ok)
            }
            RequestBody::AllocBlocks { ino, count } => {
                if !self.locks.holds(client, ino, LockMode::Exclusive) {
                    Err(FsError::NotLocked)
                } else {
                    let r = Self::map_meta(self.meta.alloc_blocks(ino, count));
                    if r.is_ok() {
                        self.wal_append(&WalRecord::Alloc { ino, count });
                    }
                    r.map(|blocks| ReplyBody::Allocated { blocks })
                }
            }
            RequestBody::CommitWrite { ino, new_size } => {
                if !self.locks.holds(client, ino, LockMode::Exclusive) {
                    Err(FsError::NotLocked)
                } else {
                    let r = Self::map_meta(self.meta.commit_write(ino, new_size, now));
                    if r.is_ok() {
                        self.wal_append(&WalRecord::Commit { ino, new_size, now });
                    }
                    r.map(|_| ReplyBody::Ok)
                }
            }
            RequestBody::Hello { .. }
            | RequestBody::LockAcquire { .. }
            | RequestBody::ReadData { .. }
            | RequestBody::WriteData { .. }
            | RequestBody::Batch(_) => Err(FsError::Invalid),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn do_lock_acquire(
        &mut self,
        client: NodeId,
        session: SessionId,
        seq: ReqSeq,
        ino: Ino,
        mode: LockMode,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        // Locking a nonexistent file is an application error.
        let attr: Result<FileAttr, FsError> = Self::map_meta(self.meta.getattr(ino));
        if let Err(e) = attr {
            return self.ack(client, session, seq, Err(e), ctx);
        }
        match self.locks.request(client, ino, mode, session, seq) {
            LockRequestOutcome::Granted(g) => {
                self.wal_append(&WalRecord::EpochWatermark(g.epoch.0));
                if let Some(obs) = &self.obs {
                    obs.lock_granted.inc();
                    match mode {
                        LockMode::SharedRead => obs.datalock_shared_grants.inc(),
                        LockMode::Exclusive => obs.datalock_exclusive_grants.inc(),
                    }
                    obs.trace(ctx, "grant", || {
                        format!("client=n{} ino={} epoch={}", client.0, ino.0, g.epoch.0)
                    });
                }
                self.emit(
                    ServerEvent::LockGranted {
                        client,
                        ino,
                        epoch: g.epoch,
                        mode,
                    },
                    ctx,
                );
                let (blocks, size) = self.meta.file_extent(ino).unwrap_or((Vec::new(), 0));
                self.ack(
                    client,
                    session,
                    seq,
                    Ok(ReplyBody::LockGranted {
                        ino,
                        mode,
                        epoch: g.epoch,
                        blocks,
                        size,
                    }),
                    ctx,
                );
            }
            LockRequestOutcome::AlreadyHeld(epoch, held_mode) => {
                let (blocks, size) = self.meta.file_extent(ino).unwrap_or((Vec::new(), 0));
                self.ack(
                    client,
                    session,
                    seq,
                    Ok(ReplyBody::LockGranted {
                        ino,
                        mode: held_mode,
                        epoch,
                        blocks,
                        size,
                    }),
                    ctx,
                );
            }
            LockRequestOutcome::Queued { demand_from } => {
                self.emit(ServerEvent::RequestBlocked { client, ino, seq }, ctx);
                let mut grants = Vec::new();
                for holder in demand_from {
                    grants.extend(self.start_demand(holder, ino, mode, ctx));
                }
                self.deliver_grants(grants, ctx);
                // No reply yet: the grant answers the request later.
            }
        }
    }

    fn do_push_ack(&mut self, push_seq: u64, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        let Some(p) = self.pushes.get_mut(&push_seq) else {
            return;
        };
        if p.acked {
            return;
        }
        p.acked = true;
        if let Some(t) = p.timer.take() {
            ctx.cancel_timer(t);
        }
        self.timers
            .cancel_where(|t| matches!(t, ServerTimer::PushRetry(s) if *s == push_seq));
        match p.body {
            PushBody::Demand { .. } => {
                // The client is flushing; give it bounded time to release.
                let timeout = self.cfg.release_timeout;
                let token = self.timers.insert(ServerTimer::ReleaseWait(push_seq));
                let timer = ctx.set_timer(timeout, token);
                if let Some(p) = self.pushes.get_mut(&push_seq) {
                    p.timer = Some(timer);
                }
            }
            PushBody::Invalidate { .. } => {
                // Ack completes an invalidation.
                self.pushes.remove(&push_seq);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn do_read_data(
        &mut self,
        client: NodeId,
        session: SessionId,
        seq: ReqSeq,
        ino: Ino,
        offset: u64,
        len: u32,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        if self.cfg.data_path != DataPath::FunctionShip {
            return self.ack(client, session, seq, Err(FsError::Invalid), ctx);
        }
        let bs = self.meta.block_size() as u64;
        assert!(
            offset.is_multiple_of(bs) && len as u64 == bs,
            "function-ship I/O is whole-block"
        );
        let Ok((blocks, size)) = self.meta.file_extent(ino) else {
            return self.ack(client, session, seq, Err(FsError::NotFound), ctx);
        };
        let idx = (offset / bs) as usize;
        if offset >= size || idx >= blocks.len() {
            // Reading past EOF returns zeroes without touching the SAN.
            return self.ack(
                client,
                session,
                seq,
                Ok(ReplyBody::Data {
                    data: vec![0u8; len as usize],
                }),
                ctx,
            );
        }
        let req_id = self.next_san_req;
        self.next_san_req += 1;
        self.pending_san.insert(
            req_id,
            SanPending {
                client,
                session,
                seq,
                commit: None,
            },
        );
        let disk = self.disk_for(blocks[idx]);
        ctx.send(
            NetId::SAN,
            disk,
            NetMsg::San(SanMsg::ReadBlock {
                req_id,
                block: blocks[idx],
            }),
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn do_write_data(
        &mut self,
        client: NodeId,
        session: SessionId,
        seq: ReqSeq,
        ino: Ino,
        offset: u64,
        data: Vec<u8>,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        if self.cfg.data_path != DataPath::FunctionShip {
            return self.ack(client, session, seq, Err(FsError::Invalid), ctx);
        }
        let bs = self.meta.block_size() as u64;
        assert!(
            offset.is_multiple_of(bs) && data.len() as u64 == bs,
            "function-ship I/O is whole-block"
        );
        let idx = (offset / bs) as usize;
        let Ok((mut blocks, _)) = self.meta.file_extent(ino) else {
            return self.ack(client, session, seq, Err(FsError::NotFound), ctx);
        };
        if idx >= blocks.len() {
            let need = (idx + 1 - blocks.len()) as u32;
            match Self::map_meta(self.meta.alloc_blocks(ino, need)) {
                Ok(b) => blocks = b,
                Err(e) => return self.ack(client, session, seq, Err(e), ctx),
            }
        }
        let req_id = self.next_san_req;
        self.next_san_req += 1;
        let new_size = offset + bs;
        self.pending_san.insert(
            req_id,
            SanPending {
                client,
                session,
                seq,
                commit: Some((ino, new_size)),
            },
        );
        // The server serializes all function-shipped writes, so a stamped
        // epoch gives the checker the same total order locks would. The
        // even wseq carries this shard's id: epochs are per-shard
        // counters, so without it two shards could stamp the same
        // (writer, epoch, wseq) for one client and break the tag
        // uniqueness contract (client-minted tags take the odd values).
        let tag = WriteTag {
            writer: client,
            epoch: self.locks.stamp_epoch(),
            wseq: 2 * self.cfg.sid.0 as u64,
        };
        self.wal_append(&WalRecord::EpochWatermark(tag.epoch.0));
        let block = blocks[idx];
        let disk = self.disk_for(block);
        ctx.send(
            NetId::SAN,
            disk,
            NetMsg::San(SanMsg::WriteBlock {
                req_id,
                block,
                data,
                tag,
            }),
        );
    }

    /// Which disk a block lives on (shared striping rule from tank-proto).
    fn disk_for(&self, block: tank_proto::BlockId) -> NodeId {
        self.cfg.disks[tank_proto::stripe_disk(block, self.cfg.disks.len())]
    }

    fn on_san(&mut self, san: SanMsg, from: NodeId, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        match san {
            SanMsg::FenceResp { req_id } => {
                if let Some((client, FenceOp::Fence)) = self.fences.on_response(req_id, from) {
                    self.fence_complete(client, ctx);
                }
            }
            SanMsg::ReadResp { req_id, result } => {
                let Some(p) = self.pending_san.remove(&req_id) else {
                    return;
                };
                let reply = match result {
                    Ok(ok) => Ok(ReplyBody::Data { data: ok.data }),
                    Err(_) => Err(FsError::Invalid),
                };
                self.ack(p.client, p.session, p.seq, reply, ctx);
            }
            SanMsg::WriteResp { req_id, result } => {
                let Some(p) = self.pending_san.remove(&req_id) else {
                    return;
                };
                let reply = match result {
                    Ok(()) => {
                        if let Some((ino, new_size)) = p.commit {
                            let now = ctx.now().0;
                            if self.meta.commit_write(ino, new_size, now).is_ok() {
                                self.wal_append(&WalRecord::Commit { ino, new_size, now });
                            }
                        }
                        Ok(ReplyBody::Ok)
                    }
                    Err(_) => Err(FsError::Invalid),
                };
                self.ack(p.client, p.session, p.seq, reply, ctx);
            }
            other => {
                // Protocol anomaly: counted and traced, never printed —
                // normal runs stay silent, exporter runs see it structured.
                if let Some(obs) = &self.obs {
                    obs.unexpected_msgs.inc();
                    obs.trace(ctx, "unexpected", || format!("san {other:?}"));
                }
            }
        }
    }

    // -------------------------------------------------------- replication

    /// Replication traffic: shipments and heartbeats land on the standby,
    /// cumulative acks land back on the primary. Role mismatches (a dead
    /// primary's stray shipment arriving after our promotion) are counted
    /// as anomalies and dropped.
    fn on_repl(&mut self, from: NodeId, msg: ReplMsg, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        match msg {
            ReplMsg::Append {
                snap_gen,
                snapshot,
                offset,
                bytes,
                durable,
            } => {
                if !self.standby {
                    if let Some(obs) = &self.obs {
                        obs.unexpected_msgs.inc();
                        obs.trace(ctx, "unexpected", || {
                            format!("repl_append at non-standby from n{}", from.0)
                        });
                    }
                    return;
                }
                self.last_repl_at = ctx.now();
                self.wal
                    .ingest(snap_gen, snapshot.as_deref(), offset, &bytes, durable);
                ctx.send(
                    NetId::CONTROL,
                    from,
                    NetMsg::Repl(ReplMsg::AppendAck {
                        snap_gen: self.wal.snap_gen(),
                        durable: self.wal.durable_len() as u64,
                    }),
                );
            }
            ReplMsg::AppendAck { snap_gen, durable } => {
                if self.standby {
                    return; // stray ack; harmless
                }
                // Acks are cumulative within a generation; one from before
                // our last compaction is stale (the tick re-bases the
                // standby with a snapshot shipment).
                if snap_gen == self.wal.snap_gen() {
                    if snap_gen > self.peer_acked_gen {
                        self.peer_acked_gen = snap_gen;
                        self.peer_acked_durable = durable;
                    } else {
                        self.peer_acked_durable = self.peer_acked_durable.max(durable);
                    }
                }
            }
            ReplMsg::Heartbeat { .. } => {
                if self.standby {
                    self.last_repl_at = ctx.now();
                }
            }
        }
    }

    /// Periodic replication beat. The primary retransmits from the acked
    /// cursor (healing dropped shipments) or heartbeats when the standby
    /// is caught up; the standby checks its election clock and takes over
    /// after τ(1+ε) of silence. Re-arms itself while a peer is wired.
    fn on_repl_tick(&mut self, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        if self.peer.is_none() {
            return;
        }
        if self.standby {
            // Diskless-lease election: τ(1+ε) of replication silence on
            // our own clock means every lease the primary could have
            // granted before dying has expired on its holder's clock
            // (Theorem 3.1's rate argument) — taking over cannot place a
            // new grant in conflict with a surviving pre-crash holder.
            let now = ctx.now();
            if now.0.saturating_sub(self.last_repl_at.0) >= self.cfg.lease.server_timeout().0 {
                self.promote(ctx);
                return; // promoted: no longer ticking as a mirror
            }
        } else {
            // Fall back to the acked cursor so anything the standby missed
            // is reshipped; if it holds everything, just prove liveness.
            self.peer_sent_gen = self.peer_acked_gen;
            self.peer_sent_durable = self.peer_acked_durable;
            let caught_up = self.peer_acked_gen == self.wal.snap_gen()
                && self.peer_acked_durable >= self.wal.durable_len() as u64;
            if caught_up {
                if let Some(peer) = self.peer {
                    ctx.send(
                        NetId::CONTROL,
                        peer,
                        NetMsg::Repl(ReplMsg::Heartbeat {
                            incarnation: self.incarnation,
                        }),
                    );
                }
            } else {
                self.ship_delta(ctx);
            }
        }
        let token = self.timers.insert(ServerTimer::ReplTick);
        ctx.set_timer(self.repl_interval(), token);
    }

    /// Replication beat period: τ(1+ε)/4, so a healthy primary proves
    /// liveness several times per election window.
    fn repl_interval(&self) -> LocalNs {
        LocalNs(self.cfg.lease.server_timeout().0 / 4)
    }

    /// Standby takeover: become the shard's primary by recovering from the
    /// mirrored log, exactly as a restarted primary recovers from its own.
    /// By election time every pre-crash lease has expired at its holder,
    /// and the recovery grace window (opened inside the shared recovery
    /// path) re-runs the same proximity argument for the new incarnation.
    fn promote(&mut self, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        self.standby = false;
        // Single-failover scope: the dead primary does not come back as
        // our standby; stop addressing it.
        self.peer = None;
        self.stats.elections += 1;
        if let Some(obs) = &self.obs {
            obs.failover_elections.inc();
            obs.trace(ctx, "failover", || {
                "elected after replication silence".to_owned()
            });
        }
        self.recover_from_wal(ctx);
    }

    /// Rebuild *all* state from the durable device: decode the snapshot,
    /// replay the log's valid prefix, restore the session/epoch
    /// watermarks, and adopt — durably — an incarnation past every one in
    /// the log. Shared by fail-stop restart and standby promotion: the
    /// two are the same act of reconstruction, differing only in whose
    /// device the bytes came from.
    fn recover_from_wal(&mut self, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        let recovered = snapshot::recover(
            &mut self.wal,
            self.cfg.map,
            self.cfg.sid,
            self.total_blocks,
            self.block_size,
        );
        self.meta = recovered.store;
        self.sessions = SessionTable::new();
        self.sessions
            .restore_watermark(recovered.watermarks.session);
        self.locks = LockManager::new();
        self.locks.restore_epoch(recovered.watermarks.epoch);
        // The incarnation is read back from the log, never from memory: a
        // replacement process — or the standby holding a mirror — computes
        // the same successor, and it is fsynced before anything is served
        // so the *next* recovery sees it too.
        self.incarnation = Incarnation(recovered.watermarks.incarnation + 1);
        self.wal_append(&WalRecord::Incarnation(self.incarnation.0));
        self.wal_fsync(ctx);
        // Incarnation-qualified epoch floor: the logged `EpochWatermark`
        // can lag reality — an unfsynced tail dies with the crash, and a
        // standby's mirror misses whatever the final replication deltas
        // dropped. The watermark alone would let this incarnation re-mint
        // an epoch the old one already stamped onto writes, corrupting
        // fence ordering. Lifting the counter to `incarnation << 32`
        // (each incarnation owns a disjoint 4-billion-epoch range, and
        // incarnations strictly increase) makes cross-incarnation epoch
        // monotonicity unconditional instead of watermark-dependent.
        self.locks.restore_epoch(self.incarnation.0 << 32);
        self.last_replay_image = Some(self.namespace_image());
        if let Some(obs) = &self.obs {
            // Modeled replay cost: 1µs per record (the sim replays in zero
            // virtual time; the histogram records the modeled work).
            obs.replay_latency_ns
                .observe(recovered.replayed as u64 * 1_000);
            obs.trace(ctx, "replay", || {
                format!(
                    "records={} defect={:?} incarnation={}",
                    recovered.replayed, recovered.defect, self.incarnation.0
                )
            });
        }
        self.authority = LeaseAuthority::new(self.cfg.lease);
        self.pushes.clear();
        self.pending_san.clear();
        // Timers armed before the crash may still fire; invalidating the
        // tokens (while keeping the counter monotonic) makes them no-ops.
        self.timers.cancel_where(|_| true);
        self.condemn_armed_at.clear();
        if self.cfg.recovery_grace {
            self.recovering = true;
            if let Some(obs) = &self.obs {
                obs.recovery_began.inc();
                obs.trace(ctx, "recovery", || {
                    format!("began incarnation={}", self.incarnation.0)
                });
            }
            self.emit(ServerEvent::RecoveryBegan, ctx);
            let token = self.timers.insert(ServerTimer::RecoveryDone);
            ctx.set_timer(self.cfg.lease.server_timeout(), token);
        }
    }

    /// True for request bodies a recovering server must refuse: anything
    /// that grants a lock or mutates metadata. Everything else (Hello,
    /// keep-alives, reads, push/lock bookkeeping) is benign — in
    /// particular, surviving clients must be able to re-register and
    /// release while the grace window is open.
    fn needs_full_service(body: &RequestBody) -> bool {
        match body {
            RequestBody::LockAcquire { .. }
            | RequestBody::Create { .. }
            | RequestBody::Mkdir { .. }
            | RequestBody::Unlink { .. }
            | RequestBody::RenameLink { .. }
            | RequestBody::RenameUnlink { .. }
            | RequestBody::SetAttr { .. }
            | RequestBody::AllocBlocks { .. }
            | RequestBody::CommitWrite { .. }
            | RequestBody::WriteData { .. } => true,
            // A batch needs full service exactly when any element does —
            // first-error-stops would otherwise half-execute it against a
            // recovering server.
            RequestBody::Batch(elems) => elems.iter().any(Self::needs_full_service),
            RequestBody::Hello { .. }
            | RequestBody::KeepAlive
            | RequestBody::Lookup { .. }
            | RequestBody::ReadDir { .. }
            | RequestBody::GetAttr { .. }
            | RequestBody::LockRelease { .. }
            | RequestBody::PushAck { .. }
            | RequestBody::ReadData { .. } => false,
        }
    }

    /// The inode whose shard ownership governs where `body` may execute:
    /// dentry operations go to the directory's owner, inode operations to
    /// the inode's owner. Session traffic (Hello, keep-alives, push acks)
    /// is per-server and ungoverned.
    fn governing_ino(body: &RequestBody) -> Option<Ino> {
        match body {
            RequestBody::Hello { .. } | RequestBody::KeepAlive | RequestBody::PushAck { .. } => {
                None
            }
            RequestBody::Create { parent, .. }
            | RequestBody::Lookup { parent, .. }
            | RequestBody::Mkdir { parent, .. }
            | RequestBody::Unlink { parent, .. } => Some(*parent),
            RequestBody::ReadDir { dir }
            | RequestBody::RenameLink { dir, .. }
            | RequestBody::RenameUnlink { dir, .. } => Some(*dir),
            RequestBody::GetAttr { ino }
            | RequestBody::SetAttr { ino, .. }
            | RequestBody::LockAcquire { ino, .. }
            | RequestBody::LockRelease { ino, .. }
            | RequestBody::AllocBlocks { ino, .. }
            | RequestBody::CommitWrite { ino, .. }
            | RequestBody::ReadData { ino, .. }
            | RequestBody::WriteData { ino, .. } => Some(*ino),
            // A batch has no single governing inode; the routing gate
            // checks every element instead (see `on_request`).
            RequestBody::Batch(_) => None,
        }
    }

    fn on_request(&mut self, from: NodeId, req: Request, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        // Standby gate before everything: a warm standby owns no live
        // shard state and must not touch even the session window. The
        // redirect is not a lease judgment — the client rotates to the
        // shard's other address and retries.
        if self.standby {
            return self.nack(
                from,
                req.session,
                req.seq,
                NackReason::Misrouted(RouteError::NotPrimary),
                ctx,
            );
        }
        // Routing gate next: a request this shard does not govern must
        // not touch any state here — not even the session window — and a
        // Hello carrying a stale shard-map epoch would register a session
        // the client will route wrongly against. `Misrouted` is a
        // protocol-level redirect, not a lease judgment: like
        // `Recovering`, it does not condemn the client's cache.
        if let RequestBody::Hello { map_epoch } = req.body {
            if map_epoch != self.cfg.map.epoch() {
                return self.nack(
                    from,
                    req.session,
                    req.seq,
                    NackReason::Misrouted(RouteError::StaleMap),
                    ctx,
                );
            }
        } else if let RequestBody::Batch(elems) = &req.body {
            // Element-wise routing: a batch executes atomically on one
            // shard, so every element's governing inode must be owned
            // here — otherwise the whole batch is redirected before any
            // element runs (never a partial cross-shard execution).
            let misrouted = elems.iter().any(|e| {
                Self::governing_ino(e).is_some_and(|gov| self.cfg.map.owner_of(gov) != self.cfg.sid)
            });
            if misrouted {
                return self.nack(
                    from,
                    req.session,
                    req.seq,
                    NackReason::Misrouted(RouteError::NotOwner),
                    ctx,
                );
            }
        } else if let Some(gov) = Self::governing_ino(&req.body) {
            if self.cfg.map.owner_of(gov) != self.cfg.sid {
                return self.nack(
                    from,
                    req.session,
                    req.seq,
                    NackReason::Misrouted(RouteError::NotOwner),
                    ctx,
                );
            }
        }
        // Recovery gate next: a freshly-restarted server has no lock or
        // lease state, so until the grace window closes it cannot know
        // whether a grant would conflict with a surviving pre-crash
        // holder. Unlike the lease-authority NACKs below, `Recovering`
        // does not condemn the client's cache — its lease is still good.
        if self.recovering && Self::needs_full_service(&req.body) {
            self.stats.recovery_nacks += 1;
            return self.nack(from, req.session, req.seq, NackReason::Recovering, ctx);
        }
        // Lease authority gate (§3.3): a suspect client gets NACKs,
        // an expired client gets NACKs for everything but Hello.
        match self.authority.standing_of(from) {
            ClientStanding::Good => {}
            ClientStanding::Suspect { .. } => {
                if self.cfg.nack_suspect {
                    self.nack(from, req.session, req.seq, NackReason::LeaseTimingOut, ctx);
                }
                // Without the §3.3 optimization the request is silently
                // ignored — correct but wasteful.
                return;
            }
            ClientStanding::Expired => {
                if matches!(req.body, RequestBody::Hello { .. }) {
                    self.stats.requests += 1;
                    return self.do_hello(from, &req, ctx);
                }
                return self.nack(from, req.session, req.seq, NackReason::SessionExpired, ctx);
            }
        }
        if matches!(req.body, RequestBody::Hello { .. }) {
            self.stats.requests += 1;
            return self.do_hello(from, &req, ctx);
        }
        match self.sessions.admit(from, req.session, req.seq) {
            Admission::Execute => {
                self.stats.requests += 1;
                self.execute(from, req, ctx);
            }
            Admission::Replay(resp) => {
                self.stats.replays += 1;
                // tank-lint: allow(L6) dedup-window replay of an already-durable response (synced before first send)
                ctx.send(NetId::CONTROL, from, NetMsg::Ctl(CtlMsg::Response(*resp)));
            }
            Admission::InProgress => {}
            Admission::WrongSession => {
                self.nack(from, req.session, req.seq, NackReason::StaleSession, ctx);
            }
        }
    }
}

impl<Ob: 'static> Actor<NetMsg, Ob> for ServerNode<Ob> {
    fn on_start(&mut self, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        self.id = Some(ctx.node());
        if !self.standby {
            // Every response is stamped with an incarnation that recovery
            // reads back from the log — so the first incarnation must be
            // durable before anything is acknowledged. (A standby appends
            // nothing of its own: its log stays a byte-exact mirror.)
            self.wal_append(&WalRecord::Incarnation(self.incarnation.0));
            self.wal_fsync(ctx);
        }
        if self.peer.is_some() {
            self.last_repl_at = ctx.now();
            let token = self.timers.insert(ServerTimer::ReplTick);
            ctx.set_timer(self.repl_interval(), token);
        }
    }

    fn on_message(
        &mut self,
        from: NodeId,
        _net: NetId,
        msg: NetMsg,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        match msg {
            NetMsg::Ctl(CtlMsg::Request(req)) => self.on_request(from, req, ctx),
            NetMsg::San(san) => self.on_san(san, from, ctx),
            NetMsg::Repl(repl) => self.on_repl(from, repl, ctx),
            NetMsg::Ctl(other) => {
                // Responses and pushes address clients; a server receiving
                // one is a routing anomaly worth counting, not crashing on.
                if let Some(obs) = &self.obs {
                    obs.unexpected_msgs.inc();
                    obs.trace(ctx, "unexpected", || format!("ctl {}", other.kind()));
                }
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        let Some(t) = self.timers.take(token) else {
            return;
        };
        match t {
            ServerTimer::PushRetry(push_seq) => {
                let Some(p) = self.pushes.get_mut(&push_seq) else {
                    return;
                };
                if p.acked {
                    return;
                }
                if p.retries_left == 0 {
                    let dst = p.dst;
                    self.delivery_error(dst, ctx);
                } else {
                    p.retries_left -= 1;
                    self.send_push(push_seq, ctx);
                }
            }
            ServerTimer::ReleaseWait(push_seq) => {
                if let Some(p) = self.pushes.remove(&push_seq) {
                    // PushAcked but never released — unless the demanded
                    // grant is already gone (a voluntary release crossed
                    // the demand), which satisfies it without a release
                    // message naming this push.
                    let still_held = match &p.body {
                        PushBody::Demand { ino, epoch, .. } => {
                            self.locks.holding_epoch(p.dst, *ino) == Some(*epoch)
                        }
                        // An invalidate push needs no release; nothing to
                        // re-check when its ReleaseWait fires.
                        PushBody::Invalidate { .. } => false,
                    };
                    if still_held {
                        self.delivery_error(p.dst, ctx);
                    }
                }
            }
            ServerTimer::LeaseExpiry(client) => {
                let now = ctx.now();
                let armed_at = self.condemn_armed_at.remove(&client);
                if self.authority.on_timer(client, now) {
                    if let Some(obs) = &self.obs {
                        obs.condemn_fired.inc();
                        // The measured side of Theorem 3.1: how long the
                        // server actually waited before declaring the lease
                        // dead. Must never exceed τ_s(1+ε).
                        let latency = armed_at.map_or(0, |t| now.0.saturating_sub(t.0));
                        obs.steal_latency_ns.observe(latency);
                        obs.trace(ctx, "condemned", || {
                            format!("client=n{} latency_ns={latency}", client.0)
                        });
                    }
                    self.emit(ServerEvent::LeaseExpired { client }, ctx);
                    if self.cfg.harden_grace.0 > 0 {
                        // The client can no longer be ACKed (Expired ⇒
                        // NACK), so waiting costs only availability; it
                        // lets SAN writes issued before the client's own
                        // expiry land instead of being caught mid-flight
                        // by the steal.
                        let token = self.timers.insert(ServerTimer::StealGrace(client));
                        ctx.set_timer(self.cfg.harden_grace, token);
                        if let Some(obs) = &self.obs {
                            obs.trace(ctx, "steal-grace", || {
                                format!(
                                    "client=n{} fires_in_ns={}",
                                    client.0, self.cfg.harden_grace.0
                                )
                            });
                        }
                    } else {
                        self.begin_fence(client, ctx);
                    }
                }
            }
            ServerTimer::StealGrace(client) => {
                // Steal only if the client is still expired: a Hello during
                // the grace already abandoned its old locks (and reset its
                // standing), so there is nothing left to fence-and-steal.
                if self.authority.standing_of(client) == ClientStanding::Expired {
                    self.begin_fence(client, ctx);
                }
            }
            ServerTimer::RecoveryDone => {
                self.recovering = false;
                if let Some(obs) = &self.obs {
                    obs.recovery_ended.inc();
                    obs.trace(ctx, "recovery", || "ended".to_owned());
                }
                self.emit(ServerEvent::RecoveryEnded, ctx);
            }
            ServerTimer::ReplTick => self.on_repl_tick(ctx),
        }
    }

    /// Fail-stop: the in-memory log tail past the last fsync is lost; the
    /// durable prefix (snapshot + synced log) survives for `on_restart`.
    fn on_crash(&mut self) {
        self.wal.crash();
    }

    /// Fail-stop restart. *Everything* in memory is gone — metadata,
    /// sessions, locks, lease timers, even the incarnation counter. What
    /// survives is the private durable device: the last snapshot plus the
    /// fsynced log prefix, from which `recover_from_wal` rebuilds
    /// the store, restores the session/epoch watermarks, and computes the
    /// next incarnation from the highest one logged (stamped on every
    /// response, so surviving clients detect the restart). Because the
    /// reborn server cannot know which pre-crash leases are still valid,
    /// it refuses lock grants and mutations for one full lease-expiry
    /// window `τ(1+ε)`: by then every pre-crash holder's own clock has
    /// expired its lease and flushed its cache (the Theorem 3.1
    /// rate-synchronization argument, applied to recovery).
    fn on_restart(&mut self, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        self.stats.recoveries += 1;
        if self.standby {
            // A restarted standby has no clients to protect; it resumes
            // mirroring. Its log must stay byte-aligned with the primary's
            // durable prefix, so it appends nothing of its own — recovery
            // already truncated the torn tail via `on_crash`.
            self.sessions = SessionTable::new();
            self.locks = LockManager::new();
            self.authority = LeaseAuthority::new(self.cfg.lease);
            self.pushes.clear();
            self.pending_san.clear();
            self.timers.cancel_where(|_| true);
            self.condemn_armed_at.clear();
        } else {
            self.recover_from_wal(ctx);
        }
        // Replication resumes conservatively from offset zero; the
        // standby's cumulative ingest skips everything it already holds.
        self.peer_acked_gen = 0;
        self.peer_acked_durable = 0;
        self.peer_sent_gen = 0;
        self.peer_sent_durable = 0;
        if self.peer.is_some() {
            self.last_repl_at = ctx.now();
            let token = self.timers.insert(ServerTimer::ReplTick);
            ctx.set_timer(self.repl_interval(), token);
        }
    }
}
