//! The Storage Tank metadata/lock server node.
//!
//! One [`ServerNode`] actor combines:
//!
//! * the metadata store (`tank-meta`) — namespace, inodes, allocation;
//! * a [`LockManager`] — shared/exclusive data locks on inodes with FIFO
//!   waiter queues and demand/revoke callbacks (§1.2, §2);
//! * the passive [`tank_core::LeaseAuthority`] — armed only by delivery
//!   errors, NACKing suspect clients, stealing locks after `τ(1+ε)` (§3);
//! * a [`FenceController`] — constructs fences at the SAN disks before
//!   locks are stolen (§6: "at the same time the server times-out a
//!   client's locks, it constructs a fence between that client and its
//!   storage devices");
//! * per-client [`SessionTable`] state — session incarnations, at-most-once
//!   windows, response caching for duplicate suppression.
//!
//! The [`RecoveryPolicy`] knob selects what happens when a client stops
//! responding, which is exactly the axis the paper's argument runs along:
//! honor locks forever (§2's indefinite unavailability), steal immediately
//! (traditional servers — unsafe on a SAN), fence-then-steal (§2.1's
//! inadequate fix), or the paper's lease protocol with fencing.

pub mod config;
pub mod events;
pub mod fence;
pub mod lock;
pub mod node;
pub mod obs;
pub mod session;

pub use config::{DataPath, RecoveryPolicy, ServerConfig};
pub use events::ServerEvent;
pub use fence::FenceController;
pub use lock::{LockManager, LockRequestOutcome};
pub use node::{ServerNode, ServerStats};
pub use obs::ServerObs;
pub use session::SessionTable;
