//! Events the server reports to the world's observation stream.
//!
//! The consistency checker and availability accounting consume these
//! offline; protocol behaviour never depends on them.

use tank_proto::{Epoch, Ino, LockMode, NodeId, ReqSeq};

/// One observable server-side event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerEvent {
    /// A data lock was granted.
    LockGranted {
        /// New holder.
        client: NodeId,
        /// Locked inode.
        ino: Ino,
        /// Grant epoch.
        epoch: Epoch,
        /// Granted mode.
        mode: LockMode,
    },
    /// A client voluntarily released a lock.
    LockReleased {
        /// Former holder.
        client: NodeId,
        /// Inode.
        ino: Ino,
        /// Epoch of the released grant.
        epoch: Epoch,
    },
    /// The server stole a lock (recovery).
    LockStolen {
        /// Former holder.
        client: NodeId,
        /// Inode.
        ino: Ino,
        /// Epoch of the stolen grant.
        epoch: Epoch,
    },
    /// A conflicting lock request was queued (start of an unavailability
    /// window for that client/inode).
    RequestBlocked {
        /// The waiting client.
        client: NodeId,
        /// The contested inode.
        ino: Ino,
        /// The waiter's request seq (matched to the later grant).
        seq: ReqSeq,
    },
    /// A delivery error was declared for a client.
    DeliveryError {
        /// The unresponsive client.
        client: NodeId,
    },
    /// The lease authority's timer fired; the client's lease is expired at
    /// the server.
    LeaseExpired {
        /// The timed-out client.
        client: NodeId,
    },
    /// The WAL's durable watermark advanced (group-commit fsync). Every
    /// response acknowledged after this point is justified by records at
    /// or below `durable` — the fsync→ACK ordering edge the hb auditor
    /// relies on.
    WalSynced {
        /// Durable log length in bytes after the fsync.
        durable: u64,
    },
    /// A fence was established at every disk for the client.
    Fenced {
        /// The fenced client.
        client: NodeId,
    },
    /// A client established a fresh session.
    NewSession {
        /// The client.
        client: NodeId,
    },
    /// The server restarted after a fail-stop crash and entered its
    /// recovery grace window: no lock grants or metadata mutations until
    /// every lease that might have been outstanding at the crash has
    /// expired.
    RecoveryBegan,
    /// The recovery grace window elapsed; normal service resumed.
    RecoveryEnded,
}
