//! Fence controller: establishes fences at every disk before lock theft.
//!
//! §6: "At the same time the server times-out a client's locks, it
//! constructs a fence between that client and its storage devices. The
//! fence prevents late commands, from a slow computer, from accessing the
//! disk after locks are stolen."
//!
//! Fencing a client means sending `FenceCmd` to every disk and waiting for
//! every `FenceResp`; only then is the fence in force and stealing safe.
//! The controller tracks in-flight fence campaigns and tells the node when
//! one completes. Fence commands ride the SAN, which the failure model
//! assumes healthy between server and disks (the paper scopes SAN
//! partitions to fencing's pre-existing semantics).

use std::collections::{HashMap, HashSet};

use tank_proto::{FenceOp, NodeId};

/// An in-flight fence (or unfence) campaign for one client.
#[derive(Debug, Clone)]
struct Campaign {
    client: NodeId,
    op: FenceOp,
    awaiting: HashSet<NodeId>,
}

/// Tracks fence campaigns across the server's disks.
#[derive(Debug, Clone, Default)]
pub struct FenceController {
    next_req: u64,
    /// req_id → campaign. One campaign spans all disks and uses one req_id
    /// per disk, all mapping to the same campaign id.
    campaigns: HashMap<u64, Campaign>,
    /// req_id → campaign id.
    requests: HashMap<u64, u64>,
    /// Clients with a fence currently in force.
    fenced: HashSet<NodeId>,
}

impl FenceController {
    /// Empty controller.
    pub fn new() -> Self {
        FenceController::default()
    }

    /// Begin fencing (or unfencing) `client` at `disks`. Returns the
    /// `(req_id, disk)` pairs to send `FenceCmd`s for. Empty `disks`
    /// completes immediately — the caller must treat a `Some` return of
    /// zero sends as already-complete.
    pub fn begin(&mut self, client: NodeId, op: FenceOp, disks: &[NodeId]) -> Vec<(u64, NodeId)> {
        let campaign_id = self.next_req;
        self.next_req += 1;
        let mut sends = Vec::with_capacity(disks.len());
        let mut awaiting = HashSet::new();
        for &d in disks {
            let req_id = self.next_req;
            self.next_req += 1;
            self.requests.insert(req_id, campaign_id);
            awaiting.insert(d);
            sends.push((req_id, d));
        }
        if awaiting.is_empty() {
            // Degenerate: no disks; apply the effect immediately.
            self.apply(client, op);
        } else {
            self.campaigns.insert(
                campaign_id,
                Campaign {
                    client,
                    op,
                    awaiting,
                },
            );
        }
        sends
    }

    /// A `FenceResp` arrived from `disk` for `req_id`. Returns
    /// `Some((client, op))` when this completes the campaign.
    pub fn on_response(&mut self, req_id: u64, disk: NodeId) -> Option<(NodeId, FenceOp)> {
        let campaign_id = self.requests.remove(&req_id)?;
        let campaign = self.campaigns.get_mut(&campaign_id)?;
        campaign.awaiting.remove(&disk);
        if campaign.awaiting.is_empty() {
            let c = self.campaigns.remove(&campaign_id).unwrap();
            self.apply(c.client, c.op);
            Some((c.client, c.op))
        } else {
            None
        }
    }

    fn apply(&mut self, client: NodeId, op: FenceOp) {
        match op {
            FenceOp::Fence => {
                self.fenced.insert(client);
            }
            FenceOp::Unfence => {
                self.fenced.remove(&client);
            }
        }
    }

    /// Whether `client` is fenced (server's view).
    pub fn is_fenced(&self, client: NodeId) -> bool {
        self.fenced.contains(&client)
    }

    /// In-flight campaigns (diagnostics).
    pub fn in_flight(&self) -> usize {
        self.campaigns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: NodeId = NodeId(7);
    const D1: NodeId = NodeId(0);
    const D2: NodeId = NodeId(1);

    #[test]
    fn campaign_completes_when_all_disks_answer() {
        let mut f = FenceController::new();
        let sends = f.begin(C, FenceOp::Fence, &[D1, D2]);
        assert_eq!(sends.len(), 2);
        assert!(!f.is_fenced(C));
        assert_eq!(f.on_response(sends[0].0, D1), None);
        assert_eq!(f.on_response(sends[1].0, D2), Some((C, FenceOp::Fence)));
        assert!(f.is_fenced(C));
        assert_eq!(f.in_flight(), 0);
    }

    #[test]
    fn unfence_clears_the_flag() {
        let mut f = FenceController::new();
        let sends = f.begin(C, FenceOp::Fence, &[D1]);
        f.on_response(sends[0].0, D1);
        assert!(f.is_fenced(C));
        let sends = f.begin(C, FenceOp::Unfence, &[D1]);
        assert_eq!(f.on_response(sends[0].0, D1), Some((C, FenceOp::Unfence)));
        assert!(!f.is_fenced(C));
    }

    #[test]
    fn duplicate_or_unknown_responses_are_ignored() {
        let mut f = FenceController::new();
        let sends = f.begin(C, FenceOp::Fence, &[D1]);
        assert!(f.on_response(sends[0].0, D1).is_some());
        assert!(f.on_response(sends[0].0, D1).is_none(), "duplicate resp");
        assert!(f.on_response(999, D2).is_none(), "unknown req");
    }

    #[test]
    fn zero_disk_campaign_applies_immediately() {
        let mut f = FenceController::new();
        let sends = f.begin(C, FenceOp::Fence, &[]);
        assert!(sends.is_empty());
        assert!(f.is_fenced(C));
    }

    #[test]
    fn concurrent_campaigns_for_different_clients() {
        let mut f = FenceController::new();
        let s1 = f.begin(NodeId(10), FenceOp::Fence, &[D1, D2]);
        let s2 = f.begin(NodeId(11), FenceOp::Fence, &[D1, D2]);
        assert_eq!(f.in_flight(), 2);
        assert_eq!(f.on_response(s2[0].0, D1), None);
        assert_eq!(
            f.on_response(s2[1].0, D2),
            Some((NodeId(11), FenceOp::Fence))
        );
        assert_eq!(f.on_response(s1[0].0, D1), None);
        assert_eq!(
            f.on_response(s1[1].0, D2),
            Some((NodeId(10), FenceOp::Fence))
        );
    }
}
