//! Per-client session state: incarnations, at-most-once windows, response
//! caching for duplicate suppression.

use std::collections::HashMap;

use tank_proto::seqwin::SeqVerdict;
use tank_proto::{DedupWindow, NodeId, ReqSeq, Response, SessionId};

/// What the server should do with an incoming request's (session, seq).
#[derive(Debug, Clone)]
pub enum Admission {
    /// Fresh request: execute it.
    Execute,
    /// Duplicate of a request already answered: re-send this response.
    Replay(Box<Response>),
    /// Duplicate of a request still in progress (e.g. a queued lock
    /// request): ignore; the answer will go out when ready.
    InProgress,
    /// Wrong session id (stale incarnation): NACK `StaleSession`.
    WrongSession,
}

/// One client's session.
#[derive(Debug, Clone)]
struct Session {
    id: SessionId,
    window: DedupWindow,
    /// Responses kept for replay, pruned against the window's watermark.
    replay: HashMap<ReqSeq, Response>,
}

/// All client sessions.
#[derive(Debug, Clone, Default)]
pub struct SessionTable {
    sessions: HashMap<NodeId, Session>,
    /// Responses to recent Hellos, keyed by the request seq. Hello sits
    /// outside the per-session dedup window (it *creates* the session),
    /// so without this cache a duplicated Hello datagram would mint a
    /// second session and orphan the one the client is actually using.
    hellos: HashMap<NodeId, HashMap<ReqSeq, Response>>,
    next_session: u64,
}

/// Hello responses remembered per client (duplicates older than this
/// are answered with a fresh session, which the client survives via its
/// normal stale-session path).
const HELLO_CACHE: usize = 8;

/// Reorder history kept per session (requests further behind than this are
/// treated as stale).
const WINDOW_SPAN: u64 = 4096;

impl SessionTable {
    /// Empty table.
    pub fn new() -> Self {
        SessionTable::default()
    }

    /// Begin a fresh session for `client`, superseding any previous one.
    pub fn begin(&mut self, client: NodeId) -> SessionId {
        self.next_session += 1;
        let id = SessionId(self.next_session);
        self.sessions.insert(
            client,
            Session {
                id,
                window: DedupWindow::with_span(WINDOW_SPAN),
                replay: HashMap::new(),
            },
        );
        id
    }

    /// The client's current session id, if any.
    pub fn current(&self, client: NodeId) -> Option<SessionId> {
        self.sessions.get(&client).map(|s| s.id)
    }

    /// Classify an incoming request.
    pub fn admit(&mut self, client: NodeId, session: SessionId, seq: ReqSeq) -> Admission {
        let Some(s) = self.sessions.get_mut(&client) else {
            return Admission::WrongSession;
        };
        if s.id != session {
            return Admission::WrongSession;
        }
        match s.window.observe(seq) {
            SeqVerdict::Fresh => Admission::Execute,
            SeqVerdict::Duplicate => match s.replay.get(&seq) {
                Some(r) => Admission::Replay(Box::new(r.clone())),
                None => Admission::InProgress,
            },
            SeqVerdict::Stale => Admission::InProgress,
        }
    }

    /// Record the response to a fresh request so later duplicates replay
    /// it. Prunes entries the window can no longer ask about.
    pub fn record_response(&mut self, client: NodeId, seq: ReqSeq, resp: Response) {
        if let Some(s) = self.sessions.get_mut(&client) {
            if s.id != resp.session {
                return; // response for a dead incarnation
            }
            s.replay.insert(seq, resp);
            if s.replay.len() > (2 * WINDOW_SPAN as usize) {
                let low = s.window.low_watermark().0.saturating_sub(WINDOW_SPAN);
                s.replay.retain(|k, _| k.0 > low);
            }
        }
    }

    /// The cached response to a Hello already answered (same client,
    /// same seq): a duplicate delivery that must be replayed, not
    /// re-executed.
    pub fn hello_replay(&self, client: NodeId, seq: ReqSeq) -> Option<Response> {
        self.hellos.get(&client).and_then(|m| m.get(&seq)).cloned()
    }

    /// Remember a Hello response for duplicate suppression.
    pub fn record_hello(&mut self, client: NodeId, seq: ReqSeq, resp: Response) {
        let m = self.hellos.entry(client).or_default();
        m.insert(seq, resp);
        while m.len() > HELLO_CACHE {
            let oldest = m.keys().min().copied().expect("nonempty");
            m.remove(&oldest);
        }
    }

    /// Drop a client's session entirely.
    pub fn remove(&mut self, client: NodeId) {
        self.sessions.remove(&client);
        self.hellos.remove(&client);
    }

    /// Forget every session (fail-stop restart: session state is volatile
    /// — *including* the id counter; a reborn process has no memory).
    /// Collision-freedom across incarnations comes from the WAL's
    /// `SessionWatermark` records, restored via
    /// [`Self::restore_watermark`] before any new session is begun.
    pub fn reset_volatile(&mut self) {
        self.sessions.clear();
        self.hellos.clear();
        self.next_session = 0;
    }

    /// Restore the id counter after recovery. Monotone: never moves the
    /// counter backwards. Without this a reborn server would mint session
    /// ids that collide with pre-crash ids still held by surviving
    /// clients, re-opening their at-most-once windows to stale duplicates.
    pub fn restore_watermark(&mut self, n: u64) {
        self.next_session = self.next_session.max(n);
    }

    /// Highest session id ever begun — the durable watermark the server's
    /// WAL records at every Hello so [`Self::restore_watermark`] can
    /// rebuild it after a crash.
    pub fn watermark(&self) -> u64 {
        self.next_session
    }

    /// Approximate memory used by replay caches (diagnostics).
    pub fn replay_entries(&self) -> usize {
        self.sessions.values().map(|s| s.replay.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tank_proto::message::{ReplyBody, ResponseOutcome};

    const C: NodeId = NodeId(4);

    fn resp(session: SessionId, seq: ReqSeq) -> Response {
        Response {
            dst: C,
            session,
            seq,
            incarnation: tank_proto::Incarnation(1),
            outcome: ResponseOutcome::Acked(Ok(ReplyBody::Ok)),
        }
    }

    #[test]
    fn unknown_client_is_wrong_session() {
        let mut t = SessionTable::new();
        assert!(matches!(
            t.admit(C, SessionId(1), ReqSeq(1)),
            Admission::WrongSession
        ));
    }

    #[test]
    fn fresh_then_replay() {
        let mut t = SessionTable::new();
        let sid = t.begin(C);
        assert!(matches!(t.admit(C, sid, ReqSeq(1)), Admission::Execute));
        // Duplicate before response recorded: in progress.
        assert!(matches!(t.admit(C, sid, ReqSeq(1)), Admission::InProgress));
        t.record_response(C, ReqSeq(1), resp(sid, ReqSeq(1)));
        match t.admit(C, sid, ReqSeq(1)) {
            Admission::Replay(r) => assert_eq!(r.seq, ReqSeq(1)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn new_incarnation_invalidates_old() {
        let mut t = SessionTable::new();
        let old = t.begin(C);
        let new = t.begin(C);
        assert_ne!(old, new);
        assert!(matches!(
            t.admit(C, old, ReqSeq(1)),
            Admission::WrongSession
        ));
        assert!(matches!(t.admit(C, new, ReqSeq(1)), Admission::Execute));
    }

    #[test]
    fn session_ids_are_globally_unique() {
        let mut t = SessionTable::new();
        let a = t.begin(NodeId(1));
        let b = t.begin(NodeId(2));
        assert_ne!(a, b);
    }

    #[test]
    fn replay_cache_is_bounded() {
        let mut t = SessionTable::new();
        let sid = t.begin(C);
        for i in 1..=(3 * WINDOW_SPAN) {
            t.admit(C, sid, ReqSeq(i));
            t.record_response(C, ReqSeq(i), resp(sid, ReqSeq(i)));
        }
        assert!(t.replay_entries() <= 2 * WINDOW_SPAN as usize + 1);
    }

    #[test]
    fn duplicate_hello_replays_the_same_session() {
        let mut t = SessionTable::new();
        assert!(t.hello_replay(C, ReqSeq(1)).is_none());
        let sid = t.begin(C);
        t.record_hello(C, ReqSeq(1), resp(sid, ReqSeq(1)));
        let replay = t.hello_replay(C, ReqSeq(1)).expect("cached");
        assert_eq!(replay.session, sid);
        // A *new* Hello (new seq) is not a duplicate.
        assert!(t.hello_replay(C, ReqSeq(2)).is_none());
        // Restart wipes the cache with the rest of the volatile state.
        t.reset_volatile();
        assert!(t.hello_replay(C, ReqSeq(1)).is_none());
    }

    #[test]
    fn hello_cache_is_bounded() {
        let mut t = SessionTable::new();
        let sid = t.begin(C);
        for i in 1..=32u64 {
            t.record_hello(C, ReqSeq(i), resp(sid, ReqSeq(i)));
        }
        assert!(t.hello_replay(C, ReqSeq(1)).is_none(), "oldest evicted");
        assert!(t.hello_replay(C, ReqSeq(32)).is_some(), "newest kept");
    }

    #[test]
    fn stale_responses_are_not_recorded() {
        let mut t = SessionTable::new();
        let old = t.begin(C);
        let new = t.begin(C);
        t.record_response(C, ReqSeq(1), resp(old, ReqSeq(1)));
        assert!(matches!(t.admit(C, new, ReqSeq(1)), Admission::Execute));
        assert_eq!(t.replay_entries(), 0);
    }
}
