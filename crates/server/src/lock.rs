//! Data-lock manager: shared/exclusive locks on inodes.
//!
//! Storage Tank locks are *logical* — they protect distributed data
//! structures (files), not disk address ranges (§5's contrast with GFS
//! dlocks). The manager keeps, per inode, the current holders, a FIFO
//! waiter queue, and a monotonically increasing grant [`Epoch`] that stamps
//! every grant; epochs give the offline checker a total order over
//! conflicting ownership.
//!
//! The manager is pure state: it never sends messages. The server node
//! interprets its outcomes (grant now / wait and demand / already held)
//! and its returned grant lists when releases or steals unblock waiters.

use std::collections::{BTreeMap, VecDeque};

use tank_proto::{Epoch, Ino, LockMode, NodeId, ReqSeq, SessionId};

/// A granted lock as reported to the server node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// The client now holding the lock.
    pub client: NodeId,
    /// The inode.
    pub ino: Ino,
    /// Granted mode.
    pub mode: LockMode,
    /// Epoch stamped on this grant.
    pub epoch: Epoch,
    /// The request (session, seq) this grant answers, if it was queued;
    /// `None` for immediate grants (the caller already has the request in
    /// hand).
    pub answers: Option<(SessionId, ReqSeq)>,
}

/// Outcome of a lock request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockRequestOutcome {
    /// Granted immediately (possibly an upgrade); reply now.
    Granted(Grant),
    /// The client already holds a covering lock; reply with the existing
    /// grant's epoch.
    AlreadyHeld(Epoch, LockMode),
    /// Conflicts with current holders: the request is queued and the
    /// server must demand the lock from `demand_from`.
    Queued {
        /// Holders that must release/downgrade before this request can be
        /// granted.
        demand_from: Vec<NodeId>,
    },
}

/// One holder's grant.
#[derive(Debug, Clone, Copy)]
struct Holding {
    mode: LockMode,
    epoch: Epoch,
}

/// A queued waiter.
#[derive(Debug, Clone, Copy)]
struct Waiter {
    client: NodeId,
    mode: LockMode,
    session: SessionId,
    seq: ReqSeq,
}

/// Per-inode lock state. BTreeMaps keep iteration deterministic — demand
/// ordering and steal ordering must not depend on a process-random hash
/// seed, or runs stop being reproducible across processes.
#[derive(Debug, Clone, Default)]
struct LockState {
    holders: BTreeMap<NodeId, Holding>,
    waiters: VecDeque<Waiter>,
}

impl LockState {
    fn conflicts_with(&self, client: NodeId, mode: LockMode) -> Vec<NodeId> {
        self.holders
            .iter()
            .filter(|(holder, h)| **holder != client && !h.mode.compatible(mode))
            .map(|(holder, _)| *holder)
            .collect()
    }
}

/// The lock manager.
#[derive(Debug, Clone, Default)]
pub struct LockManager {
    locks: BTreeMap<Ino, LockState>,
    /// Global epoch counter; per-grant epochs are unique across inodes,
    /// which simplifies the checker (per-ino ordering is inherited).
    epoch_counter: u64,
}

impl LockManager {
    /// Empty manager.
    pub fn new() -> Self {
        LockManager::default()
    }

    fn next_epoch(&mut self) -> Epoch {
        self.epoch_counter += 1;
        Epoch(self.epoch_counter)
    }

    /// Forget every holder and waiter (fail-stop restart: lock state is
    /// volatile) while keeping the epoch counter, so grants issued by the
    /// next incarnation stay newer than every pre-crash grant and fencing
    /// order is preserved. A *real* restart cannot rely on the counter
    /// surviving in memory — the server logs `EpochWatermark` records to
    /// its WAL and rebuilds via [`Self::restore_epoch`] instead.
    pub fn reset_volatile(&mut self) {
        self.locks.clear();
    }

    /// Highest epoch ever issued — the durable watermark the server's WAL
    /// records at every grant.
    pub fn epoch_watermark(&self) -> u64 {
        self.epoch_counter
    }

    /// Restore the epoch counter after recovery so grants issued by the
    /// next incarnation stay newer than every pre-crash grant (fencing
    /// order preserved across the crash). Monotone: never moves the
    /// counter backwards.
    pub fn restore_epoch(&mut self, n: u64) {
        self.epoch_counter = self.epoch_counter.max(n);
    }

    /// Handle a lock request from `client` for `ino` in `mode`.
    pub fn request(
        &mut self,
        client: NodeId,
        ino: Ino,
        mode: LockMode,
        session: SessionId,
        seq: ReqSeq,
    ) -> LockRequestOutcome {
        let epoch = self.next_epoch(); // may go unused; cheap
        let st = self.locks.entry(ino).or_default();
        if let Some(h) = st.holders.get(&client) {
            if h.mode.covers(mode) {
                return LockRequestOutcome::AlreadyHeld(h.epoch, h.mode);
            }
        }
        if st.waiters.iter().any(|w| w.client == client) {
            // Already queued (a retried request under a fresh seq); do not
            // double-queue.
            return LockRequestOutcome::Queued {
                demand_from: Vec::new(),
            };
        }
        let conflicts = st.conflicts_with(client, mode);
        if conflicts.is_empty() && st.waiters.is_empty() {
            st.holders.insert(client, Holding { mode, epoch });
            LockRequestOutcome::Granted(Grant {
                client,
                ino,
                mode,
                epoch,
                answers: None,
            })
        } else {
            // FIFO fairness: even a compatible request queues behind
            // existing waiters so writers cannot starve.
            let demand_from = if st.waiters.is_empty() {
                conflicts
            } else {
                Vec::new()
            };
            st.waiters.push_back(Waiter {
                client,
                mode,
                session,
                seq,
            });
            LockRequestOutcome::Queued { demand_from }
        }
    }

    /// Release `client`'s lock on `ino`. With `epoch = Some(e)` the
    /// release applies only if the current holding is exactly that grant —
    /// a stale or blind release that raced a newer grant is a no-op.
    /// Returns grants for any waiters that can now proceed.
    pub fn release(&mut self, client: NodeId, ino: Ino, epoch: Option<Epoch>) -> Vec<Grant> {
        let Some(st) = self.locks.get_mut(&ino) else {
            return Vec::new();
        };
        if let Some(e) = epoch {
            match st.holders.get(&client) {
                Some(h) if h.epoch == e => {}
                _ => return Vec::new(), // stale release: ignore
            }
        }
        st.holders.remove(&client);
        // Also drop any queued waiter entries from this client: a client
        // that releases (e.g. after lease expiry) abandons its waits too.
        st.waiters.retain(|w| w.client != client);
        self.promote(ino)
    }

    /// Remove every holding and waiter of `client` (lock stealing / new
    /// session). Returns `(stolen, grants)`: the (ino, epoch) pairs that
    /// were stolen and the grants unblocked by the theft.
    pub fn steal_all(&mut self, client: NodeId) -> (Vec<(Ino, Epoch)>, Vec<Grant>) {
        let mut stolen = Vec::new();
        let inos: Vec<Ino> = self.locks.keys().copied().collect();
        let mut grants = Vec::new();
        for ino in inos {
            let st = self.locks.get_mut(&ino).unwrap();
            if let Some(h) = st.holders.remove(&client) {
                stolen.push((ino, h.epoch));
            }
            st.waiters.retain(|w| w.client != client);
            grants.extend(self.promote(ino));
        }
        (stolen, grants)
    }

    /// Grant queued waiters that no longer conflict, in FIFO order,
    /// stopping at the first that still conflicts.
    fn promote(&mut self, ino: Ino) -> Vec<Grant> {
        let mut out = Vec::new();
        #[allow(clippy::while_let_loop)]
        loop {
            let Some(st) = self.locks.get_mut(&ino) else {
                break;
            };
            let Some(w) = st.waiters.front().copied() else {
                break;
            };
            if !st.conflicts_with(w.client, w.mode).is_empty() {
                break;
            }
            st.waiters.pop_front();
            // An upgrade waiter replaces its own previous holding.
            self.epoch_counter += 1;
            let epoch = Epoch(self.epoch_counter);
            let st = self.locks.get_mut(&ino).unwrap();
            st.holders.insert(
                w.client,
                Holding {
                    mode: w.mode,
                    epoch,
                },
            );
            out.push(Grant {
                client: w.client,
                ino,
                mode: w.mode,
                epoch,
                answers: Some((w.session, w.seq)),
            });
        }
        out
    }

    /// Current holders that conflict with the head waiter (the server
    /// re-demands from these on retry policies).
    pub fn blocking_holders(&self, ino: Ino) -> Vec<NodeId> {
        let Some(st) = self.locks.get(&ino) else {
            return Vec::new();
        };
        let Some(w) = st.waiters.front() else {
            return Vec::new();
        };
        st.conflicts_with(w.client, w.mode)
    }

    /// Demands the server must (re-)issue for `ino`: the holders blocking
    /// the head waiter, with the mode the waiter needs. After a promotion
    /// hands the lock to a new holder, the next waiter's demand targets
    /// that new holder — without this the queue wedges behind holders who
    /// were never asked to release.
    pub fn pending_demands(&self, ino: Ino) -> Vec<(NodeId, LockMode)> {
        let Some(st) = self.locks.get(&ino) else {
            return Vec::new();
        };
        let Some(w) = st.waiters.front() else {
            return Vec::new();
        };
        st.conflicts_with(w.client, w.mode)
            .into_iter()
            .map(|h| (h, w.mode))
            .collect()
    }

    /// Whether `client` holds a lock on `ino` in a mode covering `want`.
    pub fn holds(&self, client: NodeId, ino: Ino, want: LockMode) -> bool {
        self.locks
            .get(&ino)
            .and_then(|st| st.holders.get(&client))
            .is_some_and(|h| h.mode.covers(want))
    }

    /// The epoch of `client`'s current holding on `ino`.
    pub fn holding_epoch(&self, client: NodeId, ino: Ino) -> Option<Epoch> {
        self.locks
            .get(&ino)
            .and_then(|st| st.holders.get(&client))
            .map(|h| h.epoch)
    }

    /// Every inode `client` currently holds.
    pub fn holdings_of(&self, client: NodeId) -> Vec<(Ino, LockMode, Epoch)> {
        let mut v: Vec<_> = self
            .locks
            .iter()
            .filter_map(|(ino, st)| st.holders.get(&client).map(|h| (*ino, h.mode, h.epoch)))
            .collect();
        v.sort_by_key(|(ino, _, _)| *ino);
        v
    }

    /// Whether any client holds or awaits a lock on `ino`.
    pub fn is_contended(&self, ino: Ino) -> bool {
        self.locks
            .get(&ino)
            .map(|st| !st.holders.is_empty() || !st.waiters.is_empty())
            .unwrap_or(false)
    }

    /// Number of inodes with at least one holder or waiter.
    pub fn active_locks(&self) -> usize {
        self.locks
            .values()
            .filter(|st| !st.holders.is_empty() || !st.waiters.is_empty())
            .count()
    }

    /// Number of queued waiters across all inodes.
    pub fn waiting(&self) -> usize {
        self.locks.values().map(|st| st.waiters.len()).sum()
    }

    /// Bump and return a fresh epoch for a non-lock write path (the
    /// function-shipping baseline stamps its serialized writes this way).
    pub fn stamp_epoch(&mut self) -> Epoch {
        self.next_epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: NodeId = NodeId(10);
    const B: NodeId = NodeId(11);
    const C: NodeId = NodeId(12);
    const F: Ino = Ino(1);
    const SESS: SessionId = SessionId(1);

    fn req(m: &mut LockManager, c: NodeId, mode: LockMode, seq: u64) -> LockRequestOutcome {
        m.request(c, F, mode, SESS, ReqSeq(seq))
    }

    #[test]
    fn exclusive_grant_and_already_held() {
        let mut m = LockManager::new();
        let out = req(&mut m, A, LockMode::Exclusive, 1);
        let LockRequestOutcome::Granted(g) = out else {
            panic!("{out:?}")
        };
        assert_eq!(g.client, A);
        assert!(m.holds(A, F, LockMode::Exclusive));
        // Re-request (covered) returns the same epoch.
        match req(&mut m, A, LockMode::SharedRead, 2) {
            LockRequestOutcome::AlreadyHeld(e, mode) => {
                assert_eq!(e, g.epoch);
                assert_eq!(mode, LockMode::Exclusive);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shared_locks_coexist() {
        let mut m = LockManager::new();
        assert!(matches!(
            req(&mut m, A, LockMode::SharedRead, 1),
            LockRequestOutcome::Granted(_)
        ));
        assert!(matches!(
            req(&mut m, B, LockMode::SharedRead, 1),
            LockRequestOutcome::Granted(_)
        ));
        assert!(m.holds(A, F, LockMode::SharedRead));
        assert!(m.holds(B, F, LockMode::SharedRead));
    }

    #[test]
    fn conflicting_request_queues_and_names_the_holders() {
        let mut m = LockManager::new();
        req(&mut m, A, LockMode::Exclusive, 1);
        match req(&mut m, B, LockMode::Exclusive, 1) {
            LockRequestOutcome::Queued { demand_from } => assert_eq!(demand_from, vec![A]),
            other => panic!("{other:?}"),
        }
        assert_eq!(m.waiting(), 1);
    }

    #[test]
    fn release_promotes_fifo_waiter_with_fresh_epoch() {
        let mut m = LockManager::new();
        let LockRequestOutcome::Granted(ga) = req(&mut m, A, LockMode::Exclusive, 1) else {
            panic!()
        };
        req(&mut m, B, LockMode::Exclusive, 7);
        let grants = m.release(A, F, None);
        assert_eq!(grants.len(), 1);
        let gb = grants[0];
        assert_eq!(gb.client, B);
        assert!(gb.epoch > ga.epoch, "epochs are monotone");
        assert_eq!(gb.answers, Some((SESS, ReqSeq(7))));
        assert!(m.holds(B, F, LockMode::Exclusive));
    }

    #[test]
    fn multiple_compatible_waiters_promote_together() {
        let mut m = LockManager::new();
        req(&mut m, A, LockMode::Exclusive, 1);
        req(&mut m, B, LockMode::SharedRead, 1);
        req(&mut m, C, LockMode::SharedRead, 1);
        let grants = m.release(A, F, None);
        assert_eq!(grants.len(), 2, "both shared waiters granted");
        assert!(m.holds(B, F, LockMode::SharedRead));
        assert!(m.holds(C, F, LockMode::SharedRead));
    }

    #[test]
    fn fifo_prevents_reader_starving_writer() {
        let mut m = LockManager::new();
        req(&mut m, A, LockMode::SharedRead, 1);
        req(&mut m, B, LockMode::Exclusive, 1); // queued
                                                // A later shared request must queue behind the exclusive waiter,
                                                // not sneak in beside A.
        match req(&mut m, C, LockMode::SharedRead, 1) {
            LockRequestOutcome::Queued { demand_from } => {
                assert!(
                    demand_from.is_empty(),
                    "demand already outstanding for head waiter"
                );
            }
            other => panic!("{other:?}"),
        }
        let grants = m.release(A, F, None);
        assert_eq!(grants[0].client, B, "writer first");
        assert_eq!(grants.len(), 1, "reader still behind writer");
        let grants = m.release(B, F, None);
        assert_eq!(grants[0].client, C);
    }

    #[test]
    fn upgrade_when_sole_holder_waits_for_nobody() {
        let mut m = LockManager::new();
        req(&mut m, A, LockMode::SharedRead, 1);
        // Upgrade request conflicts with nothing (only holder is A itself).
        match req(&mut m, A, LockMode::Exclusive, 2) {
            LockRequestOutcome::Granted(g) => assert_eq!(g.mode, LockMode::Exclusive),
            other => panic!("{other:?}"),
        }
        assert!(m.holds(A, F, LockMode::Exclusive));
    }

    #[test]
    fn upgrade_with_other_readers_queues_and_demands_them() {
        let mut m = LockManager::new();
        req(&mut m, A, LockMode::SharedRead, 1);
        req(&mut m, B, LockMode::SharedRead, 1);
        match req(&mut m, A, LockMode::Exclusive, 2) {
            LockRequestOutcome::Queued { demand_from } => assert_eq!(demand_from, vec![B]),
            other => panic!("{other:?}"),
        }
        let grants = m.release(B, F, None);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].client, A);
        assert_eq!(grants[0].mode, LockMode::Exclusive);
    }

    #[test]
    fn steal_all_returns_holdings_and_unblocks_waiters() {
        let mut m = LockManager::new();
        req(&mut m, A, LockMode::Exclusive, 1);
        m.request(A, Ino(2), LockMode::SharedRead, SESS, ReqSeq(2));
        req(&mut m, B, LockMode::Exclusive, 5);
        let (stolen, grants) = m.steal_all(A);
        assert_eq!(stolen.len(), 2);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].client, B);
        assert!(m.holdings_of(A).is_empty());
    }

    #[test]
    fn release_drops_own_queued_waits() {
        let mut m = LockManager::new();
        req(&mut m, A, LockMode::Exclusive, 1);
        req(&mut m, B, LockMode::Exclusive, 2);
        req(&mut m, C, LockMode::Exclusive, 3);
        // B abandons before being granted.
        let grants = m.release(B, F, None);
        assert!(grants.is_empty(), "A still holds");
        let grants = m.release(A, F, None);
        assert_eq!(grants[0].client, C, "C skipped past the abandoned B");
    }

    #[test]
    fn blocking_holders_reports_conflicts_of_head_waiter() {
        let mut m = LockManager::new();
        req(&mut m, A, LockMode::SharedRead, 1);
        req(&mut m, B, LockMode::SharedRead, 1);
        req(&mut m, C, LockMode::Exclusive, 1);
        let mut blockers = m.blocking_holders(F);
        blockers.sort();
        assert_eq!(blockers, vec![A, B]);
    }

    #[test]
    fn pending_demands_follow_the_new_holder() {
        let mut m = LockManager::new();
        req(&mut m, A, LockMode::Exclusive, 1);
        req(&mut m, B, LockMode::Exclusive, 2);
        req(&mut m, C, LockMode::Exclusive, 3);
        assert_eq!(m.pending_demands(F), vec![(A, LockMode::Exclusive)]);
        m.release(A, F, None); // B promoted; C still waits — now on B
        assert_eq!(m.pending_demands(F), vec![(B, LockMode::Exclusive)]);
        m.release(B, F, None);
        assert!(m.pending_demands(F).is_empty());
    }

    #[test]
    fn epochs_are_globally_unique_and_increasing() {
        let mut m = LockManager::new();
        let LockRequestOutcome::Granted(g1) =
            m.request(A, Ino(1), LockMode::Exclusive, SESS, ReqSeq(1))
        else {
            panic!()
        };
        let LockRequestOutcome::Granted(g2) =
            m.request(A, Ino(2), LockMode::Exclusive, SESS, ReqSeq(2))
        else {
            panic!()
        };
        assert!(g2.epoch > g1.epoch);
        assert!(m.stamp_epoch() > g2.epoch);
    }
}
