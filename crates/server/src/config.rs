//! Server configuration: recovery policy, data path, timing knobs.

use tank_core::LeaseConfig;
use tank_proto::{NodeId, ServerId};
use tank_shard::ShardMap;
use tank_sim::LocalNs;

/// What the server does about a client that stops responding while
/// holding locks — the axis of the paper's entire argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum RecoveryPolicy {
    /// Honor the locks of unreachable clients indefinitely (§2's outcome
    /// without a safety protocol: the file stays unavailable until the
    /// partition heals).
    HonorLocks,
    /// Steal locks immediately, no fencing — safe for function-shipping
    /// servers, *unsafe* on a SAN (§1.2): the isolated client keeps
    /// writing shared disks.
    StealImmediately,
    /// Fence the client at the disks, then steal (§2.1): stops conflicting
    /// writes but strands the client's dirty cache and lets it serve stale
    /// reads to local processes.
    FenceThenSteal,
    /// The paper's protocol: arm the passive lease authority's `τ(1+ε)`
    /// timer, NACK the client meanwhile, fence and steal when it fires —
    /// by which time the client has quiesced, flushed, and invalidated
    /// itself.
    LeaseFence,
}

/// Whether clients reach data directly on the SAN or ship I/O through the
/// server (the traditional-server baseline of §1.1 / experiment E9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum DataPath {
    /// Clients perform block I/O themselves (Storage Tank).
    DirectSan,
    /// Clients send `ReadData`/`WriteData` requests; the server performs
    /// the block I/O on their behalf.
    FunctionShip,
}

/// Full server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Lease contract (shared with clients).
    pub lease: LeaseConfig,
    /// Which shard of the inode namespace this server governs.
    pub sid: ServerId,
    /// The shard map this server was booted with; requests whose governing
    /// inode another shard owns are NACKed `Misrouted`.
    pub map: ShardMap,
    /// Recovery policy for unresponsive clients.
    pub policy: RecoveryPolicy,
    /// Data path mode.
    pub data_path: DataPath,
    /// The SAN disks this server manages (fencing targets).
    pub disks: Vec<NodeId>,
    /// Interval between push (demand) retries.
    pub push_retry_interval: LocalNs,
    /// Number of unanswered push attempts that constitute a delivery
    /// error.
    pub push_retries: u32,
    /// After a client `PushAck`s a demand, how long the server waits for
    /// the actual release before declaring a delivery error anyway (the
    /// client may be flushing a large cache; it must not take forever).
    pub release_timeout: LocalNs,
    /// §3.3: answer valid requests from suspect clients with NACKs so they
    /// learn their cache is invalid immediately. Disabled, the server
    /// silently ignores them (the strawman the paper rejects as causing
    /// "further unnecessary message traffic"): the client keeps
    /// retransmitting until its own lease machinery gives up.
    pub nack_suspect: bool,
    /// Fail-stop recovery: after a restart, refuse lock grants and
    /// metadata mutations for the lease-expiry grace window `τ(1+ε)`.
    ///
    /// The restarted server's lock/lease state is volatile and gone, so it
    /// cannot know which clients still hold valid leases; granting before
    /// every pre-crash lease has provably expired could hand a lock to a
    /// new client while a surviving holder is still writing the SAN under
    /// its old (still valid) lease. Waiting out `server_timeout()` makes
    /// every pre-crash holder's own clock expire its lease (and flush its
    /// dirty cache) first — the same rate-synchronization argument as
    /// Theorem 3.1. Disabling this is the experiment's negative control
    /// and demonstrably loses updates.
    pub recovery_grace: bool,
    /// Durable-log bytes beyond which the server folds the log into a
    /// fresh snapshot (write-then-rename in the model; the log restarts
    /// empty at a bumped generation). Bounds replay time after a crash.
    pub compact_threshold: usize,
    /// Steal-side grace for in-flight hardens: after a lease expires
    /// (condemnation fires, the client is NACKed and will never be ACKed
    /// again), wait this long before fencing and stealing its locks.
    ///
    /// The lease contract bounds when the *client stops issuing* SAN
    /// writes — phase 4 ends at `flush_frac·τ` on the client's clock — but
    /// not when its last issued write *lands*: delivery rides the SAN's
    /// latency, outside the clock-rate argument. A steal that lands inside
    /// that delivery window catches acknowledged-but-unhardened blocks
    /// pinned under the stolen epoch (the coherence audit's
    /// "dirty block at steal" clause). Delaying the steal is in the safe
    /// direction for Theorem 3.1 — it only lengthens mutual exclusion at
    /// the cost of availability — and a grace covering the SAN's in-flight
    /// delivery closes the window. Zero (the default) preserves the
    /// prompt-steal behavior the negative-control experiments depend on.
    pub harden_grace: LocalNs,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            lease: LeaseConfig::default(),
            sid: ServerId(0),
            map: ShardMap::single(),
            policy: RecoveryPolicy::LeaseFence,
            data_path: DataPath::DirectSan,
            disks: Vec::new(),
            push_retry_interval: LocalNs::from_millis(200),
            push_retries: 3,
            release_timeout: LocalNs::from_secs(2),
            nack_suspect: true,
            recovery_grace: true,
            compact_threshold: tank_meta::wal::DEFAULT_COMPACT_THRESHOLD,
            harden_grace: LocalNs(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_papers_protocol() {
        let c = ServerConfig::default();
        assert_eq!(c.policy, RecoveryPolicy::LeaseFence);
        assert_eq!(c.data_path, DataPath::DirectSan);
        assert!(c.push_retries >= 1);
    }
}
