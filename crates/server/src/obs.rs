//! Server-side observability handles.
//!
//! [`ServerObs`] resolves every server-layer instrument from the shared
//! [`Registry`] at attach time so emission sites in the node touch only
//! atomics. The steal-latency histogram is the measured side of the
//! paper's `τ_s(1+ε)` condemnation bound: every arm-to-fire interval it
//! records must sit at or below `LeaseConfig::server_timeout()`.

use std::sync::Arc;

use tank_obs::{names, Counter, Histogram, Registry};
use tank_sim::{Ctx, Payload};

/// Pre-resolved server metric handles plus the trace sink.
pub struct ServerObs {
    registry: Arc<Registry>,
    /// `server.lock.granted`.
    pub lock_granted: Arc<Counter>,
    /// `server.lock.released`.
    pub lock_released: Arc<Counter>,
    /// `server.lock.stolen`.
    pub lock_stolen: Arc<Counter>,
    /// `server.steals`.
    pub steals: Arc<Counter>,
    /// `server.demands_sent`.
    pub demands_sent: Arc<Counter>,
    /// `server.nack.lease_timing_out`.
    pub nack_lease_timing_out: Arc<Counter>,
    /// `server.nack.session_expired`.
    pub nack_session_expired: Arc<Counter>,
    /// `server.nack.stale_session`.
    pub nack_stale_session: Arc<Counter>,
    /// `server.nack.recovering`.
    pub nack_recovering: Arc<Counter>,
    /// `server.nack.misrouted`.
    pub nack_misrouted: Arc<Counter>,
    /// `server.delivery_errors`.
    pub delivery_errors: Arc<Counter>,
    /// `server.condemn.armed`.
    pub condemn_armed: Arc<Counter>,
    /// `server.condemn.fired`.
    pub condemn_fired: Arc<Counter>,
    /// `server.fences`.
    pub fences: Arc<Counter>,
    /// `server.sessions`.
    pub sessions: Arc<Counter>,
    /// `server.recovery.began`.
    pub recovery_began: Arc<Counter>,
    /// `server.recovery.ended`.
    pub recovery_ended: Arc<Counter>,
    /// `server.unexpected_msgs`.
    pub unexpected_msgs: Arc<Counter>,
    /// `meta.wal.appends`.
    pub wal_appends: Arc<Counter>,
    /// `meta.wal.fsyncs`.
    pub wal_fsyncs: Arc<Counter>,
    /// `meta.snapshot.compactions`.
    pub snapshot_compactions: Arc<Counter>,
    /// `server.failover.elections`.
    pub failover_elections: Arc<Counter>,
    /// `server.datalock.shared_grants`.
    pub datalock_shared_grants: Arc<Counter>,
    /// `server.datalock.exclusive_grants`.
    pub datalock_exclusive_grants: Arc<Counter>,
    /// `server.datalock.revokes`.
    pub datalock_revokes: Arc<Counter>,
    /// `server.steal_latency_ns`.
    pub steal_latency_ns: Arc<Histogram>,
    /// `server.wal.replay_latency_ns`.
    pub replay_latency_ns: Arc<Histogram>,
}

impl std::fmt::Debug for ServerObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerObs").finish_non_exhaustive()
    }
}

impl ServerObs {
    /// Resolve all server instruments from `registry`.
    pub fn new(registry: Arc<Registry>) -> ServerObs {
        ServerObs {
            lock_granted: registry.counter_def(&names::SERVER_LOCK_GRANTED),
            lock_released: registry.counter_def(&names::SERVER_LOCK_RELEASED),
            lock_stolen: registry.counter_def(&names::SERVER_LOCK_STOLEN),
            steals: registry.counter_def(&names::SERVER_STEALS),
            demands_sent: registry.counter_def(&names::SERVER_DEMANDS_SENT),
            nack_lease_timing_out: registry.counter_def(&names::SERVER_NACK_LEASE_TIMING_OUT),
            nack_session_expired: registry.counter_def(&names::SERVER_NACK_SESSION_EXPIRED),
            nack_stale_session: registry.counter_def(&names::SERVER_NACK_STALE_SESSION),
            nack_recovering: registry.counter_def(&names::SERVER_NACK_RECOVERING),
            nack_misrouted: registry.counter_def(&names::SERVER_NACK_MISROUTED),
            delivery_errors: registry.counter_def(&names::SERVER_DELIVERY_ERRORS),
            condemn_armed: registry.counter_def(&names::SERVER_CONDEMN_ARMED),
            condemn_fired: registry.counter_def(&names::SERVER_CONDEMN_FIRED),
            fences: registry.counter_def(&names::SERVER_FENCES),
            sessions: registry.counter_def(&names::SERVER_SESSIONS),
            recovery_began: registry.counter_def(&names::SERVER_RECOVERY_BEGAN),
            recovery_ended: registry.counter_def(&names::SERVER_RECOVERY_ENDED),
            unexpected_msgs: registry.counter_def(&names::SERVER_UNEXPECTED_MSGS),
            wal_appends: registry.counter_def(&names::META_WAL_APPENDS),
            wal_fsyncs: registry.counter_def(&names::META_WAL_FSYNCS),
            snapshot_compactions: registry.counter_def(&names::META_SNAPSHOT_COMPACTIONS),
            failover_elections: registry.counter_def(&names::SERVER_FAILOVER_ELECTIONS),
            datalock_shared_grants: registry.counter_def(&names::SERVER_DATALOCK_SHARED_GRANTS),
            datalock_exclusive_grants: registry
                .counter_def(&names::SERVER_DATALOCK_EXCLUSIVE_GRANTS),
            datalock_revokes: registry.counter_def(&names::SERVER_DATALOCK_REVOKES),
            steal_latency_ns: registry.histogram_def(&names::SERVER_STEAL_LATENCY_NS),
            replay_latency_ns: registry.histogram_def(&names::SERVER_WAL_REPLAY_LATENCY_NS),
            registry,
        }
    }

    /// Record a structured trace event stamped with true time and this
    /// node's id. The detail closure runs only when tracing is enabled.
    pub fn trace<P: Payload, Ob>(
        &self,
        ctx: &Ctx<'_, P, Ob>,
        kind: &'static str,
        detail: impl FnOnce() -> String,
    ) {
        self.registry.trace_with(
            ctx.now_true_for_instrumentation().0,
            ctx.node().to_string(),
            kind,
            detail,
        );
    }
}
