//! Direct protocol-edge tests of the server node: sessions, dedup/replay,
//! lock preconditions, NACK gating. A minimal scripted requester drives
//! the server without the full client stack, so each exchange is exact.

use tank_core::LeaseConfig;
use tank_proto::message::{FsError, ReplyBody, RequestBody, ResponseOutcome};
use tank_proto::{
    CtlMsg, Epoch, Ino, LockMode, NackReason, NetMsg, NodeId, ReqSeq, Request, SessionId,
};
use tank_server::{ServerConfig, ServerNode};
use tank_sim::{Actor, ClockSpec, Ctx, LocalNs, NetId, NetParams, SimTime, World, WorldConfig};

/// Sends a fixed list of raw requests (one per ms) and records responses.
struct Requester {
    server: NodeId,
    script: Vec<Request>,
    responses: Vec<(ReqSeq, ResponseOutcome)>,
    next: usize,
}

impl Actor<NetMsg, ()> for Requester {
    fn on_start(&mut self, ctx: &mut Ctx<'_, NetMsg, ()>) {
        ctx.set_timer(LocalNs::from_millis(1), 0);
    }
    fn on_message(&mut self, _f: NodeId, _n: NetId, msg: NetMsg, _ctx: &mut Ctx<'_, NetMsg, ()>) {
        if let NetMsg::Ctl(CtlMsg::Response(r)) = msg {
            self.responses.push((r.seq, r.outcome));
        }
    }
    fn on_timer(&mut self, _t: u64, ctx: &mut Ctx<'_, NetMsg, ()>) {
        if let Some(req) = self.script.get(self.next) {
            self.next += 1;
            ctx.send(
                NetId::CONTROL,
                self.server,
                NetMsg::Ctl(CtlMsg::Request(req.clone())),
            );
            ctx.set_timer(LocalNs::from_millis(1), 0);
        }
    }
}

fn run_script(script_builder: impl Fn(NodeId) -> Vec<Request>) -> Vec<(ReqSeq, ResponseOutcome)> {
    let mut w: World<NetMsg> = World::new(WorldConfig::default());
    w.add_network(NetId::CONTROL, NetParams::ideal(100_000));
    w.add_network(NetId::SAN, NetParams::ideal(100_000));
    let mut cfg = ServerConfig::default();
    cfg.lease = LeaseConfig::with_tau(LocalNs::from_secs(5));
    let server = w.add_node(
        Box::new(ServerNode::<()>::unobserved(cfg, 1024, 512)),
        ClockSpec::ideal(),
    );
    {
        let s = w.node_mut::<ServerNode<()>>(server).unwrap();
        s.precreate_file("f0", 4);
    }
    let script = script_builder(server);
    let requester = w.add_node(
        Box::new(Requester {
            server,
            script,
            responses: Vec::new(),
            next: 0,
        }),
        ClockSpec::ideal(),
    );
    w.run_until(SimTime::from_secs(2));
    w.node_ref::<Requester>(requester)
        .unwrap()
        .responses
        .clone()
}

fn req(src: u32, session: u64, seq: u64, body: RequestBody) -> Request {
    Request {
        src: NodeId(src),
        session: SessionId(session),
        seq: ReqSeq(seq),
        body,
    }
}

#[test]
fn requests_before_hello_are_stale_session_nacks() {
    let rs = run_script(|_| vec![req(1, 0, 1, RequestBody::GetAttr { ino: Ino(2) })]);
    assert!(matches!(
        rs[0].1,
        ResponseOutcome::Nacked(NackReason::StaleSession)
    ));
}

#[test]
fn wrong_session_id_is_nacked_but_right_one_works() {
    let rs = run_script(|_| {
        vec![
            req(1, 0, 1, RequestBody::Hello { map_epoch: 0 }),
            // Session ids start at 1; claim session 999.
            req(1, 999, 2, RequestBody::GetAttr { ino: Ino(2) }),
            req(1, 1, 3, RequestBody::GetAttr { ino: Ino(2) }),
        ]
    });
    assert!(matches!(
        rs[0].1,
        ResponseOutcome::Acked(Ok(ReplyBody::HelloOk { .. }))
    ));
    assert!(matches!(
        rs[1].1,
        ResponseOutcome::Nacked(NackReason::StaleSession)
    ));
    assert!(matches!(
        rs[2].1,
        ResponseOutcome::Acked(Ok(ReplyBody::Attr { .. }))
    ));
}

#[test]
fn duplicate_requests_are_replayed_not_reexecuted() {
    let rs = run_script(|_| {
        vec![
            req(1, 0, 1, RequestBody::Hello { map_epoch: 0 }),
            req(
                1,
                1,
                2,
                RequestBody::Create {
                    parent: Ino(1),
                    name: "x".into(),
                },
            ),
            // Exact duplicate: must replay Created, not answer Exists.
            req(
                1,
                1,
                2,
                RequestBody::Create {
                    parent: Ino(1),
                    name: "x".into(),
                },
            ),
            // A *new* seq for the same name is a real re-execution.
            req(
                1,
                1,
                3,
                RequestBody::Create {
                    parent: Ino(1),
                    name: "x".into(),
                },
            ),
        ]
    });
    let created =
        |o: &ResponseOutcome| matches!(o, ResponseOutcome::Acked(Ok(ReplyBody::Created { .. })));
    assert!(created(&rs[1].1));
    assert!(created(&rs[2].1), "duplicate replays the original Created");
    assert!(matches!(
        rs[3].1,
        ResponseOutcome::Acked(Err(FsError::Exists))
    ));
}

#[test]
fn data_mutations_require_the_exclusive_lock() {
    let rs = run_script(|_| {
        vec![
            req(1, 0, 1, RequestBody::Hello { map_epoch: 0 }),
            req(
                1,
                1,
                2,
                RequestBody::AllocBlocks {
                    ino: Ino(2),
                    count: 2,
                },
            ),
            req(
                1,
                1,
                3,
                RequestBody::CommitWrite {
                    ino: Ino(2),
                    new_size: 99,
                },
            ),
            req(
                1,
                1,
                4,
                RequestBody::SetAttr {
                    ino: Ino(2),
                    size: Some(0),
                },
            ),
            req(
                1,
                1,
                5,
                RequestBody::LockAcquire {
                    ino: Ino(2),
                    mode: LockMode::Exclusive,
                },
            ),
            req(
                1,
                1,
                6,
                RequestBody::AllocBlocks {
                    ino: Ino(2),
                    count: 2,
                },
            ),
            req(
                1,
                1,
                7,
                RequestBody::CommitWrite {
                    ino: Ino(2),
                    new_size: 99,
                },
            ),
            req(
                1,
                1,
                8,
                RequestBody::SetAttr {
                    ino: Ino(2),
                    size: Some(512),
                },
            ),
        ]
    });
    let notlocked =
        |o: &ResponseOutcome| matches!(o, ResponseOutcome::Acked(Err(FsError::NotLocked)));
    assert!(notlocked(&rs[1].1), "alloc without lock");
    assert!(notlocked(&rs[2].1), "commit without lock");
    assert!(notlocked(&rs[3].1), "truncate without lock");
    assert!(matches!(
        rs[4].1,
        ResponseOutcome::Acked(Ok(ReplyBody::LockGranted { .. }))
    ));
    assert!(matches!(
        rs[5].1,
        ResponseOutcome::Acked(Ok(ReplyBody::Allocated { .. }))
    ));
    assert!(matches!(rs[6].1, ResponseOutcome::Acked(Ok(ReplyBody::Ok))));
    assert!(matches!(
        rs[7].1,
        ResponseOutcome::Acked(Ok(ReplyBody::Attr { .. }))
    ));
}

#[test]
fn stale_epoch_release_is_a_noop() {
    let rs = run_script(|_| {
        vec![
            req(1, 0, 1, RequestBody::Hello { map_epoch: 0 }),
            req(
                1,
                1,
                2,
                RequestBody::LockAcquire {
                    ino: Ino(2),
                    mode: LockMode::Exclusive,
                },
            ),
            // Release with a wrong epoch: server must keep the holding.
            req(
                1,
                1,
                3,
                RequestBody::LockRelease {
                    ino: Ino(2),
                    epoch: Epoch(9999),
                },
            ),
            // Still held: a covered re-acquire returns the same grant.
            req(
                1,
                1,
                4,
                RequestBody::LockAcquire {
                    ino: Ino(2),
                    mode: LockMode::SharedRead,
                },
            ),
        ]
    });
    let e1 = match &rs[1].1 {
        ResponseOutcome::Acked(Ok(ReplyBody::LockGranted { epoch, .. })) => *epoch,
        other => panic!("{other:?}"),
    };
    assert!(matches!(rs[2].1, ResponseOutcome::Acked(Ok(ReplyBody::Ok))));
    match &rs[3].1 {
        ResponseOutcome::Acked(Ok(ReplyBody::LockGranted { epoch, mode, .. })) => {
            assert_eq!(*epoch, e1, "holding survived the stale release");
            assert_eq!(*mode, LockMode::Exclusive);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn fresh_hello_releases_previous_incarnations_locks() {
    let rs = run_script(|_| {
        vec![
            req(1, 0, 1, RequestBody::Hello { map_epoch: 0 }),
            req(
                1,
                1,
                2,
                RequestBody::LockAcquire {
                    ino: Ino(2),
                    mode: LockMode::Exclusive,
                },
            ),
            req(1, 0, 3, RequestBody::Hello { map_epoch: 0 }), // new incarnation
            // New session; the old lock must be gone, so this grant gets a
            // NEW epoch rather than AlreadyHeld's old one.
            req(
                1,
                2,
                4,
                RequestBody::LockAcquire {
                    ino: Ino(2),
                    mode: LockMode::Exclusive,
                },
            ),
        ]
    });
    let e1 = match &rs[1].1 {
        ResponseOutcome::Acked(Ok(ReplyBody::LockGranted { epoch, .. })) => *epoch,
        other => panic!("{other:?}"),
    };
    let e2 = match &rs[3].1 {
        ResponseOutcome::Acked(Ok(ReplyBody::LockGranted { epoch, .. })) => *epoch,
        other => panic!("{other:?}"),
    };
    assert!(e2 > e1, "fresh grant after hello: {e1:?} -> {e2:?}");
}

#[test]
fn unlink_of_a_locked_file_is_denied() {
    let rs = run_script(|_| {
        vec![
            req(1, 0, 1, RequestBody::Hello { map_epoch: 0 }),
            req(
                1,
                1,
                2,
                RequestBody::LockAcquire {
                    ino: Ino(2),
                    mode: LockMode::SharedRead,
                },
            ),
            req(
                1,
                1,
                3,
                RequestBody::Unlink {
                    parent: Ino(1),
                    name: "f0".into(),
                },
            ),
            req(
                1,
                1,
                4,
                RequestBody::LockRelease {
                    ino: Ino(2),
                    epoch: Epoch(1),
                },
            ),
            req(
                1,
                1,
                5,
                RequestBody::Unlink {
                    parent: Ino(1),
                    name: "f0".into(),
                },
            ),
        ]
    });
    assert!(
        matches!(rs[2].1, ResponseOutcome::Acked(Err(FsError::Unavailable))),
        "unlink while locked must be denied: {:?}",
        rs[2].1
    );
    assert!(
        matches!(rs[4].1, ResponseOutcome::Acked(Ok(ReplyBody::Ok))),
        "unlink after release works: {:?}",
        rs[4].1
    );
}

#[test]
fn application_errors_still_ack() {
    let rs = run_script(|_| {
        vec![
            req(1, 0, 1, RequestBody::Hello { map_epoch: 0 }),
            req(
                1,
                1,
                2,
                RequestBody::Lookup {
                    parent: Ino(1),
                    name: "nope".into(),
                },
            ),
            req(
                1,
                1,
                3,
                RequestBody::Unlink {
                    parent: Ino(1),
                    name: "nope".into(),
                },
            ),
            req(1, 1, 4, RequestBody::ReadDir { dir: Ino(2) }), // a file, not a dir
        ]
    });
    for (i, (_, o)) in rs.iter().enumerate().skip(1) {
        assert!(
            matches!(o, ResponseOutcome::Acked(Err(_))),
            "op {i} should be an ACKed error: {o:?}"
        );
    }
}
