//! The local-process file API: operations, results, observable events,
//! and the workload-generator trait.

use rand_chacha::ChaCha8Rng;
use tank_proto::{Ino, OpId, WriteTag};
use tank_sim::LocalNs;

/// A file-system operation submitted by a local process.
///
/// Paths are absolute, `/`-separated; resolution happens against the
/// server (each component lookup is a metadata transaction and therefore
/// an opportunistic lease renewal).
#[derive(Debug, Clone, PartialEq)]
pub enum FsOp {
    /// Create an empty file.
    Create {
        /// Absolute path of the new file.
        path: String,
    },
    /// Create a directory.
    Mkdir {
        /// Absolute path of the new directory.
        path: String,
    },
    /// Read a byte range.
    Read {
        /// File path.
        path: String,
        /// Byte offset.
        offset: u64,
        /// Byte count.
        len: u32,
    },
    /// Write a byte range (write-back: completes into the cache).
    Write {
        /// File path.
        path: String,
        /// Byte offset.
        offset: u64,
        /// The data.
        data: Vec<u8>,
    },
    /// Stat a path.
    Stat {
        /// The path.
        path: String,
    },
    /// List a directory.
    List {
        /// Directory path.
        path: String,
    },
    /// Remove a file or empty directory.
    Delete {
        /// The path.
        path: String,
    },
    /// Rename a top-level file, possibly across metadata shards. Executed
    /// client-side as two-lock link-then-unlink (see DESIGN.md §11): the
    /// destination entry is linked before the source is unlinked, so a
    /// failure leaves the file reachable under at least one name.
    Rename {
        /// Source path (single top-level component).
        from: String,
        /// Destination path (single top-level component).
        to: String,
    },
    /// Force write-back of a file's dirty blocks (and commit its size).
    Flush {
        /// File path.
        path: String,
    },
    /// Release any lock held on the file (flushing first).
    Release {
        /// File path.
        path: String,
    },
}

impl FsOp {
    /// The path the operation targets.
    pub fn path(&self) -> &str {
        match self {
            FsOp::Create { path }
            | FsOp::Mkdir { path }
            | FsOp::Read { path, .. }
            | FsOp::Write { path, .. }
            | FsOp::Stat { path }
            | FsOp::List { path }
            | FsOp::Delete { path }
            | FsOp::Flush { path }
            | FsOp::Release { path } => path,
            FsOp::Rename { from, .. } => from,
        }
    }

    /// Short label for metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            FsOp::Create { .. } => "create",
            FsOp::Mkdir { .. } => "mkdir",
            FsOp::Read { .. } => "read",
            FsOp::Write { .. } => "write",
            FsOp::Stat { .. } => "stat",
            FsOp::List { .. } => "list",
            FsOp::Delete { .. } => "delete",
            FsOp::Rename { .. } => "rename",
            FsOp::Flush { .. } => "flush",
            FsOp::Release { .. } => "release",
        }
    }
}

/// Successful operation payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum FsData {
    /// Nothing to return.
    Unit,
    /// Bytes read.
    Bytes(Vec<u8>),
    /// Attributes: (size, is_dir, version).
    Attr {
        /// File size.
        size: u64,
        /// Directory flag.
        is_dir: bool,
        /// Metadata version.
        version: u64,
    },
    /// Directory entries.
    Entries(Vec<String>),
}

/// Operation errors as seen by local processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsErr {
    /// No such file or directory.
    NotFound,
    /// Already exists.
    Exists,
    /// Out of space.
    NoSpace,
    /// Invalid operation (e.g. dir misuse).
    Invalid,
    /// The client is quiesced or dead: it has (or suspects it has) lost
    /// contact with the server and will not start new work (§3.2 phase 3;
    /// this is the honest error an isolated Storage Tank client returns,
    /// where a fenced-only client would silently serve stale cache).
    Suspended,
    /// The operation was in flight when the lease expired; its effects are
    /// not guaranteed (dirty data was flushed to disk, but locks are gone).
    LeaseLost,
    /// The file is locked by an unreachable client and the server's policy
    /// honors its locks (§2's indefinite unavailability, surfaced when the
    /// harness gives up waiting).
    Unavailable,
}

/// Final result of one submitted operation.
pub type FsResult = Result<FsData, FsErr>;

/// Observable client events for the offline checker and the availability
/// accounting.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientEvent {
    /// A local process submitted an operation.
    OpSubmitted {
        /// Operation id (unique per client).
        op: OpId,
        /// Kind label (for reports).
        kind: &'static str,
    },
    /// The operation completed (successfully or not).
    OpCompleted {
        /// Operation id.
        op: OpId,
        /// Kind label.
        kind: &'static str,
        /// Whether it succeeded.
        ok: bool,
        /// The error, if not.
        err: Option<FsErr>,
    },
    /// A write was acknowledged to a local process *into the cache*: the
    /// contract under write-back caching is that this version eventually
    /// hardens (unless superseded by a newer local write, the file is
    /// deleted, or the client fail-stops). A version that is acked here,
    /// never superseded, and never hardened is a **lost update** — §2.1's
    /// stranded dirty data.
    WriteAcked {
        /// Operation id.
        op: OpId,
        /// File.
        ino: Ino,
        /// Block index within the file.
        idx: u32,
        /// Version tag of the cached data.
        tag: WriteTag,
    },
    /// A read returned data for one block, served from cache or disk; the
    /// checker compares `tag` with what should have been visible.
    ReadServed {
        /// Operation id.
        op: OpId,
        /// File.
        ino: Ino,
        /// Block index.
        idx: u32,
        /// Version tag of the data served.
        tag: WriteTag,
        /// True if served from the local cache.
        from_cache: bool,
    },
    /// The lease expired and the cache was invalidated; `discarded_dirty`
    /// counts dirty blocks that had NOT been hardened (should be zero when
    /// phase 4 had time to run).
    CacheInvalidated {
        /// Dirty blocks lost.
        discarded_dirty: usize,
    },
    /// The client began quiescing one lease lane (entered phase 3).
    Quiesced {
        /// Shard (server index) whose lane quiesced.
        shard: u16,
    },
    /// The client resumed service on one lane (renewed after quiesce, or
    /// re-Helloed).
    Resumed {
        /// Shard (server index) whose lane resumed.
        shard: u16,
    },
}

/// Closed-loop workload generator: after each completed operation the
/// client asks for the next one plus a think time.
pub trait OpGen {
    /// The next operation, or `None` when the workload is exhausted.
    fn next_op(&mut self, rng: &mut ChaCha8Rng, now: LocalNs) -> Option<(LocalNs, FsOp)>;
}

/// A fixed script of operations, each fired after a delay from client
/// start measured on the client's own clock. Steps are scheduled
/// independently (not closed-loop).
#[derive(Debug, Clone, Default)]
pub struct Script {
    /// `(delay-from-start, op)` pairs.
    pub steps: Vec<(LocalNs, FsOp)>,
}

impl Script {
    /// Empty script.
    pub fn new() -> Self {
        Script::default()
    }

    /// Add a step firing `delay` after client start.
    pub fn at(mut self, delay: LocalNs, op: FsOp) -> Self {
        self.steps.push((delay, op));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_paths_and_kinds() {
        let op = FsOp::Write {
            path: "/a/b".into(),
            offset: 0,
            data: vec![1],
        };
        assert_eq!(op.path(), "/a/b");
        assert_eq!(op.kind(), "write");
        assert_eq!(FsOp::Stat { path: "/x".into() }.kind(), "stat");
    }

    #[test]
    fn script_builder() {
        let s = Script::new()
            .at(LocalNs::from_millis(1), FsOp::Create { path: "/f".into() })
            .at(LocalNs::from_millis(2), FsOp::Stat { path: "/f".into() });
        assert_eq!(s.steps.len(), 2);
    }
}
