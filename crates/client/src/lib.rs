//! The Storage Tank client node.
//!
//! A [`ClientNode`] serves file-system operations for its local processes:
//!
//! * metadata operations go to the server over the control network, and —
//!   because every acknowledged request renews the lease — double as
//!   opportunistic lease renewals (§3.1);
//! * data I/O goes **directly to the shared SAN disks** once the client
//!   holds a data lock and the lock grant's block map (§1.1);
//! * writes are **write-back cached** (§2.1): a local write completes into
//!   the cache and is hardened later — by the periodic flush, by a lock
//!   demand from the server, or by phase 4 of an expiring lease;
//! * the embedded [`tank_core::ClientLease`] drives the four-phase lease
//!   lifecycle: keep-alives when renewal stalls, quiesce when suspect,
//!   flush-everything in expected-failure, then invalidate + cede and
//!   re-`Hello` after expiry.
//!
//! The actor is organized as a set of small engines around one state
//! bundle: a request/retry engine (at-most-once, lease-aware), a SAN I/O
//! engine (block reads/writes with striping shared with the server), an
//! operation state machine per in-flight local op, and flush campaigns.

pub mod cache;
pub mod fs;
pub mod node;
pub mod obs;

pub use cache::{BlockCache, BlockState};
pub use fs::{ClientEvent, FsData, FsErr, FsOp, OpGen};
pub use node::{ClientConfig, ClientNode, ClientStats};
pub use obs::ClientObs;
