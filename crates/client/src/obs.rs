//! Client-side observability handles.
//!
//! [`ClientObs`] resolves every client-layer instrument from the shared
//! [`Registry`] once, at attach time, so emission sites in the node touch
//! only atomics. Trace events are stamped with *true* simulation time (an
//! instrumentation-only privilege — protocol logic never sees it) so a
//! merged multi-node trace is totally ordered.

use std::sync::Arc;

use tank_obs::{names, Counter, Histogram, Registry};
use tank_sim::{Ctx, NodeId, Payload};

/// Pre-resolved client metric handles plus the trace sink.
pub struct ClientObs {
    registry: Arc<Registry>,
    /// `client.renewals`.
    pub renewals: Arc<Counter>,
    /// `client.phase.quiesce`.
    pub phase_quiesce: Arc<Counter>,
    /// `client.phase.flush`.
    pub phase_flush: Arc<Counter>,
    /// `client.phase.invalid`.
    pub phase_invalid: Arc<Counter>,
    /// `client.phase.resume`.
    pub phase_resume: Arc<Counter>,
    /// `client.expiry.discarded_dirty`.
    pub discarded_dirty: Arc<Counter>,
    /// `client.retransmits`.
    pub retransmits: Arc<Counter>,
    /// `client.unexpected_msgs`.
    pub unexpected_msgs: Arc<Counter>,
    /// `client.lane.expiries`.
    pub lane_expiries: Arc<Counter>,
    /// `client.rename.aborts`.
    pub rename_aborts: Arc<Counter>,
    /// `client.renewal_headroom_ns`.
    pub renewal_headroom_ns: Arc<Histogram>,
    /// `client.batch.size`.
    pub batch_size: Arc<Histogram>,
    /// `client.batch.flush_reason`.
    pub batch_flush_reason: Arc<Histogram>,
    /// `client.cache.hits`.
    pub cache_hits: Arc<Counter>,
    /// `client.cache.misses`.
    pub cache_misses: Arc<Counter>,
    /// `client.cache.evictions`.
    pub cache_evictions: Arc<Counter>,
    /// `client.cache.writeback_flushes`.
    pub writeback_flushes: Arc<Counter>,
    /// `client.cache.revokes`.
    pub cache_revokes: Arc<Counter>,
}

impl std::fmt::Debug for ClientObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientObs").finish_non_exhaustive()
    }
}

impl ClientObs {
    /// Resolve all client instruments from `registry`.
    pub fn new(registry: Arc<Registry>) -> ClientObs {
        ClientObs {
            renewals: registry.counter_def(&names::CLIENT_RENEWALS),
            phase_quiesce: registry.counter_def(&names::CLIENT_PHASE_QUIESCE),
            phase_flush: registry.counter_def(&names::CLIENT_PHASE_FLUSH),
            phase_invalid: registry.counter_def(&names::CLIENT_PHASE_INVALID),
            phase_resume: registry.counter_def(&names::CLIENT_PHASE_RESUME),
            discarded_dirty: registry.counter_def(&names::CLIENT_EXPIRY_DISCARDED_DIRTY),
            retransmits: registry.counter_def(&names::CLIENT_RETRANSMITS),
            unexpected_msgs: registry.counter_def(&names::CLIENT_UNEXPECTED_MSGS),
            lane_expiries: registry.counter_def(&names::CLIENT_LANE_EXPIRIES),
            rename_aborts: registry.counter_def(&names::CLIENT_RENAME_ABORTS),
            renewal_headroom_ns: registry.histogram_def(&names::CLIENT_RENEWAL_HEADROOM_NS),
            batch_size: registry.histogram_def(&names::CLIENT_BATCH_SIZE),
            batch_flush_reason: registry.histogram_def(&names::CLIENT_BATCH_FLUSH_REASON),
            cache_hits: registry.counter_def(&names::CLIENT_CACHE_HITS),
            cache_misses: registry.counter_def(&names::CLIENT_CACHE_MISSES),
            cache_evictions: registry.counter_def(&names::CLIENT_CACHE_EVICTIONS),
            writeback_flushes: registry.counter_def(&names::CLIENT_CACHE_WRITEBACK_FLUSHES),
            cache_revokes: registry.counter_def(&names::CLIENT_CACHE_REVOKES),
            registry,
        }
    }

    /// Record a structured trace event stamped with true time and this
    /// node's id. The detail closure runs only when tracing is enabled.
    pub fn trace<P: Payload, Ob>(
        &self,
        ctx: &Ctx<'_, P, Ob>,
        kind: &'static str,
        detail: impl FnOnce() -> String,
    ) {
        self.registry.trace_with(
            ctx.now_true_for_instrumentation().0,
            ctx.node().to_string(),
            kind,
            detail,
        );
    }

    /// Same, for call sites that only know the node id and a true-time
    /// stamp (e.g. world-harness code outside a dispatch).
    pub fn trace_at(&self, t_true_ns: u64, node: NodeId, kind: &'static str, detail: String) {
        self.registry
            .trace(t_true_ns, node.to_string(), kind, detail);
    }
}
