//! The Storage Tank client actor.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use tank_core::{ClientLease, LeaseAction, LeaseConfig, Phase};
use tank_obs::Registry;
use tank_proto::message::{FsError, ReplyBody, RequestBody, ResponseOutcome};
use tank_proto::{
    stripe_disk, BlockId, CtlMsg, Epoch, Incarnation, Ino, LockMode, NackReason, NetMsg, NodeId,
    OpId, PushBody, ReqSeq, Request, Response, RouteError, SanMsg, ServerId, ServerPush, SessionId,
    WriteTag,
};
use tank_shard::ShardMap;
use tank_sim::{Actor, Ctx, LocalNs, NetId, TimerId, TokenMap};

use crate::cache::BlockCache;
use crate::fs::{ClientEvent, FsData, FsErr, FsOp, FsResult, OpGen, Script};
use crate::obs::ClientObs;

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The metadata server (shard 0 when sharded; kept for single-server
    /// call sites).
    pub server: NodeId,
    /// All metadata servers, indexed by [`ServerId`]. `new` fills this
    /// with just `server`; [`ClientConfig::sharded`] takes the full set.
    pub servers: Vec<NodeId>,
    /// Optional warm-standby address per shard (same indexing as
    /// `servers`). When a lane's primary NACKs `Misrouted(NotPrimary)`
    /// or goes silent long enough to expire the lease locally, the lane
    /// rotates to its alternate and re-`Hello`s there. Empty (the
    /// default) disables rotation entirely.
    pub alternates: Vec<Option<NodeId>>,
    /// The shard map routing inodes to servers (must match the servers').
    pub map: ShardMap,
    /// The SAN disks (striping order must match the server's).
    pub disks: Vec<NodeId>,
    /// Lease contract (must match the server's).
    pub lease: LeaseConfig,
    /// Block size (must match the server's store).
    pub block_size: usize,
    /// Initial request retransmission timeout.
    pub rto: LocalNs,
    /// Retransmission backoff cap.
    pub max_rto: LocalNs,
    /// Periodic write-back interval (0 disables background flushing).
    pub flush_interval: LocalNs,
    /// Run the lease protocol (default). Disabled models the baseline
    /// clients of steal/fence-based systems: no keep-alives, no quiesce,
    /// no phase-4 flush, no local expiry — the client trusts its cache
    /// until the server denies its session.
    pub lease_enabled: bool,
    /// How many generated (closed-loop) operations may be in flight at
    /// once — the number of independent local processes. One blocked op
    /// (e.g. a lock wait across a partition) then does not stop the
    /// machine's other processes.
    pub gen_concurrency: usize,
    /// Maximum concurrent SAN writes per flush campaign (the initiator's
    /// queue depth). Bounds how fast a dirty cache can harden — the knob
    /// that makes phase-4 sizing (E2b) a real constraint.
    pub flush_window: usize,
    /// Ship data operations through the server (`ReadData`/`WriteData`)
    /// instead of locking and doing direct SAN I/O — the traditional-
    /// server baseline of §1.1 (server must run in the matching mode).
    /// Data ops must be whole-block in this mode.
    pub function_ship: bool,
    /// Maximum control-path operations coalesced into one
    /// [`RequestBody::Batch`] message per lease lane. `1` (the default)
    /// disables batching entirely: every request is its own datagram,
    /// the pre-batching wire behavior.
    pub batch_cap: usize,
    /// How long a queued batchable request may wait for companions
    /// before the lane flushes anyway (the δt flush trigger).
    pub batch_delay: LocalNs,
    /// Absorb voluntary lock releases locally: the lock (and the cached
    /// data under it) stays live until the server demands it back or the
    /// retained set overflows. Releasing costs zero round trips and the
    /// next open of the same file finds the lock already held.
    pub lazy_release: bool,
    /// Retained-release cap: absorbing one more voluntary release evicts
    /// the oldest retained lock through the eager flush+commit+release
    /// path it originally skipped.
    pub lazy_release_cap: usize,
    /// Block-cache capacity in blocks. Clean blocks past the limit evict
    /// in LRU order after each read is served; dirty write-back blocks
    /// are never evicted. `usize::MAX` (the default) is unbounded; `0`
    /// retains no clean data at all — the "every read pays a SAN round
    /// trip" baseline E17 measures against.
    pub cache_capacity: usize,
    /// Request `SharedRead` data locks for reads (the default), letting N
    /// clients serve a hot file from N caches concurrently. Disabled,
    /// every read acquires `Exclusive` — the single-owner baseline whose
    /// lock ping-pong E17 quantifies.
    pub shared_read: bool,
    /// Enforce the phase-3 admission gate of PAPER.md Figure 4: once a
    /// lane's lease turns Suspect, stop admitting operations and stop
    /// serving cached data for that shard until the lease resumes.
    /// Disabling this is a **negative control** — the checker's
    /// cache-coherence audit must flag the reads a quiesced cache serves.
    pub phase3_gate: bool,
}

impl ClientConfig {
    /// Reasonable defaults against `server` and `disks`.
    pub fn new(server: NodeId, disks: Vec<NodeId>) -> Self {
        ClientConfig {
            server,
            servers: vec![server],
            alternates: Vec::new(),
            map: ShardMap::single(),
            disks,
            lease: LeaseConfig::default(),
            block_size: 4096,
            rto: LocalNs::from_millis(250),
            max_rto: LocalNs::from_secs(2),
            flush_interval: LocalNs::from_secs(2),
            lease_enabled: true,
            gen_concurrency: 1,
            flush_window: 16,
            function_ship: false,
            batch_cap: 1,
            batch_delay: LocalNs(500_000),
            lazy_release: false,
            lazy_release_cap: 32,
            cache_capacity: usize::MAX,
            shared_read: true,
            phase3_gate: true,
        }
    }

    /// Defaults against a sharded server set: `servers[i]` is the lock
    /// server governing shard `ServerId(i)`.
    pub fn sharded(servers: Vec<NodeId>, disks: Vec<NodeId>) -> Self {
        assert!(!servers.is_empty(), "at least one server");
        let map = ShardMap::new(servers.len() as u16);
        let mut cfg = ClientConfig::new(servers[0], disks);
        cfg.servers = servers;
        cfg.map = map;
        cfg
    }
}

/// Client-side counters for the experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct ClientStats {
    /// Operations submitted by local processes.
    pub submitted: u64,
    /// Operations completed successfully.
    pub completed: u64,
    /// Operations refused because the client was quiesced/dead.
    pub denied: u64,
    /// Operations failed with an error.
    pub failed: u64,
    /// Read blocks served from the local cache.
    pub cache_hits: u64,
    /// Read blocks fetched from the SAN.
    pub cache_misses: u64,
    /// Dirty blocks written back to the SAN.
    pub flushed_blocks: u64,
    /// Clean blocks evicted by the cache-capacity limit.
    pub cache_evictions: u64,
    /// SAN I/Os rejected because this client was fenced.
    pub fenced_io: u64,
    /// Requests retransmitted.
    pub retransmits: u64,
}

/// Timer tokens.
#[derive(Debug, Clone, Copy)]
enum ClientTimer {
    /// Re-poll the lease state machine.
    LeasePoll,
    /// Retransmit a pending request.
    ReqRetry(ReqSeq),
    /// Periodic write-back.
    PeriodicFlush,
    /// Retry a NACKed Hello (on the given lane) once the server may have
    /// finished timing us out.
    HelloRetry(usize),
    /// Fire the next closed-loop workload operation.
    NextOp,
    /// Fire scripted operation `i`.
    ScriptOp(usize),
    /// δt elapsed on a lane's coalescing queue: flush what gathered.
    BatchFlush(usize),
}

/// Why a request was sent — drives reply dispatch.
#[derive(Debug, Clone)]
enum Purpose {
    Hello {
        sent_at: LocalNs,
    },
    KeepAlive,
    /// A path-resolution lookup step for an op.
    Resolve {
        op: OpId,
    },
    /// The final metadata action of an op.
    Meta {
        op: OpId,
    },
    /// Lock acquisition for an inode (ops park on the ino). `gen` pins
    /// the lock-state era the request belongs to: a response that crosses
    /// a release/invalidation (gen bumped) is from a dead era and must be
    /// ignored, or it would reinstate a stale epoch and block map.
    Lock {
        ino: Ino,
        gen: u64,
    },
    /// Block allocation on behalf of an op.
    Alloc {
        op: OpId,
        ino: Ino,
    },
    /// Fire-and-forget size commit.
    Commit {
        ino: Ino,
    },
    /// Commit whose completion triggers a lock release (demand path).
    CommitThenRelease {
        ino: Ino,
    },
    /// Lock release of our current holding (success tears down local
    /// state).
    Release {
        ino: Ino,
    },
    /// Epoch-qualified cleanup release of a grant we never installed (or
    /// no longer hold): the reply changes nothing locally.
    ReleaseStale,
    /// Push acknowledgement.
    PushAckSend,
    /// One step of a client-driven rename chain (lookup, link, unlink —
    /// stage lives in the op's [`RenameFlow`]).
    Rename {
        op: OpId,
    },
    /// One shard's `ReadDir` of a root-directory listing fan-out.
    ListShard {
        op: OpId,
    },
    /// A coalesced [`RequestBody::Batch`]: one sub-purpose per element,
    /// in wire order. The batch reply's per-element outcomes zip back to
    /// these; a trailing element with no outcome (first-error-stops cut
    /// it off) never executed at the server.
    Batch {
        elems: Vec<Purpose>,
    },
}

/// A request awaiting its response.
struct PendingReq {
    body: RequestBody,
    purpose: Purpose,
    /// The lease lane (server) the request went to.
    lane: usize,
    session: SessionId,
    cur_rto: LocalNs,
    timer: Option<TimerId>,
}

/// Per-server lease lane: one independent four-phase lease machine,
/// session, and incarnation watch per lock server. A partition from shard
/// B walks *this lane* through quiesce → flush → invalidate while the
/// lanes to shards A and C keep serving their inodes (the tentpole
/// isolation property; Theorem 3.1 holds per server).
struct Lane {
    /// Shard this lane leases against.
    sid: ServerId,
    /// The server's network address.
    addr: NodeId,
    /// Alternate (warm standby) address to rotate to when `addr` stops
    /// being the shard's primary — on `Misrouted(NotPrimary)` or local
    /// lease expiry. Rotation swaps the two, so a bounced redirect can
    /// rotate back.
    alt: Option<NodeId>,
    lease: ClientLease,
    session: Option<SessionId>,
    /// The server incarnation the lane last saw (restart detector).
    server_incarnation: Option<Incarnation>,
    /// Whether ops governed by this shard are admitted.
    serving: bool,
    hello_inflight: bool,
    /// Push dedup window (push seqs are per-server).
    seen_pushes: HashSet<u64>,
    /// Batchable requests gathered for the next coalesced flush.
    queue: Vec<(RequestBody, Purpose)>,
    /// The armed δt flush timer, if the queue is non-empty and waiting.
    flush_timer: Option<TimerId>,
}

impl Lane {
    fn new(sid: ServerId, addr: NodeId, alt: Option<NodeId>, lease: LeaseConfig) -> Self {
        Lane {
            sid,
            addr,
            alt,
            lease: ClientLease::new(lease),
            session: None,
            server_incarnation: None,
            serving: false,
            hello_inflight: false,
            seen_pushes: HashSet::new(),
            queue: Vec::new(),
            flush_timer: None,
        }
    }
}

/// A client-driven rename in progress (see DESIGN.md §11): exclusive
/// locks on both parent directories in (ServerId, Ino) order, then
/// lookup → link at destination → unlink at source. Link-before-unlink
/// means any abort leaves the file reachable under at least one name.
struct RenameFlow {
    src_dir: Ino,
    dst_dir: Ino,
    src_name: String,
    dst_name: String,
    /// The file being renamed (after the lookup step).
    ino: Option<Ino>,
    stage: RenameStage,
}

/// Which rename step runs next / is awaited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RenameStage {
    /// Dir locks not yet all held (or lookup not yet sent).
    NeedLookup,
    /// Lookup of the source entry in flight.
    AwaitLookup,
    /// `RenameLink` at the destination in flight.
    AwaitLink,
    /// `RenameUnlink` at the source in flight.
    AwaitUnlink,
}

/// A root-directory listing fanned out to every shard.
struct ListFanout {
    waiting: usize,
    entries: Vec<String>,
}

/// Data-lock state for one inode.
#[derive(Debug, Clone)]
enum LockEntry {
    /// A LockAcquire is in flight.
    Acquiring,
    /// Held with grant metadata; `upgrading` marks an in-flight upgrade.
    Held(LockInfo),
    /// A LockRelease is in flight. The grant metadata is kept so phase-4
    /// flushing can still harden dirty blocks (writes are blocked, but
    /// write-back to the SAN remains both allowed and required until the
    /// lease dies).
    Releasing(LockInfo),
}

/// Grant metadata + local file view.
#[derive(Debug, Clone)]
struct LockInfo {
    mode: LockMode,
    epoch: Epoch,
    blocks: Vec<BlockId>,
    /// Local size (includes uncommitted growth).
    size: u64,
    /// Size the server has confirmed.
    committed_size: u64,
    upgrading: bool,
}

/// An in-flight local operation.
struct ActiveOp {
    op: FsOp,
    state: OpState,
    from_gen: bool,
    /// Resolved target inode (once known).
    ino: Option<Ino>,
}

/// Progress of an operation.
#[derive(Debug)]
enum OpState {
    /// Resolving the path: component `idx` of `parts` under `cur`.
    /// `to_parent` stops one short (Create/Mkdir/Delete address the
    /// parent).
    Resolve {
        parts: Vec<String>,
        idx: usize,
        cur: Ino,
        to_parent: bool,
    },
    /// Waiting for the final metadata reply.
    MetaWait,
    /// Parked until the lock (keyed in `parked`) is held in a covering
    /// mode.
    WaitLock { mode: LockMode },
    /// Waiting for an AllocBlocks reply.
    WaitAlloc,
    /// Read/RMW: waiting for `waiting` SAN block reads.
    SanReads { waiting: usize, then_write: bool },
    /// Waiting for a flush campaign to finish.
    WaitFlush,
}

/// What a pending SAN request was for.
#[derive(Debug, Clone, Copy)]
enum SanOp {
    /// Block read feeding an op (read path or RMW prelude). `epoch` pins
    /// the lock grant the read was issued under: a response landing after
    /// the lock moved on must not populate the cache (it may be a stale
    /// snapshot of a block someone else has since rewritten).
    OpRead {
        op: OpId,
        ino: Ino,
        idx: u32,
        epoch: Epoch,
    },
    /// Write-back of a dirty block within a flush campaign.
    FlushWrite {
        campaign: u64,
        ino: Ino,
        idx: u32,
        tag: WriteTag,
    },
}

/// What happens when a flush campaign finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AfterFlush {
    /// Nothing (phase-4 / periodic flushing).
    Nothing,
    /// Complete this op (Flush op).
    CompleteOp(OpId),
    /// Commit size then release the lock (demand, or Release op carrying
    /// an op to complete afterwards).
    Release { complete: Option<OpId> },
}

/// A flush campaign over one inode. Writes are issued `flush_window` at a
/// time; `queue` holds the not-yet-issued tail.
struct FlushCampaign {
    ino: Ino,
    remaining: usize,
    in_flight: usize,
    queue: std::collections::VecDeque<(u32, Vec<u8>, WriteTag)>,
    after: AfterFlush,
}

/// The client node.
pub struct ClientNode<Ob> {
    cfg: ClientConfig,
    id: NodeId,
    /// The shard map (copied from the config; routes every request).
    map: ShardMap,
    /// One lease lane per lock server, indexed by `ServerId.0`.
    lanes: Vec<Lane>,
    next_seq: u64,
    pending: HashMap<ReqSeq, PendingReq>,
    locks: HashMap<Ino, LockEntry>,
    /// Name cache (dentry cache): full path → inode, learned from
    /// resolutions. Metadata is only weakly consistent (§3 fn.1), so using
    /// possibly-stale entries is within contract; the cache is dropped
    /// with everything else at lease expiry.
    name_cache: HashMap<String, Ino>,
    /// Ops parked per ino waiting for a lock grant.
    parked: HashMap<Ino, Vec<OpId>>,
    /// Per-ino lock-state generation, bumped whenever the local holding is
    /// torn down (release confirmed, lock failure, expiry). Never cleared:
    /// Purpose::Lock responses from earlier generations are void.
    lock_gen: HashMap<Ino, u64>,
    /// Demands that arrived while the lock state was in motion (acquiring,
    /// or releasing a *different* grant): ino → the demanded epoch. The
    /// server has (or is about to have) granted us that epoch and wants it
    /// back — handle the demand once the state settles. Answering "I hold
    /// nothing" instead would blind-release the in-flight grant and leave
    /// us writing under a dead epoch.
    deferred_demands: HashMap<Ino, Epoch>,
    cache: BlockCache,
    /// Block indices each in-flight read had to fetch from the SAN (cache
    /// misses), so the serve step can label `ReadServed.from_cache`
    /// accurately per block.
    read_fetched: HashMap<OpId, Vec<u32>>,
    ops: HashMap<OpId, ActiveOp>,
    next_op_id: u64,
    /// Global write-tag counter: every client-minted [`WriteTag`] draws a
    /// fresh odd `wseq` from it, making tags unique across all of this
    /// client's locks and shards (see `WriteTag`'s uniqueness contract).
    next_wseq: u64,
    pending_san: HashMap<u64, SanOp>,
    next_san_req: u64,
    flushes: HashMap<u64, FlushCampaign>,
    next_flush_id: u64,
    /// In-flight client-driven renames.
    renames: HashMap<OpId, RenameFlow>,
    /// In-flight root-listing fan-outs.
    list_fanout: HashMap<OpId, ListFanout>,
    timers: TokenMap<ClientTimer>,
    gen: Option<Box<dyn OpGen>>,
    script: Script,
    /// A queued closed-loop op waiting for its think-time timer.
    gen_op_queued: bool,
    queued_gen_op: Option<FsOp>,
    /// Ops to complete when a commit-then-release chain finishes.
    release_after_commit: HashMap<Ino, Option<OpId>>,
    /// Ops to complete when a release reply arrives.
    release_completes: HashMap<Ino, Option<OpId>>,
    /// Inodes whose voluntary release was absorbed locally (lazy
    /// release), oldest first. The lock stays `Held`; a server demand or
    /// cap overflow sends it back through the eager release path.
    lazy_retained: Vec<Ino>,
    next_poll_at: Option<LocalNs>,
    /// Recent operation results (ring buffer) for harness/test harvesting.
    results: std::collections::VecDeque<(OpId, FsResult)>,
    stats: ClientStats,
    observe: Box<dyn Fn(ClientEvent) -> Option<Ob>>,
    obs: Option<ClientObs>,
}

/// Cap on the retained per-client result log.
const RESULT_LOG_CAP: usize = 16_384;

/// Flush-reason codes recorded in `client.batch.flush_reason`: the size
/// cap filled the batch.
const FLUSH_SIZE: u64 = 0;
/// δt elapsed before the batch filled.
const FLUSH_DELAY: u64 = 1;
/// A sync point (urgent or non-batchable request) forced the flush.
const FLUSH_SYNC: u64 = 2;

impl<Ob> ClientNode<Ob> {
    /// New client. `observe` converts client events into world
    /// observations.
    pub fn new(cfg: ClientConfig, observe: Box<dyn Fn(ClientEvent) -> Option<Ob>>) -> Self {
        let cache = BlockCache::with_capacity(cfg.block_size, cfg.cache_capacity);
        let map = cfg.map;
        assert_eq!(
            cfg.servers.len(),
            map.nshards() as usize,
            "one server address per shard"
        );
        if !cfg.alternates.is_empty() {
            assert_eq!(
                cfg.alternates.len(),
                cfg.servers.len(),
                "one alternate slot per shard (or none at all)"
            );
        }
        let lanes = cfg
            .servers
            .iter()
            .enumerate()
            .map(|(i, &addr)| {
                let alt = cfg.alternates.get(i).copied().flatten();
                Lane::new(ServerId(i as u16), addr, alt, cfg.lease)
            })
            .collect();
        ClientNode {
            cfg,
            id: NodeId(u32::MAX),
            map,
            lanes,
            next_seq: 1,
            pending: HashMap::new(),
            locks: HashMap::new(),
            name_cache: HashMap::new(),
            parked: HashMap::new(),
            lock_gen: HashMap::new(),
            deferred_demands: HashMap::new(),
            cache,
            read_fetched: HashMap::new(),
            ops: HashMap::new(),
            next_op_id: 1,
            next_wseq: 0,
            pending_san: HashMap::new(),
            next_san_req: 1,
            flushes: HashMap::new(),
            next_flush_id: 1,
            renames: HashMap::new(),
            list_fanout: HashMap::new(),
            timers: TokenMap::new(),
            gen: None,
            script: Script::new(),
            gen_op_queued: false,
            queued_gen_op: None,
            release_after_commit: HashMap::new(),
            release_completes: HashMap::new(),
            lazy_retained: Vec::new(),
            next_poll_at: None,
            results: std::collections::VecDeque::new(),
            stats: ClientStats::default(),
            observe,
            obs: None,
        }
    }

    /// Client with no observer.
    pub fn unobserved(cfg: ClientConfig) -> Self {
        ClientNode::new(cfg, Box::new(|_| None))
    }

    /// Attach an observability registry: lease-lifecycle counters, the
    /// renewal-headroom histogram, and structured trace events.
    pub fn set_obs(&mut self, registry: Arc<Registry>) {
        self.obs = Some(ClientObs::new(registry));
    }

    /// Builder form of [`set_obs`](Self::set_obs).
    pub fn with_obs(mut self, registry: Arc<Registry>) -> Self {
        self.set_obs(registry);
        self
    }

    /// Attach a closed-loop workload generator (before the world starts).
    pub fn with_workload(mut self, gen: Box<dyn OpGen>) -> Self {
        self.gen = Some(gen);
        self
    }

    /// Attach a fixed script (before the world starts).
    pub fn with_script(mut self, script: Script) -> Self {
        self.script = script;
        self
    }

    /// Setter form of [`with_workload`](Self::with_workload) for nodes
    /// already registered in a world.
    pub fn set_workload(&mut self, gen: Box<dyn OpGen>) {
        self.gen = Some(gen);
    }

    /// Setter form of [`with_script`](Self::with_script).
    pub fn set_script(&mut self, script: Script) {
        self.script = script;
    }

    /// Counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Recent operation results, oldest first (bounded ring).
    pub fn results(&self) -> impl Iterator<Item = &(OpId, FsResult)> {
        self.results.iter()
    }

    /// The result of one operation, if still retained.
    pub fn result_of(&self, op: OpId) -> Option<&FsResult> {
        self.results
            .iter()
            .find(|(id, _)| *id == op)
            .map(|(_, r)| r)
    }

    fn log_result(&mut self, id: OpId, result: &FsResult) {
        if self.results.len() == RESULT_LOG_CAP {
            self.results.pop_front();
        }
        self.results.push_back((id, result.clone()));
    }

    /// The embedded lease machine of shard 0's lane (diagnostics; the
    /// only lane in single-server configurations).
    pub fn lease(&self) -> &ClientLease {
        &self.lanes[0].lease
    }

    /// The lease machine leasing against `sid` (diagnostics).
    pub fn lane_lease(&self, sid: ServerId) -> &ClientLease {
        &self.lanes[sid.0 as usize].lease
    }

    /// Dirty blocks currently in the cache.
    pub fn dirty_blocks(&self) -> usize {
        self.cache.dirty_count()
    }

    /// Whether the client currently admits new operations on every shard.
    pub fn is_serving(&self) -> bool {
        self.lanes.iter().all(|l| l.serving)
    }

    /// Whether ops governed by `sid` are currently admitted.
    pub fn is_serving_shard(&self, sid: ServerId) -> bool {
        self.lanes[sid.0 as usize].serving
    }

    /// Inodes whose voluntary release is being retained lazily
    /// (diagnostics; oldest first).
    pub fn lazy_retained(&self) -> &[Ino] {
        &self.lazy_retained
    }

    /// Whether the lazy-release cache is internally consistent: every
    /// retained inode's lock is still `Held`. Lane expiry and restart
    /// must purge retained entries along with the locks they shadow — a
    /// retained inode without a held lock would "absorb" releases for a
    /// lock the server already reclaimed. (The lane may be transiently
    /// quiesced; that suspends ops, not lock validity.)
    pub fn lazy_cache_consistent(&self) -> bool {
        self.lazy_retained
            .iter()
            .all(|ino| matches!(self.locks.get(ino), Some(LockEntry::Held(_))))
    }

    /// The lane governing `ino` under the shard map.
    fn lane_of_ino(&self, ino: Ino) -> usize {
        self.map.owner_of(ino).0 as usize
    }

    /// The lane whose server lives at `addr`, if any.
    fn lane_of_addr(&self, addr: NodeId) -> Option<usize> {
        self.lanes.iter().position(|l| l.addr == addr)
    }

    /// Swap the lane's address with its alternate, if one is configured.
    /// Called when the current address stops answering as the shard's
    /// primary (a `NotPrimary` redirect, or silence long enough to expire
    /// the lease locally). The swap is symmetric: if the alternate turns
    /// out not to be primary either, its redirect rotates us back, and
    /// the 500 ms hello-retry pacing keeps the ping-pong bounded until an
    /// election settles the question. The incarnation watch is cleared —
    /// the new address is a different server whose incarnation we have
    /// not seen yet, not a restart of the old one.
    fn rotate_lane(&mut self, lane: usize, ctx: &mut Ctx<'_, NetMsg, Ob>) -> bool {
        let l = &mut self.lanes[lane];
        let Some(alt) = l.alt else { return false };
        let old = std::mem::replace(&mut l.addr, alt);
        l.alt = Some(old);
        l.server_incarnation = None;
        l.session = None;
        let sid = l.sid;
        if let Some(obs) = &self.obs {
            obs.trace(ctx, "rotate", || {
                format!("shard={} from={} to={}", sid.0, old.0, alt.0)
            });
        }
        true
    }

    fn gen_of(&self, ino: Ino) -> u64 {
        self.lock_gen.get(&ino).copied().unwrap_or(0)
    }

    fn bump_gen(&mut self, ino: Ino) {
        *self.lock_gen.entry(ino).or_insert(0) += 1;
    }

    fn emit(&mut self, ev: ClientEvent, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        if let Some(ob) = (self.observe)(ev) {
            ctx.observe(ob);
        }
    }

    // ------------------------------------------------------- request engine

    /// Entry point for every control-path request. With batching enabled
    /// (`batch_cap > 1`) batchable bodies coalesce in the lane's queue,
    /// flushed by size cap, δt, or a sync point; non-batchable bodies
    /// flush the queue ahead of themselves so the server still sees a
    /// lane's requests in issue order. With the default `batch_cap = 1`
    /// this is a straight passthrough to [`send_now`](Self::send_now).
    fn send_request(
        &mut self,
        lane: usize,
        body: RequestBody,
        purpose: Purpose,
        retry: bool,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        if self.cfg.batch_cap <= 1 {
            self.send_now(lane, body, purpose, retry, ctx);
            return;
        }
        if !body.batchable() {
            // Sync point: anything already queued (e.g. a CommitWrite)
            // must reach the server before this request executes.
            self.flush_batch(lane, FLUSH_SYNC, ctx);
            self.send_now(lane, body, purpose, retry, ctx);
            return;
        }
        // Urgent traffic — lease maintenance, push acks, and lock
        // handovers — keeps its latency: it flushes the lane immediately,
        // carrying whatever else had gathered along for free.
        let urgent = matches!(
            purpose,
            Purpose::KeepAlive
                | Purpose::PushAckSend
                | Purpose::ReleaseStale
                | Purpose::Release { .. }
                | Purpose::CommitThenRelease { .. }
        );
        self.lanes[lane].queue.push((body, purpose));
        let cap = self.cfg.batch_cap.min(tank_proto::MAX_BATCH_ELEMS);
        if urgent {
            self.flush_batch(lane, FLUSH_SYNC, ctx);
        } else if self.lanes[lane].queue.len() >= cap {
            self.flush_batch(lane, FLUSH_SIZE, ctx);
        } else if self.lanes[lane].flush_timer.is_none() {
            let token = self.timers.insert(ClientTimer::BatchFlush(lane));
            let delay = self.cfg.batch_delay.max(LocalNs(1));
            self.lanes[lane].flush_timer = Some(ctx.set_timer(delay, token));
        }
    }

    /// Flush a lane's coalescing queue: one element goes out bare (a
    /// batch of one would only add framing), more go out as a single
    /// [`RequestBody::Batch`] under one sequence number — one message,
    /// one ACK, one opportunistic renewal (§3.1).
    fn flush_batch(&mut self, lane: usize, reason: u64, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        if let Some(t) = self.lanes[lane].flush_timer.take() {
            ctx.cancel_timer(t);
        }
        let queue = std::mem::take(&mut self.lanes[lane].queue);
        if queue.is_empty() {
            return;
        }
        if let Some(obs) = &self.obs {
            obs.batch_size.observe(queue.len() as u64);
            obs.batch_flush_reason.observe(reason);
        }
        if queue.len() == 1 {
            let (body, purpose) = queue.into_iter().next().unwrap();
            self.send_now(lane, body, purpose, true, ctx);
            return;
        }
        let mut bodies = Vec::with_capacity(queue.len());
        let mut elems = Vec::with_capacity(queue.len());
        for (body, purpose) in queue {
            bodies.push(body);
            elems.push(purpose);
        }
        self.send_now(
            lane,
            RequestBody::Batch(bodies),
            Purpose::Batch { elems },
            true,
            ctx,
        );
    }

    fn send_now(
        &mut self,
        lane: usize,
        body: RequestBody,
        purpose: Purpose,
        retry: bool,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) -> ReqSeq {
        let seq = ReqSeq(self.next_seq);
        self.next_seq += 1;
        let l = &mut self.lanes[lane];
        let session = l.session.unwrap_or(SessionId(0));
        l.lease.on_send(seq, ctx.now());
        let server = l.addr;
        let timer = if retry {
            let token = self.timers.insert(ClientTimer::ReqRetry(seq));
            Some(ctx.set_timer(self.cfg.rto, token))
        } else {
            None
        };
        self.pending.insert(
            seq,
            PendingReq {
                body: body.clone(),
                purpose,
                lane,
                session,
                cur_rto: self.cfg.rto,
                timer,
            },
        );
        ctx.send(
            NetId::CONTROL,
            server,
            NetMsg::Ctl(CtlMsg::Request(Request {
                src: ctx.node(),
                session,
                seq,
                body,
            })),
        );
        seq
    }

    fn retransmit(&mut self, seq: ReqSeq, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        // NOTE: the lease send-time for `seq` is NOT updated — the lease a
        // future ACK grants must run from a send the ACK is known to
        // follow, and only the first transmission has that property for
        // every copy the server might be answering (§3.1).
        let max_rto = self.cfg.max_rto;
        let me = ctx.node();
        // An unanswered Hello probes the lane's other address on every
        // retransmission: a dead primary never sends the NotPrimary
        // redirect that normally steers the lane, so without this the
        // hello would back off against the corpse forever and the shard's
        // promoted standby would never hear from us.
        if let Some(p) = self.pending.get(&seq) {
            if matches!(p.purpose, Purpose::Hello { .. }) {
                let lane = p.lane;
                self.rotate_lane(lane, ctx);
            }
        }
        let Some(p) = self.pending.get_mut(&seq) else {
            return;
        };
        let server = self.lanes[p.lane].addr;
        p.cur_rto = p.cur_rto.times(2).min(max_rto);
        let token = self.timers.insert(ClientTimer::ReqRetry(seq));
        let delay = p.cur_rto;
        let msg = Request {
            src: me,
            session: p.session,
            seq,
            body: p.body.clone(),
        };
        p.timer = Some(ctx.set_timer(delay, token));
        self.stats.retransmits += 1;
        if let Some(obs) = &self.obs {
            obs.retransmits.inc();
            obs.trace(ctx, "retransmit", || {
                format!("seq={} rto_ns={}", seq.0, delay.0)
            });
        }
        ctx.send(NetId::CONTROL, server, NetMsg::Ctl(CtlMsg::Request(msg)));
    }

    fn drop_pending(&mut self, seq: ReqSeq, ctx: &mut Ctx<'_, NetMsg, Ob>) -> Option<PendingReq> {
        let p = self.pending.remove(&seq)?;
        if let Some(t) = p.timer {
            ctx.cancel_timer(t);
        }
        Some(p)
    }

    // ----------------------------------------------------------- session

    fn send_hello(&mut self, lane: usize, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        if self.lanes[lane].hello_inflight {
            return;
        }
        self.lanes[lane].hello_inflight = true;
        let sent_at = ctx.now();
        let map_epoch = self.map.epoch();
        self.send_request(
            lane,
            RequestBody::Hello { map_epoch },
            Purpose::Hello { sent_at },
            true,
            ctx,
        );
    }

    fn on_hello_ok(
        &mut self,
        lane: usize,
        sent_at: LocalNs,
        session: SessionId,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        let now = ctx.now();
        let l = &mut self.lanes[lane];
        l.hello_inflight = false;
        l.session = Some(session);
        l.lease.reset_session(sent_at, now);
        let first_service = !l.serving;
        l.serving = true;
        let sid = l.sid;
        if first_service {
            if let Some(obs) = &self.obs {
                obs.phase_resume.inc();
                obs.trace(ctx, "phase", || {
                    format!("active session={} shard={}", session.0, sid.0)
                });
            }
            self.emit(ClientEvent::Resumed { shard: sid.0 }, ctx);
        }
        self.pump_lease(ctx);
        if self.cfg.flush_interval.0 > 0 {
            let token = self.timers.insert(ClientTimer::PeriodicFlush);
            ctx.set_timer(self.cfg.flush_interval, token);
        }
        self.maybe_next_gen_op(ctx);
    }

    /// Whether the op touches state governed by shard `sid`: its resolved
    /// ino, the shard root its path enters through, or (for a cross-shard
    /// rename) either directory. List fan-outs touch every shard.
    fn op_touches_shard(&self, id: OpId, active: &ActiveOp, sid: ServerId) -> bool {
        if let Some(flow) = self.renames.get(&id) {
            return self.map.owner_of(flow.src_dir) == sid
                || self.map.owner_of(flow.dst_dir) == sid;
        }
        if self.list_fanout.contains_key(&id) {
            return true;
        }
        if let Some(ino) = active.ino {
            if self.map.owner_of(ino) == sid {
                return true;
            }
        }
        let first = active.op.path().split('/').find(|p| !p.is_empty());
        let root = match first {
            Some(name) => self.map.root_of(self.map.place_top(name)),
            None => self.map.root_of(ServerId(0)),
        };
        self.map.owner_of(root) == sid
    }

    /// Local failure of ONE lane: its lease expired or its session was
    /// declared dead by that server. Only state governed by that shard is
    /// reset — ops, locks, and cached blocks under the other shards keep
    /// running — and a fresh session is sought from the failed server.
    fn local_expiry(&mut self, lane: usize, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        let sid = self.lanes[lane].sid;
        self.lanes[lane].serving = false;
        // Fail every in-flight op governed by this shard (sorted:
        // deterministic event order).
        let mut op_ids: Vec<OpId> = self
            .ops
            .iter()
            .filter(|(id, a)| self.op_touches_shard(**id, a, sid))
            .map(|(id, _)| *id)
            .collect();
        op_ids.sort();
        for id in op_ids {
            self.complete_op(id, Err(FsErr::LeaseLost), ctx);
        }
        // Abandon outstanding requests and campaigns aimed at this lane.
        let mut seqs: Vec<ReqSeq> = self
            .pending
            .iter()
            .filter(|(_, p)| p.lane == lane)
            .map(|(s, _)| *s)
            .collect();
        seqs.sort();
        for s in seqs {
            self.drop_pending(s, ctx);
        }
        // The unsent coalescing queue dies with the lane's pending set:
        // its purposes reference ops the sweep above already failed.
        if let Some(t) = self.lanes[lane].flush_timer.take() {
            ctx.cancel_timer(t);
        }
        self.lanes[lane].queue.clear();
        self.lanes[lane].hello_inflight = false;
        let map = self.map;
        self.flushes.retain(|_, f| map.owner_of(f.ino) != sid);
        self.pending_san.retain(|_, p| {
            let ino = match p {
                SanOp::OpRead { ino, .. } => *ino,
                SanOp::FlushWrite { ino, .. } => *ino,
            };
            map.owner_of(ino) != sid
        });
        self.parked.retain(|ino, _| map.owner_of(*ino) != sid);
        self.deferred_demands
            .retain(|ino, _| map.owner_of(*ino) != sid);
        let held: Vec<Ino> = self
            .locks
            .keys()
            .copied()
            .filter(|i| map.owner_of(*i) == sid)
            .collect();
        for ino in held {
            self.bump_gen(ino);
            self.locks.remove(&ino);
        }
        self.lazy_retained.retain(|i| map.owner_of(*i) != sid);
        self.lanes[lane].seen_pushes.clear();
        let mut owned: Vec<Ino> = self
            .cache
            .inos()
            .into_iter()
            .filter(|i| map.owner_of(*i) == sid)
            .collect();
        owned.sort();
        let mut discarded = 0;
        for ino in owned {
            discarded += self.cache.dirty_of(ino).len();
            self.cache.invalidate_ino(ino);
        }
        self.name_cache.retain(|_, ino| map.owner_of(*ino) != sid);
        if let Some(obs) = &self.obs {
            obs.phase_invalid.inc();
            obs.lane_expiries.inc();
            obs.discarded_dirty.add(discarded as u64);
            obs.trace(ctx, "phase", || {
                format!("invalid shard={} discarded_dirty={discarded}", sid.0)
            });
        }
        self.emit(
            ClientEvent::CacheInvalidated {
                discarded_dirty: discarded,
            },
            ctx,
        );
        self.lanes[lane].session = None;
        // A primary that let the lease run all the way out locally may be
        // gone for good. If a standby is configured, aim the re-`Hello`
        // there; if the silence was a partition and the old primary still
        // rules, its standby's NotPrimary redirect rotates us back.
        self.rotate_lane(lane, ctx);
        self.send_hello(lane, ctx);
    }

    // ------------------------------------------------------- lease driving

    fn pump_lease(&mut self, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        if !self.cfg.lease_enabled {
            return;
        }
        let now = ctx.now();
        // Each lane's FSM is pumped independently: a shard losing contact
        // quiesces/flushes/invalidates only its own inodes while the other
        // lanes keep caching at full speed.
        for lane in 0..self.lanes.len() {
            let sid = self.lanes[lane].sid;
            for action in self.lanes[lane].lease.poll(now) {
                match action {
                    LeaseAction::SendKeepAlive => {
                        self.send_request(
                            lane,
                            RequestBody::KeepAlive,
                            Purpose::KeepAlive,
                            false,
                            ctx,
                        );
                    }
                    LeaseAction::BeginQuiesce => {
                        self.lanes[lane].serving = false;
                        if let Some(obs) = &self.obs {
                            obs.phase_quiesce.inc();
                            obs.trace(ctx, "phase", || format!("quiescing shard={}", sid.0));
                        }
                        self.emit(ClientEvent::Quiesced { shard: sid.0 }, ctx);
                    }
                    LeaseAction::BeginFlush => {
                        // Phase 4: harden everything dirty under THIS
                        // shard's locks. The control path to this server is
                        // presumed dead, so sizes are not committed — data
                        // reaches disk, which is the §3.2 obligation. Other
                        // shards' dirty data is not touched.
                        let map = self.map;
                        let inos: Vec<Ino> = self
                            .cache
                            .dirty_inos()
                            .into_iter()
                            .filter(|i| map.owner_of(*i) == sid)
                            .collect();
                        if let Some(obs) = &self.obs {
                            obs.phase_flush.inc();
                            obs.trace(ctx, "phase", || {
                                format!("flushing shard={} dirty_inos={}", sid.0, inos.len())
                            });
                        }
                        for ino in inos {
                            self.start_flush(ino, AfterFlush::Nothing, ctx);
                        }
                    }
                    LeaseAction::LeaseExpired => {
                        self.local_expiry(lane, ctx);
                    }
                    LeaseAction::Resume => {
                        // After a post-expiry re-hello the session reset has
                        // already resumed service; only an actual transition
                        // counts as a phase change.
                        if !self.lanes[lane].serving {
                            self.lanes[lane].serving = true;
                            if let Some(obs) = &self.obs {
                                obs.phase_resume.inc();
                                obs.trace(ctx, "phase", || {
                                    format!("active resumed shard={}", sid.0)
                                });
                            }
                            self.emit(ClientEvent::Resumed { shard: sid.0 }, ctx);
                        }
                        self.maybe_next_gen_op(ctx);
                    }
                }
            }
        }
        // Arm the next poll at the earliest wakeup any lane wants.
        let next = self
            .lanes
            .iter()
            .filter_map(|l| l.lease.next_wakeup(now))
            .min();
        if let Some(at) = next {
            let due = at.max(now.plus(LocalNs(1)));
            if self.next_poll_at.is_none_or(|p| due < p || p <= now) {
                self.next_poll_at = Some(due);
                let token = self.timers.insert(ClientTimer::LeasePoll);
                ctx.set_timer(due.minus(now), token);
            }
        }
    }

    // ----------------------------------------------------------- workload

    fn maybe_next_gen_op(&mut self, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        if self.gen_op_queued || self.gen.is_none() {
            return;
        }
        // Closed loop over `gen_concurrency` local processes.
        let in_flight = self.ops.values().filter(|o| o.from_gen).count();
        if in_flight >= self.cfg.gen_concurrency.max(1) {
            return;
        }
        let now = ctx.now();
        let mut gen = self.gen.take().unwrap();
        let next = gen.next_op(ctx.rng(), now);
        self.gen = Some(gen);
        if let Some((think, op)) = next {
            self.queued_gen_op = Some(op);
            self.gen_op_queued = true;
            let token = self.timers.insert(ClientTimer::NextOp);
            ctx.set_timer(think, token);
        }
    }

    /// Deny an op at submission time without entering the op table.
    fn deny_submit(
        &mut self,
        id: OpId,
        kind: &'static str,
        err: FsErr,
        from_gen: bool,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        self.stats.denied += 1;
        self.log_result(id, &Err(err));
        self.emit(
            ClientEvent::OpCompleted {
                op: id,
                kind,
                ok: false,
                err: Some(err),
            },
            ctx,
        );
        if from_gen {
            self.maybe_next_gen_op(ctx);
        }
    }

    /// Submit an operation on behalf of a local process.
    fn submit(&mut self, op: FsOp, from_gen: bool, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        self.stats.submitted += 1;
        let id = OpId(self.next_op_id);
        self.next_op_id += 1;
        let kind = op.kind();
        self.emit(ClientEvent::OpSubmitted { op: id, kind }, ctx);
        if let FsOp::Rename { .. } = &op {
            return self.submit_rename(id, op, from_gen, ctx);
        }
        let parts: Vec<String> = op
            .path()
            .split('/')
            .filter(|p| !p.is_empty())
            .map(str::to_owned)
            .collect();
        // Route by the top-level component: the shard owning that name's
        // dentry governs the whole subtree entered through it. The bare
        // root belongs to shard 0, except a full listing which fans out.
        let root = match parts.first() {
            Some(name) => self.map.root_of(self.map.place_top(name)),
            None => self.map.root_of(ServerId(0)),
        };
        if matches!(op, FsOp::List { .. }) && parts.is_empty() {
            return self.submit_list_fanout(id, op, from_gen, ctx);
        }
        if self.cfg.phase3_gate && !self.lanes[self.lane_of_ino(root)].serving {
            // §3.2 phase 3+ on the governing shard: new file-system
            // requests against it are not serviced. Other shards' ops are
            // unaffected — that is the blast-radius contract. With the
            // gate disabled (negative control) the op is admitted and the
            // checker's coherence audit flags whatever the quiesced cache
            // serves.
            return self.deny_submit(id, kind, FsErr::Suspended, from_gen, ctx);
        }
        let to_parent = matches!(
            op,
            FsOp::Create { .. } | FsOp::Mkdir { .. } | FsOp::Delete { .. }
        );
        let mut active = ActiveOp {
            op,
            state: OpState::MetaWait,
            from_gen,
            ino: None,
        };
        if to_parent && parts.is_empty() {
            // Creating "/" or deleting "/" is invalid.
            self.ops.insert(id, active);
            return self.complete_op(id, Err(FsErr::Invalid), ctx);
        }
        if !to_parent {
            if let Some(&ino) = self.name_cache.get(op_path(&active.op).as_str()) {
                active.state = OpState::MetaWait;
                self.ops.insert(id, active);
                return self.op_resolved(id, ino, ctx);
            }
        }
        let resolve_len = if to_parent {
            parts.len() - 1
        } else {
            parts.len()
        };
        if resolve_len == 0 {
            // Target is the root itself (or a root-level create).
            active.state = OpState::Resolve {
                parts,
                idx: 0,
                cur: root,
                to_parent,
            };
            self.ops.insert(id, active);
            self.op_resolved(id, root, ctx);
        } else {
            active.state = OpState::Resolve {
                parts,
                idx: 0,
                cur: root,
                to_parent,
            };
            self.ops.insert(id, active);
            self.resolve_step(id, ctx);
        }
    }

    /// List the namespace root: every shard owns a slice of the top-level
    /// directory, so a full listing is a fan-out of one ReadDir per shard
    /// root, merged client-side.
    fn submit_list_fanout(
        &mut self,
        id: OpId,
        op: FsOp,
        from_gen: bool,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        let kind = op.kind();
        if !self.lanes.iter().all(|l| l.serving) {
            return self.deny_submit(id, kind, FsErr::Suspended, from_gen, ctx);
        }
        self.ops.insert(
            id,
            ActiveOp {
                op,
                state: OpState::MetaWait,
                from_gen,
                ino: None,
            },
        );
        self.list_fanout.insert(
            id,
            ListFanout {
                waiting: self.lanes.len(),
                entries: Vec::new(),
            },
        );
        for lane in 0..self.lanes.len() {
            let dir = self.map.root_of(self.lanes[lane].sid);
            self.send_request(
                lane,
                RequestBody::ReadDir { dir },
                Purpose::ListShard { op: id },
                true,
                ctx,
            );
        }
    }

    /// Submit a rename. Only top-level single-component files are
    /// renameable (the sharded namespace splits the root directory, so
    /// this is exactly the case where the two dentries can live on
    /// different servers). The client drives it as a two-lock transaction:
    /// Exclusive locks on both shard-root directories taken in ino order
    /// (deadlock-free: roots are `Ino(1+sid)`, so ino order IS ServerId
    /// order), then link at the destination, then unlink at the source.
    fn submit_rename(&mut self, id: OpId, op: FsOp, from_gen: bool, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        let kind = op.kind();
        let FsOp::Rename { from, to } = &op else {
            unreachable!("submit_rename only sees renames")
        };
        let fparts: Vec<&str> = from.split('/').filter(|p| !p.is_empty()).collect();
        let tparts: Vec<&str> = to.split('/').filter(|p| !p.is_empty()).collect();
        if fparts.len() != 1 || tparts.len() != 1 {
            return self.deny_submit(id, kind, FsErr::Invalid, from_gen, ctx);
        }
        let (src_name, dst_name) = (fparts[0].to_owned(), tparts[0].to_owned());
        if src_name == dst_name {
            // Renaming to itself: trivially done.
            self.ops.insert(
                id,
                ActiveOp {
                    op,
                    state: OpState::MetaWait,
                    from_gen,
                    ino: None,
                },
            );
            return self.complete_op(id, Ok(FsData::Unit), ctx);
        }
        let src_dir = self.map.root_of(self.map.place_top(&src_name));
        let dst_dir = self.map.root_of(self.map.place_top(&dst_name));
        if !self.lanes[self.lane_of_ino(src_dir)].serving
            || !self.lanes[self.lane_of_ino(dst_dir)].serving
        {
            return self.deny_submit(id, kind, FsErr::Suspended, from_gen, ctx);
        }
        self.ops.insert(
            id,
            ActiveOp {
                op,
                state: OpState::MetaWait,
                from_gen,
                ino: None,
            },
        );
        self.renames.insert(
            id,
            RenameFlow {
                src_dir,
                dst_dir,
                src_name,
                dst_name,
                ino: None,
                stage: RenameStage::NeedLookup,
            },
        );
        self.rename_advance(id, ctx);
    }

    /// Drive a rename forward: acquire both directory locks (in ino
    /// order), then look up the source entry. Re-entered from
    /// `on_lock_granted` via the parked-op path.
    fn rename_advance(&mut self, id: OpId, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        let Some(flow) = self.renames.get(&id) else {
            return;
        };
        if flow.stage != RenameStage::NeedLookup {
            return; // already past lock acquisition
        }
        let (src_dir, dst_dir, src_name) = (flow.src_dir, flow.dst_dir, flow.src_name.clone());
        let mut dirs = vec![src_dir, dst_dir];
        dirs.sort();
        dirs.dedup();
        for d in dirs {
            let covered = matches!(
                self.locks.get(&d),
                Some(LockEntry::Held(info)) if info.mode.covers(LockMode::Exclusive)
            );
            if !covered {
                // ensure_lock_then parks the op on `d`; the grant kicks it
                // back into run_data_op → rename_advance, which takes the
                // next lock (strictly in order) or proceeds.
                return self.ensure_lock_then(id, d, LockMode::Exclusive, ctx);
            }
        }
        if let Some(flow) = self.renames.get_mut(&id) {
            flow.stage = RenameStage::AwaitLookup;
        }
        let lane = self.lane_of_ino(src_dir);
        self.send_request(
            lane,
            RequestBody::Lookup {
                parent: src_dir,
                name: src_name,
            },
            Purpose::Rename { op: id },
            true,
            ctx,
        );
    }

    fn resolve_step(&mut self, id: OpId, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        let Some(active) = self.ops.get(&id) else {
            return;
        };
        let OpState::Resolve {
            parts,
            idx,
            cur,
            to_parent,
        } = &active.state
        else {
            return;
        };
        let limit = if *to_parent {
            parts.len() - 1
        } else {
            parts.len()
        };
        if *idx >= limit {
            let cur = *cur;
            return self.op_resolved(id, cur, ctx);
        }
        let body = RequestBody::Lookup {
            parent: *cur,
            name: parts[*idx].clone(),
        };
        let lane = self.lane_of_ino(*cur);
        self.send_request(lane, body, Purpose::Resolve { op: id }, true, ctx);
    }

    /// The op's target (or parent, for to_parent ops) is known.
    fn op_resolved(&mut self, id: OpId, ino: Ino, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        let Some(active) = self.ops.get_mut(&id) else {
            return;
        };
        active.ino = Some(ino);
        if !matches!(
            active.op,
            FsOp::Create { .. } | FsOp::Mkdir { .. } | FsOp::Delete { .. }
        ) {
            self.name_cache.insert(op_path_of(&self.ops[&id].op), ino);
        }
        let Some(active) = self.ops.get_mut(&id) else {
            return;
        };
        let lane = self.map.owner_of(ino).0 as usize;
        match &active.op {
            FsOp::Create { path } => {
                let name = last_component(path);
                active.state = OpState::MetaWait;
                self.send_request(
                    lane,
                    RequestBody::Create { parent: ino, name },
                    Purpose::Meta { op: id },
                    true,
                    ctx,
                );
            }
            FsOp::Mkdir { path } => {
                let name = last_component(path);
                active.state = OpState::MetaWait;
                self.send_request(
                    lane,
                    RequestBody::Mkdir { parent: ino, name },
                    Purpose::Meta { op: id },
                    true,
                    ctx,
                );
            }
            FsOp::Delete { path } => {
                let name = last_component(path);
                active.state = OpState::MetaWait;
                self.send_request(
                    lane,
                    RequestBody::Unlink { parent: ino, name },
                    Purpose::Meta { op: id },
                    true,
                    ctx,
                );
            }
            FsOp::Stat { .. } => {
                active.state = OpState::MetaWait;
                self.send_request(
                    lane,
                    RequestBody::GetAttr { ino },
                    Purpose::Meta { op: id },
                    true,
                    ctx,
                );
            }
            FsOp::List { .. } => {
                active.state = OpState::MetaWait;
                self.send_request(
                    lane,
                    RequestBody::ReadDir { dir: ino },
                    Purpose::Meta { op: id },
                    true,
                    ctx,
                );
            }
            FsOp::Rename { .. } => {
                unreachable!("renames never take the resolve path")
            }
            FsOp::Read { offset, len, .. } => {
                if self.cfg.function_ship {
                    let (offset, len) = (*offset, *len);
                    active.state = OpState::MetaWait;
                    self.send_request(
                        lane,
                        RequestBody::ReadData { ino, offset, len },
                        Purpose::Meta { op: id },
                        true,
                        ctx,
                    );
                } else {
                    // Shared-read mode lets N clients serve a hot file
                    // from N caches; disabled, reads contend for the
                    // exclusive lock like writes (the E17 baseline).
                    let mode = if self.cfg.shared_read {
                        LockMode::SharedRead
                    } else {
                        LockMode::Exclusive
                    };
                    self.ensure_lock_then(id, ino, mode, ctx);
                }
            }
            FsOp::Write { offset, data, .. } => {
                if self.cfg.function_ship {
                    let (offset, data) = (*offset, data.clone());
                    active.state = OpState::MetaWait;
                    self.send_request(
                        lane,
                        RequestBody::WriteData { ino, offset, data },
                        Purpose::Meta { op: id },
                        true,
                        ctx,
                    );
                } else {
                    self.ensure_lock_then(id, ino, LockMode::Exclusive, ctx);
                }
            }
            FsOp::Flush { .. } => {
                let dirty = self.cache.dirty_of(ino);
                if dirty.is_empty() {
                    self.finish_flush_commit(ino, Some(id), ctx);
                } else {
                    active.state = OpState::WaitFlush;
                    self.start_flush(ino, AfterFlush::CompleteOp(id), ctx);
                }
            }
            FsOp::Release { .. } => {
                if !matches!(self.locks.get(&ino), Some(LockEntry::Held(_))) {
                    return self.complete_op(id, Ok(FsData::Unit), ctx);
                }
                // Lazy release: absorb the voluntary release locally. The
                // lock stays Held and the cache stays warm, so the op
                // costs zero round trips; a server demand (or the retained
                // set overflowing) later sends the lock back through the
                // eager path. Nothing changes on the wire, so Theorem
                // 3.1's per-message renewal argument is untouched. A
                // deferred demand means the server already wants this
                // ino — hand it over eagerly instead.
                if self.cfg.lazy_release && !self.deferred_demands.contains_key(&ino) {
                    self.retain_release(ino, ctx);
                    return self.complete_op(id, Ok(FsData::Unit), ctx);
                }
                let dirty = self.cache.dirty_of(ino);
                if dirty.is_empty() {
                    self.ops.get_mut(&id).unwrap().state = OpState::WaitFlush;
                    self.commit_then_release(ino, Some(id), ctx);
                } else {
                    self.ops.get_mut(&id).unwrap().state = OpState::WaitFlush;
                    self.start_flush(ino, AfterFlush::Release { complete: Some(id) }, ctx);
                }
            }
        }
    }

    // -------------------------------------------------------------- locks

    /// Record `ino` as lazily retained (most recent last) and evict the
    /// oldest retained locks past the cap through the eager release path
    /// they skipped at absorb time.
    fn retain_release(&mut self, ino: Ino, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        self.lazy_retained.retain(|i| *i != ino);
        self.lazy_retained.push(ino);
        while self.lazy_retained.len() > self.cfg.lazy_release_cap.max(1) {
            let evict = self.lazy_retained.remove(0);
            if matches!(self.locks.get(&evict), Some(LockEntry::Held(_))) {
                if self.cache.dirty_of(evict).is_empty() {
                    self.commit_then_release(evict, None, ctx);
                } else {
                    self.start_flush(evict, AfterFlush::Release { complete: None }, ctx);
                }
            }
        }
    }

    fn ensure_lock_then(
        &mut self,
        id: OpId,
        ino: Ino,
        mode: LockMode,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        match self.locks.get(&ino) {
            Some(LockEntry::Held(info)) if info.mode.covers(mode) => {
                self.run_data_op(id, ino, ctx);
            }
            Some(LockEntry::Held(info)) => {
                // Upgrade needed.
                let need_send = !info.upgrading;
                if let Some(LockEntry::Held(info)) = self.locks.get_mut(&ino) {
                    info.upgrading = true;
                }
                self.park(id, ino, mode);
                if need_send {
                    let gen = self.gen_of(ino);
                    let lane = self.lane_of_ino(ino);
                    self.send_request(
                        lane,
                        RequestBody::LockAcquire {
                            ino,
                            mode: LockMode::Exclusive,
                        },
                        Purpose::Lock { ino, gen },
                        true,
                        ctx,
                    );
                }
            }
            Some(LockEntry::Acquiring) => self.park(id, ino, mode),
            Some(LockEntry::Releasing(_)) => self.park(id, ino, mode),
            None => {
                self.locks.insert(ino, LockEntry::Acquiring);
                self.park(id, ino, mode);
                let gen = self.gen_of(ino);
                let lane = self.lane_of_ino(ino);
                self.send_request(
                    lane,
                    RequestBody::LockAcquire { ino, mode },
                    Purpose::Lock { ino, gen },
                    true,
                    ctx,
                );
            }
        }
    }

    fn park(&mut self, id: OpId, ino: Ino, mode: LockMode) {
        if let Some(a) = self.ops.get_mut(&id) {
            a.state = OpState::WaitLock { mode };
        }
        self.parked.entry(ino).or_default().push(id);
    }

    fn on_lock_granted(
        &mut self,
        ino: Ino,
        mode: LockMode,
        epoch: Epoch,
        blocks: Vec<BlockId>,
        size: u64,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        // A grant landing while we are releasing is from a dead era (the
        // release is already on the wire; the server has executed or will
        // execute it after the grant): installing it would let us write
        // under an epoch the server no longer honours.
        if matches!(self.locks.get(&ino), Some(LockEntry::Releasing(_))) {
            return;
        }
        // Merge with an existing holding of the same epoch (duplicate or
        // reordered grant): the block map and size only ever grow within
        // an epoch, and the write-sequence counter must never reset (tags
        // must stay monotone).
        if let Some(LockEntry::Held(prev)) = self.locks.get_mut(&ino) {
            if prev.epoch == epoch {
                if blocks.len() > prev.blocks.len() {
                    prev.blocks = blocks;
                }
                prev.size = prev.size.max(size);
                prev.mode = mode;
                prev.upgrading = false;
                self.kick_parked(ino, ctx);
                self.satisfy_deferred_demand(ino, ctx);
                return;
            }
        }
        self.locks.insert(
            ino,
            LockEntry::Held(LockInfo {
                mode,
                epoch,
                blocks,
                size,
                committed_size: size,
                upgrading: false,
            }),
        );
        self.kick_parked(ino, ctx);
        self.satisfy_deferred_demand(ino, ctx);
    }

    /// A demand arrived while the lock state was in motion: now that it
    /// settled (grant landed / release confirmed), hand the demanded grant
    /// over — or tell the server it is already gone.
    fn satisfy_deferred_demand(&mut self, ino: Ino, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        let Some(demanded) = self.deferred_demands.remove(&ino) else {
            return;
        };
        match self.locks.get(&ino) {
            Some(LockEntry::Held(_)) => {
                // Hand the holding over (flush first), full teardown.
                if self.cache.dirty_of(ino).is_empty() {
                    self.commit_then_release(ino, None, ctx);
                } else {
                    self.start_flush(ino, AfterFlush::Release { complete: None }, ctx);
                }
            }
            Some(LockEntry::Releasing(info)) if info.epoch == demanded => {}
            Some(LockEntry::Releasing(_)) | Some(LockEntry::Acquiring) => {
                // Still in motion: keep waiting.
                self.deferred_demands.insert(ino, demanded);
            }
            None => {
                let lane = self.lane_of_ino(ino);
                self.send_request(
                    lane,
                    RequestBody::LockRelease {
                        ino,
                        epoch: demanded,
                    },
                    Purpose::ReleaseStale,
                    false,
                    ctx,
                );
            }
        }
    }

    fn kick_parked(&mut self, ino: Ino, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        let Some(ids) = self.parked.remove(&ino) else {
            return;
        };
        let mut still_parked = Vec::new();
        for id in ids {
            let Some(a) = self.ops.get(&id) else { continue };
            let OpState::WaitLock { mode } = a.state else {
                continue;
            };
            match self.locks.get(&ino) {
                Some(LockEntry::Held(info)) if info.mode.covers(mode) => {
                    self.run_data_op(id, ino, ctx);
                }
                Some(LockEntry::Held(info)) => {
                    // Held but not covering: (re)request the upgrade.
                    let need_send = !info.upgrading;
                    if let Some(LockEntry::Held(info)) = self.locks.get_mut(&ino) {
                        info.upgrading = true;
                    }
                    still_parked.push(id);
                    if need_send {
                        let gen = self.gen_of(ino);
                        let lane = self.lane_of_ino(ino);
                        self.send_request(
                            lane,
                            RequestBody::LockAcquire {
                                ino,
                                mode: LockMode::Exclusive,
                            },
                            Purpose::Lock { ino, gen },
                            true,
                            ctx,
                        );
                    }
                }
                Some(LockEntry::Acquiring) | Some(LockEntry::Releasing(_)) => still_parked.push(id),
                None => {
                    // Lock vanished (release/expiry): restart acquisition.
                    self.locks.insert(ino, LockEntry::Acquiring);
                    still_parked.push(id);
                    let gen = self.gen_of(ino);
                    let lane = self.lane_of_ino(ino);
                    self.send_request(
                        lane,
                        RequestBody::LockAcquire { ino, mode },
                        Purpose::Lock { ino, gen },
                        true,
                        ctx,
                    );
                }
            }
        }
        if !still_parked.is_empty() {
            self.parked.entry(ino).or_default().extend(still_parked);
        }
    }

    // ------------------------------------------------------------ data ops

    /// The op holds a covering lock; run its data phase.
    fn run_data_op(&mut self, id: OpId, ino: Ino, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        let Some(active) = self.ops.get(&id) else {
            return;
        };
        match &active.op {
            FsOp::Read { offset, len, .. } => {
                let (offset, len) = (*offset, *len);
                self.run_read(id, ino, offset, len, ctx);
            }
            FsOp::Write { offset, data, .. } => {
                let (offset, dlen) = (*offset, data.len());
                self.run_write_prepare(id, ino, offset, dlen, ctx);
            }
            FsOp::Rename { .. } => {
                // A directory lock the rename was parked on was granted;
                // take the next lock or start the lookup chain.
                self.rename_advance(id, ctx);
            }
            _ => unreachable!("only read/write/rename take the data path"),
        }
    }

    fn run_read(
        &mut self,
        id: OpId,
        ino: Ino,
        offset: u64,
        len: u32,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        let Some(LockEntry::Held(info)) = self.locks.get(&ino) else {
            return self.complete_op(id, Err(FsErr::LeaseLost), ctx);
        };
        let size = info.size;
        let nblocks = info.blocks.len();
        let blocks = info.blocks.clone();
        if offset >= size || len == 0 {
            return self.complete_op(id, Ok(FsData::Bytes(Vec::new())), ctx);
        }
        let end = (offset + len as u64).min(size);
        let bs = self.cfg.block_size as u64;
        let first = (offset / bs) as u32;
        let last = ((end - 1) / bs) as u32;
        let epoch = match self.locks.get(&ino) {
            Some(LockEntry::Held(info)) => info.epoch,
            _ => return self.complete_op(id, Err(FsErr::LeaseLost), ctx),
        };
        let mut waiting = 0;
        let mut fetched: Vec<u32> = Vec::new();
        for idx in first..=last {
            if self.cache.get(ino, idx).is_some() {
                // Already resident: a hit, counted at serve time so the
                // counter matches the `from_cache` events one-for-one.
            } else if (idx as usize) < nblocks {
                waiting += 1;
                fetched.push(idx);
                self.san_read(
                    ino,
                    idx,
                    blocks[idx as usize],
                    SanOp::OpRead {
                        op: id,
                        ino,
                        idx,
                        epoch,
                    },
                    ctx,
                );
            }
        }
        if !fetched.is_empty() {
            self.read_fetched.entry(id).or_default().extend(fetched);
        }
        if waiting == 0 {
            self.finish_read(id, ino, ctx);
        } else if let Some(a) = self.ops.get_mut(&id) {
            a.state = OpState::SanReads {
                waiting,
                then_write: false,
            };
        }
    }

    /// Phase gate for *serving* cached data (DESIGN.md Figure 4): only a
    /// lane in phases 1–2 may serve. Once the lease turns Suspect the
    /// lane stops `serving` and its quiesced cache answers nothing until
    /// recovery — every cached-read serve path must consult this.
    fn cache_usable(&self, ino: Ino) -> bool {
        !self.cfg.phase3_gate || self.lanes[self.lane_of_ino(ino)].serving
    }

    /// Admission gate for *filling* the cache: data may enter only if it
    /// was read under the lock epoch we still hold. A SAN response that
    /// crossed a release/re-grant is a stale snapshot of the block —
    /// every cache fill must consult this.
    fn may_admit(&self, ino: Ino, epoch: Epoch) -> bool {
        matches!(
            self.locks.get(&ino),
            Some(LockEntry::Held(info)) if info.epoch == epoch
        )
    }

    fn finish_read(&mut self, id: OpId, ino: Ino, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        let Some(active) = self.ops.get(&id) else {
            return;
        };
        let FsOp::Read { offset, len, .. } = &active.op else {
            return;
        };
        let (offset, len) = (*offset, *len);
        let Some(LockEntry::Held(info)) = self.locks.get(&ino) else {
            return self.complete_op(id, Err(FsErr::LeaseLost), ctx);
        };
        // Phase-3 serve gate (Figure 4): the lease turned Suspect while
        // this read was in flight — a quiesced cache serves nothing, the
        // op fails exactly as if it had arrived after the gate closed.
        if !self.cache_usable(ino) {
            self.read_fetched.remove(&id);
            return self.complete_op(id, Err(FsErr::Suspended), ctx);
        }
        let size = info.size;
        let nblocks = info.blocks.len();
        let blocks = info.blocks.clone();
        let epoch = info.epoch;
        let bs = self.cfg.block_size as u64;
        let end = (offset + len as u64).min(size);
        let first = (offset / bs) as u32;
        let last = ((end - 1) / bs) as u32;
        // A concurrent read's capacity trim may have evicted a block this
        // op counted on while its SAN fetches were in flight: refetch
        // before serving (zeros here would be silent corruption).
        let mut missing = 0;
        for idx in first..=last {
            if self.cache.get(ino, idx).is_none() && (idx as usize) < nblocks {
                missing += 1;
                self.read_fetched.entry(id).or_default().push(idx);
                self.san_read(
                    ino,
                    idx,
                    blocks[idx as usize],
                    SanOp::OpRead {
                        op: id,
                        ino,
                        idx,
                        epoch,
                    },
                    ctx,
                );
            }
        }
        if missing > 0 {
            if let Some(a) = self.ops.get_mut(&id) {
                a.state = OpState::SanReads {
                    waiting: missing,
                    then_write: false,
                };
            }
            return;
        }
        let fetched = self.read_fetched.remove(&id).unwrap_or_default();
        let mut out = Vec::with_capacity((end - offset) as usize);
        let mut served: Vec<(u32, WriteTag, bool)> = Vec::new();
        for idx in first..=last {
            let bstart = idx as u64 * bs;
            let lo = offset.max(bstart) - bstart;
            let hi = end.min(bstart + bs) - bstart;
            match self.cache.get(ino, idx) {
                Some(b) => {
                    out.extend_from_slice(&b.data[lo as usize..hi as usize]);
                    // From cache iff it was already resident when the read
                    // was admitted (not just fetched on its behalf).
                    served.push((idx, b.tag, !fetched.contains(&idx)));
                }
                None => {
                    // Hole (never-written block): zeros, not cache data.
                    out.extend(std::iter::repeat_n(0u8, (hi - lo) as usize));
                    served.push((idx, WriteTag::default(), false));
                }
            }
        }
        let hits = served.iter().filter(|(_, _, fc)| *fc).count() as u64;
        self.stats.cache_hits += hits;
        if let Some(obs) = &self.obs {
            obs.cache_hits.add(hits);
        }
        for &(idx, _, _) in &served {
            self.cache.touch(ino, idx);
        }
        let evicted = self.cache.trim();
        if evicted > 0 {
            self.stats.cache_evictions += evicted as u64;
            if let Some(obs) = &self.obs {
                obs.cache_evictions.add(evicted as u64);
            }
        }
        for (idx, tag, from_cache) in served {
            self.emit(
                ClientEvent::ReadServed {
                    op: id,
                    ino,
                    idx,
                    tag,
                    from_cache,
                },
                ctx,
            );
        }
        self.complete_op(id, Ok(FsData::Bytes(out)), ctx);
    }

    fn run_write_prepare(
        &mut self,
        id: OpId,
        ino: Ino,
        offset: u64,
        dlen: usize,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        let bs = self.cfg.block_size as u64;
        let end = offset + dlen as u64;
        let needed = end.div_ceil(bs) as usize;
        let Some(LockEntry::Held(info)) = self.locks.get(&ino) else {
            return self.complete_op(id, Err(FsErr::LeaseLost), ctx);
        };
        if needed > info.blocks.len() {
            let count = (needed - info.blocks.len()) as u32;
            if let Some(a) = self.ops.get_mut(&id) {
                a.state = OpState::WaitAlloc;
            }
            let lane = self.lane_of_ino(ino);
            self.send_request(
                lane,
                RequestBody::AllocBlocks { ino, count },
                Purpose::Alloc { op: id, ino },
                true,
                ctx,
            );
            return;
        }
        // Read-modify-write: partial blocks that may hold live data and
        // are not cached must be fetched first.
        let size = info.size;
        let blocks = info.blocks.clone();
        let epoch = info.epoch;
        let first = (offset / bs) as u32;
        let last = ((end - 1) / bs) as u32;
        let mut waiting = 0;
        for idx in first..=last {
            let bstart = idx as u64 * bs;
            let covers_fully = offset <= bstart && end >= bstart + bs;
            let has_live_data = bstart < size && (idx as usize) < blocks.len();
            if !covers_fully && has_live_data && self.cache.get(ino, idx).is_none() {
                waiting += 1;
                self.san_read(
                    ino,
                    idx,
                    blocks[idx as usize],
                    SanOp::OpRead {
                        op: id,
                        ino,
                        idx,
                        epoch,
                    },
                    ctx,
                );
            }
        }
        if waiting == 0 {
            self.apply_write(id, ino, ctx);
        } else if let Some(a) = self.ops.get_mut(&id) {
            a.state = OpState::SanReads {
                waiting,
                then_write: true,
            };
        }
    }

    fn apply_write(&mut self, id: OpId, ino: Ino, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        let Some(active) = self.ops.get(&id) else {
            return;
        };
        let FsOp::Write { offset, data, .. } = &active.op else {
            return;
        };
        let (offset, data) = (*offset, data.clone());
        // §3.2: by phase 4 the flush snapshot is final. An in-flight write
        // completing now would dirty the cache *behind* the flush and be
        // discarded at expiry — refuse it instead of lying to the process.
        if self.cfg.lease_enabled
            && matches!(
                self.lanes[self.lane_of_ino(ino)].lease.phase(ctx.now()),
                Phase::ExpectedFailure | Phase::Expired
            )
        {
            return self.complete_op(id, Err(FsErr::LeaseLost), ctx);
        }
        let me = ctx.node();
        let bs = self.cfg.block_size as u64;
        let end = offset + data.len() as u64;
        let epoch = match self.locks.get(&ino) {
            Some(LockEntry::Held(info)) => info.epoch,
            _ => return self.complete_op(id, Err(FsErr::LeaseLost), ctx),
        };
        let first = (offset / bs) as u32;
        let last = ((end - 1) / bs) as u32;
        let mut acked: Vec<(u32, WriteTag)> = Vec::new();
        for idx in first..=last {
            let bstart = idx as u64 * bs;
            let lo = offset.max(bstart);
            let hi = end.min(bstart + bs);
            // Odd wseq from the client-global counter: still monotone
            // within this lock's epoch, and never equal to any other tag
            // this client's writes produce under any epoch of any shard
            // (server-stamped tags take the even values).
            self.next_wseq += 1;
            let tag = WriteTag {
                writer: me,
                epoch,
                wseq: 2 * self.next_wseq + 1,
            };
            let slice = &data[(lo - offset) as usize..(hi - offset) as usize];
            let covers_fully = lo == bstart && hi == bstart + bs;
            if self.cache.get(ino, idx).is_none() && !covers_fully {
                // Block has no live data (RMW skipped it): surround with
                // zeroes.
                let mut full = vec![0u8; bs as usize];
                full[(lo - bstart) as usize..(hi - bstart) as usize].copy_from_slice(slice);
                self.cache.write(ino, idx, 0, &full, tag);
            } else {
                self.cache
                    .write(ino, idx, (lo - bstart) as usize, slice, tag);
            }
            acked.push((idx, tag));
        }
        let grew = {
            let Some(LockEntry::Held(info)) = self.locks.get_mut(&ino) else {
                return self.complete_op(id, Err(FsErr::LeaseLost), ctx);
            };
            if end > info.size {
                info.size = end;
            }
            info.size > info.committed_size
        };
        for (idx, tag) in acked {
            self.emit(
                ClientEvent::WriteAcked {
                    op: id,
                    ino,
                    idx,
                    tag,
                },
                ctx,
            );
        }
        if grew {
            // Commit size growth eagerly so other clients' views (block
            // map + size) stay fresh; data itself remains write-back.
            let new_size = match self.locks.get(&ino) {
                Some(LockEntry::Held(info)) => info.size,
                _ => end,
            };
            let lane = self.lane_of_ino(ino);
            self.send_request(
                lane,
                RequestBody::CommitWrite { ino, new_size },
                Purpose::Commit { ino },
                true,
                ctx,
            );
        }
        self.complete_op(id, Ok(FsData::Unit), ctx);
    }

    // --------------------------------------------------------------- SAN

    fn san_read(
        &mut self,
        _ino: Ino,
        _idx: u32,
        block: BlockId,
        what: SanOp,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        let req_id = self.next_san_req;
        self.next_san_req += 1;
        self.pending_san.insert(req_id, what);
        self.stats.cache_misses += 1;
        if let Some(obs) = &self.obs {
            obs.cache_misses.inc();
        }
        let disk = self.cfg.disks[stripe_disk(block, self.cfg.disks.len())];
        ctx.send(
            NetId::SAN,
            disk,
            NetMsg::San(SanMsg::ReadBlock { req_id, block }),
        );
    }

    fn start_flush(&mut self, ino: Ino, after: AfterFlush, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        let dirty = self.cache.dirty_of(ino);
        let nblocks = match self.locks.get(&ino) {
            Some(LockEntry::Held(info)) | Some(LockEntry::Releasing(info)) => info.blocks.len(),
            _ => 0,
        };
        let queue: std::collections::VecDeque<_> = dirty
            .into_iter()
            .filter(|(idx, _, _)| (*idx as usize) < nblocks)
            .collect();
        if queue.is_empty() {
            return self.flush_done(ino, after, ctx);
        }
        let campaign = self.next_flush_id;
        self.next_flush_id += 1;
        self.flushes.insert(
            campaign,
            FlushCampaign {
                ino,
                remaining: queue.len(),
                in_flight: 0,
                queue,
                after,
            },
        );
        self.issue_flush_writes(campaign, ctx);
    }

    /// Issue queued flush writes up to the window.
    fn issue_flush_writes(&mut self, campaign: u64, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        let window = self.cfg.flush_window.max(1);
        loop {
            let Some(c) = self.flushes.get_mut(&campaign) else {
                return;
            };
            if c.in_flight >= window {
                return;
            }
            let Some((idx, data, tag)) = c.queue.pop_front() else {
                return;
            };
            let ino = c.ino;
            c.in_flight += 1;
            let block = match self.locks.get(&ino) {
                Some(LockEntry::Held(info)) | Some(LockEntry::Releasing(info)) => {
                    info.blocks.get(idx as usize).copied()
                }
                _ => None,
            };
            let Some(block) = block else {
                // Lock vanished mid-campaign: count the block as done.
                if let Some(c) = self.flushes.get_mut(&campaign) {
                    c.in_flight -= 1;
                    c.remaining -= 1;
                }
                continue;
            };
            let req_id = self.next_san_req;
            self.next_san_req += 1;
            self.pending_san.insert(
                req_id,
                SanOp::FlushWrite {
                    campaign,
                    ino,
                    idx,
                    tag,
                },
            );
            let disk = self.cfg.disks[stripe_disk(block, self.cfg.disks.len())];
            ctx.send(
                NetId::SAN,
                disk,
                NetMsg::San(SanMsg::WriteBlock {
                    req_id,
                    block,
                    data,
                    tag,
                }),
            );
        }
    }

    fn flush_done(&mut self, ino: Ino, after: AfterFlush, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        match after {
            AfterFlush::Nothing => {}
            AfterFlush::CompleteOp(id) => {
                self.finish_flush_commit(ino, Some(id), ctx);
            }
            AfterFlush::Release { complete } => {
                // An in-flight write may have re-dirtied the file behind
                // the campaign's snapshot; flush again until clean, only
                // then release (releasing would discard the dirty data).
                // Without a held lock (or mapped blocks) nothing can be
                // flushed — proceed to the release rather than looping.
                let nblocks = match self.locks.get(&ino) {
                    Some(LockEntry::Held(info)) | Some(LockEntry::Releasing(info)) => {
                        info.blocks.len()
                    }
                    _ => 0,
                };
                let flushable = self
                    .cache
                    .dirty_of(ino)
                    .iter()
                    .any(|(idx, _, _)| (*idx as usize) < nblocks);
                if flushable {
                    self.start_flush(ino, AfterFlush::Release { complete }, ctx);
                } else {
                    self.commit_then_release(ino, complete, ctx);
                }
            }
        }
    }

    /// Commit the size if it grew, then complete the Flush op.
    fn finish_flush_commit(
        &mut self,
        ino: Ino,
        complete: Option<OpId>,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        if let Some(LockEntry::Held(info)) = self.locks.get(&ino) {
            if info.size > info.committed_size {
                let new_size = info.size;
                let lane = self.lane_of_ino(ino);
                self.send_request(
                    lane,
                    RequestBody::CommitWrite { ino, new_size },
                    Purpose::Commit { ino },
                    true,
                    ctx,
                );
            }
        }
        if let Some(id) = complete {
            self.complete_op(id, Ok(FsData::Unit), ctx);
        }
    }

    /// Demand path tail: ensure committed size, then release.
    fn commit_then_release(
        &mut self,
        ino: Ino,
        complete: Option<OpId>,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        // Stash the op to complete on the release reply via Purpose.
        let needs_commit = match self.locks.get(&ino) {
            Some(LockEntry::Held(info)) => info.size > info.committed_size,
            _ => false,
        };
        if needs_commit {
            let new_size = match self.locks.get(&ino) {
                Some(LockEntry::Held(info)) => info.size,
                _ => 0,
            };
            if self.cfg.batch_cap > 1 {
                // Pipelined handover: queue the commit, then let the
                // (urgent) release flush the lane — both travel in ONE
                // batch and the 2-round-trip commit→release chain costs
                // a single round trip. The server executes them in order;
                // if the commit fails, first-error-stops leaves the
                // release unexecuted and the lease machinery recovers.
                let lane = self.lane_of_ino(ino);
                self.send_request(
                    lane,
                    RequestBody::CommitWrite { ino, new_size },
                    Purpose::Commit { ino },
                    true,
                    ctx,
                );
                self.send_release(ino, complete, ctx);
                return;
            }
            self.release_after_commit.insert(ino, complete);
            let lane = self.lane_of_ino(ino);
            self.send_request(
                lane,
                RequestBody::CommitWrite { ino, new_size },
                Purpose::CommitThenRelease { ino },
                true,
                ctx,
            );
        } else {
            self.send_release(ino, complete, ctx);
        }
    }

    fn send_release(&mut self, ino: Ino, complete: Option<OpId>, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        // Final gate: a write may have slipped in during the commit round
        // trip. Releasing with dirty blocks would discard acknowledged
        // data, so flush again first. Once `Releasing` is set below, no
        // further write can apply.
        if !self.cache.dirty_of(ino).is_empty()
            && matches!(self.locks.get(&ino), Some(LockEntry::Held(_)))
        {
            return self.start_flush(ino, AfterFlush::Release { complete }, ctx);
        }
        // Name the exact grant being released so a racing newer grant at
        // the server cannot be torn down by this message. The grant info
        // moves into the Releasing state (still needed for flushing).
        let epoch = match self.locks.get(&ino) {
            Some(LockEntry::Held(info)) | Some(LockEntry::Releasing(info)) => info.epoch,
            _ => Epoch(0),
        };
        match self.locks.get(&ino).cloned() {
            Some(LockEntry::Held(info)) => {
                self.locks.insert(ino, LockEntry::Releasing(info));
            }
            Some(LockEntry::Releasing(_)) => {}
            _ => {
                // Nothing held: nothing to transition; the request below
                // (with its exact epoch) is pure server-side cleanup.
            }
        }
        self.release_completes.insert(ino, complete);
        let lane = self.lane_of_ino(ino);
        self.send_request(
            lane,
            RequestBody::LockRelease { ino, epoch },
            Purpose::Release { ino },
            true,
            ctx,
        );
    }

    fn on_released(&mut self, ino: Ino, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        self.locks.remove(&ino);
        // The release ends this inode's lock era: a still-pending acquire
        // from before it (e.g. a dropped upgrade reply the server later
        // replays from its dedup window) would otherwise pass the
        // `Purpose::Lock` gen guard and reinstate the dead epoch with a
        // reset write-sequence counter — non-monotone tags.
        self.bump_gen(ino);
        self.lazy_retained.retain(|i| *i != ino);
        self.cache.invalidate_ino(ino);
        if let Some(complete) = self.release_completes.remove(&ino).flatten() {
            self.complete_op(complete, Ok(FsData::Unit), ctx);
        }
        // Ops that arrived while releasing re-acquire.
        self.kick_parked(ino, ctx);
    }

    // ------------------------------------------------------------- pushes

    fn on_push(&mut self, from: NodeId, push: ServerPush, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        // Pushes are per-server: ack on (and dedup against) the lane of
        // the server that sent this one.
        let lane = self.lane_of_addr(from).unwrap_or(0);
        // Always ack (stops server retries); handle the body once.
        self.send_request(
            lane,
            RequestBody::PushAck {
                push_seq: push.push_seq,
            },
            Purpose::PushAckSend,
            false,
            ctx,
        );
        if !self.lanes[lane].seen_pushes.insert(push.push_seq) {
            return;
        }
        match push.body {
            PushBody::Demand { ino, epoch, .. } => {
                match self.locks.get(&ino) {
                    Some(LockEntry::Held(_)) => {
                        // Hand our holding over (flush first), with full
                        // local teardown. Even when the demand names a
                        // different grant generation, releasing what we
                        // hold is safe — epoch-qualified releases cannot
                        // hurt a grant that is not ours-as-held.
                        if let Some(obs) = &self.obs {
                            obs.cache_revokes.inc();
                        }
                        let dirty = self.cache.dirty_of(ino);
                        if dirty.is_empty() {
                            self.commit_then_release(ino, None, ctx);
                        } else {
                            self.start_flush(ino, AfterFlush::Release { complete: None }, ctx);
                        }
                    }
                    Some(LockEntry::Releasing(info)) if info.epoch == epoch => {
                        // Already releasing exactly this grant.
                    }
                    Some(LockEntry::Releasing(_)) | Some(LockEntry::Acquiring) => {
                        // The demanded grant is still in motion toward us
                        // (a grant racing this demand, possibly behind a
                        // release of an older grant). Handle it when the
                        // state settles.
                        self.deferred_demands.insert(ino, epoch);
                    }
                    None => {
                        // We hold nothing (e.g. already expired locally):
                        // release exactly the demanded grant so the server
                        // can move on — qualified by its epoch, so this
                        // cannot tear down a newer grant racing toward us.
                        self.send_request(
                            lane,
                            RequestBody::LockRelease { ino, epoch },
                            Purpose::ReleaseStale,
                            false,
                            ctx,
                        );
                    }
                }
            }
            PushBody::Invalidate { ino } => {
                self.cache.invalidate_ino(ino);
            }
        }
    }

    // ------------------------------------------------------------ replies

    fn on_response(&mut self, resp: Response, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        // Detect a server restart before anything else: the incarnation is
        // stamped on every response, so even a NACK for a long-forgotten
        // sequence number tells us the server we knew is gone. Incarnations
        // are tracked per lane — one shard restarting says nothing about
        // the others.
        let Some(lane) = self.pending.get(&resp.seq).map(|p| p.lane) else {
            return;
        };
        let restarted = self.lanes[lane]
            .server_incarnation
            .replace(resp.incarnation)
            .is_some_and(|known| known != resp.incarnation);
        let Some(p) = self.drop_pending(resp.seq, ctx) else {
            return;
        };
        match resp.outcome {
            ResponseOutcome::Acked(result) => {
                // Headroom must be read *before* the ACK extends the lease:
                // it is the margin the old lease still had when renewal
                // landed — the measured slack in Theorem 3.1's ordering.
                let prior_expiry = self.lanes[lane].lease.expiry();
                let now = ctx.now();
                let renewed = self.lanes[lane].lease.on_ack(resp.seq, now);
                if renewed {
                    if let Some(obs) = &self.obs {
                        obs.renewals.inc();
                        // The first ack of a session extends nothing, so
                        // headroom is only defined when a lease was live.
                        if let Some(e) = prior_expiry {
                            let headroom = e.0.saturating_sub(now.0);
                            obs.renewal_headroom_ns.observe(headroom);
                            obs.trace(ctx, "renewal", || format!("headroom_ns={headroom}"));
                        }
                    }
                    self.pump_lease(ctx);
                }
                self.dispatch_reply(p.lane, p.purpose, result, ctx);
            }
            ResponseOutcome::Nacked(reason) => self.on_nack(reason, restarted, p, ctx),
        }
    }

    fn on_nack(
        &mut self,
        reason: NackReason,
        restarted: bool,
        p: PendingReq,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        let lane = p.lane;
        match reason {
            NackReason::LeaseTimingOut => {
                // §3.3: we missed a message; this shard's cache is invalid;
                // enter phase 3 on its lane and prepare for recovery.
                self.lanes[lane].lease.on_nack(ctx.now());
                let was_hello = matches!(p.purpose, Purpose::Hello { .. });
                self.fail_purpose(p.lane, p.purpose, FsErr::Suspended, ctx);
                if was_hello {
                    // The server is still timing us out; try again after
                    // a respectful delay (its timer will fire eventually).
                    let token = self.timers.insert(ClientTimer::HelloRetry(lane));
                    ctx.set_timer(LocalNs::from_millis(500), token);
                }
                self.pump_lease(ctx);
            }
            NackReason::SessionExpired | NackReason::StaleSession if restarted => {
                self.on_server_restart(p, ctx);
            }
            NackReason::SessionExpired | NackReason::StaleSession => {
                // Our session is dead at that server: its locks are stolen.
                // Unless this was the Hello itself, restart the lane with a
                // fresh session.
                if matches!(p.purpose, Purpose::Hello { .. }) {
                    self.lanes[lane].hello_inflight = false;
                    self.send_hello(lane, ctx);
                } else {
                    self.fail_purpose(p.lane, p.purpose, FsErr::LeaseLost, ctx);
                    self.local_expiry(lane, ctx);
                }
            }
            NackReason::Recovering => {
                // The restarted server is inside its grace window. Unlike
                // the NACKs above this does not condemn anything: our lease
                // and cache are still good (the server grants nothing that
                // could conflict until the window closes). The operation
                // just cannot be served yet.
                let was_hello = matches!(p.purpose, Purpose::Hello { .. });
                self.fail_purpose(p.lane, p.purpose, FsErr::Unavailable, ctx);
                if was_hello {
                    let token = self.timers.insert(ClientTimer::HelloRetry(lane));
                    ctx.set_timer(LocalNs::from_millis(500), token);
                }
            }
            NackReason::Misrouted(r) => {
                // A protocol redirect, not a lease judgment: the request
                // reached a server that does not govern its ino (or the
                // shard maps disagree). Nothing cached is condemned — the
                // op just fails back to the process, which can retry once
                // the topology question settles. `NotPrimary` carries a
                // hint: the shard's other address holds the role now, so
                // rotate the lane there before retrying.
                let was_hello = matches!(p.purpose, Purpose::Hello { .. });
                if was_hello {
                    self.lanes[lane].hello_inflight = false;
                }
                let rotated = r == RouteError::NotPrimary && self.rotate_lane(lane, ctx);
                self.fail_purpose(p.lane, p.purpose, FsErr::Unavailable, ctx);
                if was_hello {
                    let token = self.timers.insert(ClientTimer::HelloRetry(lane));
                    ctx.set_timer(LocalNs::from_millis(500), token);
                } else if rotated {
                    // The lane's session died with the old primary;
                    // re-register at the standby so work can resume.
                    self.send_hello(lane, ctx);
                }
            }
        }
    }

    /// The server's incarnation changed under us: it crashed, restarted,
    /// and lost our session and lock state. Our lease is still good and
    /// the restarted server grants nothing that could conflict with us
    /// until its grace window closes, so dirty state is *not* condemned.
    /// A clean client (no locks, nothing dirty) simply re-registers. A
    /// client with holdings takes the normal phase-3/4 walk — quiesce,
    /// flush dirty blocks to the SAN, then tear down and re-`Hello` at its
    /// own expiry — exactly the sequence the grace window was sized to
    /// wait out.
    fn on_server_restart(&mut self, p: PendingReq, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        let lane = p.lane;
        let sid = self.lanes[lane].sid;
        // "Clean" is judged per shard: only locks and dirty blocks this
        // server governs matter for its restart.
        let map = self.map;
        let clean = !self.locks.keys().any(|i| map.owner_of(*i) == sid)
            && !self
                .cache
                .dirty_inos()
                .iter()
                .any(|i| map.owner_of(*i) == sid);
        if clean {
            if matches!(p.purpose, Purpose::Hello { .. }) {
                self.lanes[lane].hello_inflight = false;
                self.send_hello(lane, ctx);
            } else {
                self.fail_purpose(p.lane, p.purpose, FsErr::LeaseLost, ctx);
                self.local_expiry(lane, ctx);
            }
            return;
        }
        self.lanes[lane].lease.on_nack(ctx.now());
        let was_hello = matches!(p.purpose, Purpose::Hello { .. });
        self.fail_purpose(p.lane, p.purpose, FsErr::Suspended, ctx);
        if was_hello {
            let token = self.timers.insert(ClientTimer::HelloRetry(lane));
            ctx.set_timer(LocalNs::from_millis(500), token);
        }
        self.pump_lease(ctx);
    }

    fn fail_purpose(
        &mut self,
        lane: usize,
        purpose: Purpose,
        err: FsErr,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        match purpose {
            Purpose::Resolve { op } | Purpose::Meta { op } | Purpose::Alloc { op, .. } => {
                self.complete_op(op, Err(err), ctx);
            }
            Purpose::Lock { ino, gen } => {
                if gen != self.gen_of(ino) {
                    return; // a dead era's request; already handled
                }
                match self.locks.get_mut(&ino) {
                    Some(LockEntry::Held(info)) => {
                        // A holding exists (established by some other
                        // response); this failed request was at most an
                        // upgrade. The holding — and its dirty cache —
                        // stay; only the waiters give up.
                        info.upgrading = false;
                    }
                    Some(LockEntry::Acquiring) => {
                        // Nothing was ever granted in this era: clear the
                        // placeholder. No data can be cached under it.
                        self.locks.remove(&ino);
                        self.bump_gen(ino);
                        self.cache.invalidate_ino(ino);
                    }
                    _ => {}
                }
                let ids = self.parked.remove(&ino).unwrap_or_default();
                for id in ids {
                    self.complete_op(id, Err(err), ctx);
                }
            }
            Purpose::Release { ino } => {
                // The release was NACKed: its fate at the server is
                // unknown. Keep the Releasing state and the cache — the
                // lease machinery now owns recovery (phase-4 flush still
                // works from the retained grant info; expiry or session
                // reset cleans up).
                let _ = ino;
            }
            Purpose::CommitThenRelease { ino } => {
                let complete = self.release_after_commit.remove(&ino).flatten();
                self.send_release(ino, complete, ctx);
            }
            Purpose::Hello { .. } => {
                self.lanes[lane].hello_inflight = false;
            }
            Purpose::Rename { op } | Purpose::ListShard { op } => {
                // complete_op tears down the rename flow / fan-out state.
                self.complete_op(op, Err(err), ctx);
            }
            Purpose::Batch { elems } => {
                // The whole message failed: every element shares its fate.
                for p in elems {
                    self.fail_purpose(lane, p, err, ctx);
                }
            }
            Purpose::KeepAlive
            | Purpose::Commit { .. }
            | Purpose::PushAckSend
            | Purpose::ReleaseStale => {}
        }
    }

    fn dispatch_reply(
        &mut self,
        lane: usize,
        purpose: Purpose,
        result: Result<ReplyBody, FsError>,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        match purpose {
            Purpose::Hello { sent_at } => {
                if let Ok(ReplyBody::HelloOk { session, .. }) = result {
                    self.on_hello_ok(lane, sent_at, session, ctx);
                } else {
                    self.lanes[lane].hello_inflight = false;
                    self.send_hello(lane, ctx);
                }
            }
            Purpose::KeepAlive | Purpose::PushAckSend => {}
            Purpose::Rename { op } => self.dispatch_rename(op, result, ctx),
            Purpose::ListShard { op } => {
                match result {
                    Ok(ReplyBody::Dir { entries }) => {
                        // The op may already have completed (another
                        // shard's failure): the fan-out is then gone.
                        let Some(f) = self.list_fanout.get_mut(&op) else {
                            return;
                        };
                        f.entries.extend(entries.into_iter().map(|(n, _)| n));
                        f.waiting -= 1;
                        if f.waiting == 0 {
                            let mut all = std::mem::take(&mut f.entries);
                            all.sort();
                            self.complete_op(op, Ok(FsData::Entries(all)), ctx);
                        }
                    }
                    Ok(_) => self.complete_op(op, Err(FsErr::Invalid), ctx),
                    Err(e) => {
                        let e = map_fs_error(e);
                        self.complete_op(op, Err(e), ctx);
                    }
                }
            }
            Purpose::Resolve { op } => match result {
                Ok(ReplyBody::Resolved { ino, attr }) => {
                    let Some(a) = self.ops.get_mut(&op) else {
                        return;
                    };
                    if let OpState::Resolve {
                        idx,
                        cur,
                        parts,
                        to_parent,
                    } = &mut a.state
                    {
                        *cur = ino;
                        *idx += 1;
                        let limit = if *to_parent {
                            parts.len() - 1
                        } else {
                            parts.len()
                        };
                        if *idx >= limit {
                            // Resolution finished. Stat can complete right
                            // here from the lookup's attributes.
                            if matches!(a.op, FsOp::Stat { .. }) {
                                return self.complete_op(
                                    op,
                                    Ok(FsData::Attr {
                                        size: attr.size,
                                        is_dir: attr.is_dir,
                                        version: attr.version,
                                    }),
                                    ctx,
                                );
                            }
                            self.op_resolved(op, ino, ctx);
                        } else {
                            self.resolve_step(op, ctx);
                        }
                    }
                }
                Ok(_) => self.complete_op(op, Err(FsErr::Invalid), ctx),
                Err(e) => {
                    let e = map_fs_error(e);
                    self.complete_op(op, Err(e), ctx);
                }
            },
            Purpose::Meta { op } => {
                let outcome: FsResult = match result {
                    Ok(ReplyBody::Created { .. }) | Ok(ReplyBody::Ok) => Ok(FsData::Unit),
                    Ok(ReplyBody::Attr { attr }) => Ok(FsData::Attr {
                        size: attr.size,
                        is_dir: attr.is_dir,
                        version: attr.version,
                    }),
                    Ok(ReplyBody::Dir { entries }) => Ok(FsData::Entries(
                        entries.into_iter().map(|(n, _)| n).collect(),
                    )),
                    Ok(ReplyBody::Data { data }) => Ok(FsData::Bytes(data)),
                    Ok(_) => Err(FsErr::Invalid),
                    Err(e) => Err(map_fs_error(e)),
                };
                self.complete_op(op, outcome, ctx);
            }
            Purpose::Lock { ino, gen } => {
                if gen != self.gen_of(ino) {
                    // Stale response from a previous lock era (we released
                    // or invalidated since): applying it would reinstate a
                    // dead epoch. If the server actually granted it post-
                    // release, its re-demand will find us holding nothing
                    // and clean up.
                    return;
                }
                match result {
                    Ok(ReplyBody::LockGranted {
                        ino: gino,
                        mode,
                        epoch,
                        blocks,
                        size,
                    }) => {
                        debug_assert_eq!(ino, gino);
                        self.on_lock_granted(ino, mode, epoch, blocks, size, ctx);
                    }
                    Ok(_) | Err(_) => {
                        let err = match result {
                            Err(e) => map_fs_error(e),
                            _ => FsErr::Invalid,
                        };
                        match self.locks.get_mut(&ino) {
                            Some(LockEntry::Held(info)) => {
                                info.upgrading = false;
                            }
                            Some(LockEntry::Acquiring) => {
                                self.locks.remove(&ino);
                                self.bump_gen(ino);
                                self.cache.invalidate_ino(ino);
                            }
                            _ => {}
                        }
                        let ids = self.parked.remove(&ino).unwrap_or_default();
                        for id in ids {
                            self.complete_op(id, Err(err), ctx);
                        }
                    }
                }
            }
            Purpose::Alloc { op, ino } => match result {
                Ok(ReplyBody::Allocated { blocks }) => {
                    // Allocation only grows a file; a shorter map here is
                    // a reordered/stale reply and must not shrink ours
                    // (dirty blocks past the map would become unflushable).
                    if let Some(LockEntry::Held(info)) = self.locks.get_mut(&ino) {
                        if blocks.len() > info.blocks.len() {
                            info.blocks = blocks;
                        }
                    }
                    // Re-run the write: allocation may now suffice.
                    self.run_data_op(op, ino, ctx);
                }
                Ok(_) => self.complete_op(op, Err(FsErr::Invalid), ctx),
                Err(e) => {
                    let e = map_fs_error(e);
                    self.complete_op(op, Err(e), ctx);
                }
            },
            Purpose::Commit { ino } => {
                if result.is_ok() {
                    if let Some(LockEntry::Held(info)) = self.locks.get_mut(&ino) {
                        info.committed_size = info.size.max(info.committed_size);
                    }
                }
            }
            Purpose::CommitThenRelease { ino } => {
                if result.is_ok() {
                    if let Some(LockEntry::Held(info)) = self.locks.get_mut(&ino) {
                        info.committed_size = info.size.max(info.committed_size);
                    }
                }
                let complete = self.release_after_commit.remove(&ino).flatten();
                self.send_release(ino, complete, ctx);
            }
            Purpose::Release { ino } => {
                self.on_released(ino, ctx);
            }
            Purpose::ReleaseStale => {}
            Purpose::Batch { elems } => match result {
                Ok(ReplyBody::Batch(outcomes)) => {
                    // Zip per-element outcomes to their purposes in wire
                    // order. A purpose past the end of the outcomes was
                    // cut off by first-error-stops: it never executed at
                    // the server, so failing it as Unavailable is safe —
                    // the caller may freely re-submit.
                    let mut outcomes = outcomes.into_iter();
                    for p in elems {
                        match outcomes.next() {
                            Some(outcome) => self.dispatch_reply(lane, p, outcome, ctx),
                            None => self.fail_purpose(lane, p, FsErr::Unavailable, ctx),
                        }
                    }
                }
                Ok(_) => {
                    for p in elems {
                        self.fail_purpose(lane, p, FsErr::Invalid, ctx);
                    }
                }
                Err(e) => {
                    let err = map_fs_error(e);
                    for p in elems {
                        self.fail_purpose(lane, p, err, ctx);
                    }
                }
            },
        }
    }

    /// Advance a rename past its server round-trips: lookup → link at the
    /// destination → unlink at the source. Link-before-unlink means any
    /// failure leaves the file reachable under at least one name — the
    /// invariant the cross-shard test checks for.
    fn dispatch_rename(
        &mut self,
        op: OpId,
        result: Result<ReplyBody, FsError>,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        let Some(flow) = self.renames.get(&op) else {
            return; // already aborted (lane expiry, earlier failure)
        };
        let (src_dir, dst_dir) = (flow.src_dir, flow.dst_dir);
        let (src_name, dst_name) = (flow.src_name.clone(), flow.dst_name.clone());
        match (flow.stage, result) {
            (RenameStage::AwaitLookup, Ok(ReplyBody::Resolved { ino, attr })) => {
                if attr.is_dir {
                    // Directory renames would need subtree ownership
                    // reasoning; out of scope for the sharded top level.
                    return self.complete_op(op, Err(FsErr::Invalid), ctx);
                }
                if let Some(flow) = self.renames.get_mut(&op) {
                    flow.ino = Some(ino);
                    flow.stage = RenameStage::AwaitLink;
                }
                let lane = self.lane_of_ino(dst_dir);
                self.send_request(
                    lane,
                    RequestBody::RenameLink {
                        dir: dst_dir,
                        name: dst_name,
                        ino,
                    },
                    Purpose::Rename { op },
                    true,
                    ctx,
                );
            }
            (RenameStage::AwaitLink, Ok(ReplyBody::Ok)) => {
                if let Some(flow) = self.renames.get_mut(&op) {
                    flow.stage = RenameStage::AwaitUnlink;
                }
                let lane = self.lane_of_ino(src_dir);
                self.send_request(
                    lane,
                    RequestBody::RenameUnlink {
                        dir: src_dir,
                        name: src_name,
                    },
                    Purpose::Rename { op },
                    true,
                    ctx,
                );
            }
            (RenameStage::AwaitUnlink, Ok(ReplyBody::Ok)) => {
                // Done. Fix the dentry cache: the old name is gone, the
                // new one points at the moved ino.
                let ino = self.renames.get(&op).and_then(|f| f.ino);
                self.name_cache.remove(&format!("/{src_name}"));
                if let Some(ino) = ino {
                    self.name_cache.insert(format!("/{dst_name}"), ino);
                }
                self.complete_op(op, Ok(FsData::Unit), ctx);
            }
            (_, Ok(_)) => self.complete_op(op, Err(FsErr::Invalid), ctx),
            (_, Err(e)) => {
                let e = map_fs_error(e);
                self.complete_op(op, Err(e), ctx);
            }
        }
    }

    // --------------------------------------------------------- completion

    fn complete_op(&mut self, id: OpId, result: FsResult, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        let Some(active) = self.ops.remove(&id) else {
            return;
        };
        match &active.op {
            FsOp::Delete { path } => {
                self.name_cache.remove(&canonical(path));
            }
            _ => {
                // A NotFound against a cached resolution means the entry
                // went stale (deleted/recreated elsewhere): drop it.
                if matches!(result, Err(FsErr::NotFound)) {
                    self.name_cache.remove(&canonical(active.op.path()));
                }
            }
        }
        // Drop any parked references to this op.
        if let Some(ino) = active.ino {
            if let Some(v) = self.parked.get_mut(&ino) {
                v.retain(|x| *x != id);
            }
        }
        // Tear down rename state: un-park from both directories and hand
        // back the directory locks we took for the transaction. An
        // incomplete flow is an abort (counted) — thanks to
        // link-before-unlink it never strands the file.
        if let Some(flow) = self.renames.remove(&id) {
            if result.is_err() {
                if let Some(obs) = &self.obs {
                    obs.rename_aborts.inc();
                }
            }
            let mut dirs = vec![flow.src_dir, flow.dst_dir];
            dirs.sort();
            dirs.dedup();
            for d in dirs {
                if let Some(v) = self.parked.get_mut(&d) {
                    v.retain(|x| *x != id);
                }
                if matches!(self.locks.get(&d), Some(LockEntry::Held(_))) {
                    self.send_release(d, None, ctx);
                }
            }
        }
        self.list_fanout.remove(&id);
        self.read_fetched.remove(&id);
        let kind = active.op.kind();
        match &result {
            Ok(_) => self.stats.completed += 1,
            Err(_) => self.stats.failed += 1,
        }
        let err = result.as_ref().err().copied();
        self.log_result(id, &result);
        self.emit(
            ClientEvent::OpCompleted {
                op: id,
                kind,
                ok: result.is_ok(),
                err,
            },
            ctx,
        );
        if active.from_gen {
            // Note: gen_op_queued tracks the *queued* (timer-armed) op,
            // which is not this one; only ask for more work.
            self.maybe_next_gen_op(ctx);
        }
    }

    fn on_san_resp(&mut self, san: SanMsg, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        match san {
            SanMsg::ReadResp { req_id, result } => {
                let Some(SanOp::OpRead {
                    op,
                    ino,
                    idx,
                    epoch,
                }) = self.pending_san.remove(&req_id)
                else {
                    return;
                };
                // The lock this read was issued under must still be the
                // one we hold: a response that crossed a release/re-grant
                // is a stale snapshot and must not enter the cache.
                if !self.may_admit(ino, epoch) {
                    return self.complete_op(op, Err(FsErr::LeaseLost), ctx);
                }
                match result {
                    Ok(ok) => {
                        self.cache.fill(ino, idx, ok.data, ok.tag);
                        let Some(a) = self.ops.get_mut(&op) else {
                            return;
                        };
                        if let OpState::SanReads {
                            waiting,
                            then_write,
                        } = &mut a.state
                        {
                            *waiting -= 1;
                            if *waiting == 0 {
                                let then_write = *then_write;
                                if then_write {
                                    self.apply_write(op, ino, ctx);
                                } else {
                                    self.finish_read(op, ino, ctx);
                                }
                            }
                        }
                    }
                    Err(e) => {
                        if e == tank_proto::SanError::Fenced {
                            self.stats.fenced_io += 1;
                        }
                        self.complete_op(op, Err(FsErr::LeaseLost), ctx);
                    }
                }
            }
            SanMsg::WriteResp { req_id, result } => {
                let Some(SanOp::FlushWrite {
                    campaign,
                    ino,
                    idx,
                    tag,
                }) = self.pending_san.remove(&req_id)
                else {
                    return;
                };
                match result {
                    Ok(()) => {
                        self.cache.mark_clean(ino, idx, tag);
                        self.stats.flushed_blocks += 1;
                        if let Some(obs) = &self.obs {
                            obs.writeback_flushes.inc();
                        }
                        // Hardening frees the block for eviction: a cache
                        // over capacity on dirty overflow drains here.
                        let evicted = self.cache.trim();
                        if evicted > 0 {
                            self.stats.cache_evictions += evicted as u64;
                            if let Some(obs) = &self.obs {
                                obs.cache_evictions.add(evicted as u64);
                            }
                        }
                    }
                    Err(e) => {
                        if e == tank_proto::SanError::Fenced {
                            self.stats.fenced_io += 1;
                        }
                        // The block stays dirty; a later flush may retry.
                    }
                }
                let done = {
                    let Some(c) = self.flushes.get_mut(&campaign) else {
                        return;
                    };
                    c.in_flight -= 1;
                    c.remaining -= 1;
                    c.remaining == 0
                };
                if done {
                    let c = self.flushes.remove(&campaign).unwrap();
                    self.flush_done(c.ino, c.after, ctx);
                } else {
                    self.issue_flush_writes(campaign, ctx);
                }
            }
            other => {
                // Protocol anomaly: counted and traced, never printed —
                // normal runs stay silent, exporter runs see it structured.
                if let Some(obs) = &self.obs {
                    obs.unexpected_msgs.inc();
                    obs.trace(ctx, "unexpected", || format!("san {other:?}"));
                }
            }
        }
    }
}

/// Map server-side file-system errors to the local API.
fn map_fs_error(e: FsError) -> FsErr {
    match e {
        FsError::NotFound => FsErr::NotFound,
        FsError::Exists => FsErr::Exists,
        FsError::NoSpace => FsErr::NoSpace,
        FsError::NotLocked | FsError::Invalid => FsErr::Invalid,
        FsError::Unavailable => FsErr::Unavailable,
    }
}

/// Canonical form of a path (strip duplicate slashes) used as the name
/// cache key.
fn canonical(path: &str) -> String {
    let mut s = String::with_capacity(path.len() + 1);
    for part in path.split('/').filter(|p| !p.is_empty()) {
        s.push('/');
        s.push_str(part);
    }
    if s.is_empty() {
        s.push('/');
    }
    s
}

fn op_path(op: &FsOp) -> String {
    canonical(op.path())
}

fn op_path_of(op: &FsOp) -> String {
    canonical(op.path())
}

fn last_component(path: &str) -> String {
    path.split('/')
        .rfind(|p| !p.is_empty())
        .unwrap_or("")
        .to_owned()
}

impl<Ob: 'static> Actor<NetMsg, Ob> for ClientNode<Ob> {
    fn on_start(&mut self, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        self.id = ctx.node();
        // Arm scripted ops. Script times are *delays from client start*
        // measured on the client's own clock (clocks are not offset-
        // synchronized, so absolute local times would be meaningless).
        let steps: Vec<(LocalNs, FsOp)> = self.script.steps.clone();
        for (i, (delay, _)) in steps.iter().enumerate() {
            let token = self.timers.insert(ClientTimer::ScriptOp(i));
            ctx.set_timer(*delay, token);
        }
        for lane in 0..self.lanes.len() {
            self.send_hello(lane, ctx);
        }
    }

    fn on_message(
        &mut self,
        from: NodeId,
        _net: NetId,
        msg: NetMsg,
        ctx: &mut Ctx<'_, NetMsg, Ob>,
    ) {
        match msg {
            NetMsg::Ctl(CtlMsg::Response(resp)) => self.on_response(resp, ctx),
            NetMsg::Ctl(CtlMsg::Push(push)) => self.on_push(from, push, ctx),
            NetMsg::San(san) => self.on_san_resp(san, ctx),
            NetMsg::Ctl(CtlMsg::Request(req)) => {
                // Only servers receive requests; count the anomaly instead
                // of asserting so a confused peer cannot take us down.
                if let Some(obs) = &self.obs {
                    obs.unexpected_msgs.inc();
                    obs.trace(ctx, "unexpected", || {
                        format!("request seq={} from n{}", req.seq.0, req.src.0)
                    });
                }
            }
            NetMsg::Repl(repl) => {
                // Log replication is server-to-server; a client receiving
                // it is a routing anomaly.
                if let Some(obs) = &self.obs {
                    obs.unexpected_msgs.inc();
                    obs.trace(ctx, "unexpected", || format!("repl {}", repl.kind()));
                }
            }
        }
        self.pump_lease(ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        let Some(t) = self.timers.take(token) else {
            return;
        };
        match t {
            ClientTimer::LeasePoll => {
                self.next_poll_at = None;
                self.pump_lease(ctx);
            }
            ClientTimer::ReqRetry(seq) => {
                if self.pending.contains_key(&seq) {
                    self.retransmit(seq, ctx);
                }
            }
            ClientTimer::HelloRetry(lane) => {
                if self.lanes[lane].session.is_none() {
                    self.send_hello(lane, ctx);
                }
            }
            ClientTimer::PeriodicFlush => {
                if self.lanes.iter().any(|l| l.session.is_some()) {
                    for ino in self.cache.dirty_inos() {
                        // Skip files already being flushed.
                        if !self.flushes.values().any(|c| c.ino == ino) {
                            self.start_flush(ino, AfterFlush::Nothing, ctx);
                        }
                    }
                    let token = self.timers.insert(ClientTimer::PeriodicFlush);
                    ctx.set_timer(self.cfg.flush_interval, token);
                }
            }
            ClientTimer::NextOp => {
                if let Some(op) = self.queued_gen_op.take() {
                    self.gen_op_queued = false;
                    self.submit(op, true, ctx);
                    // With spare concurrency, line up the next op now.
                    self.maybe_next_gen_op(ctx);
                } else {
                    self.gen_op_queued = false;
                }
            }
            ClientTimer::ScriptOp(i) => {
                let op = self.script.steps[i].1.clone();
                self.submit(op, false, ctx);
            }
            ClientTimer::BatchFlush(lane) => {
                self.lanes[lane].flush_timer = None;
                self.flush_batch(lane, FLUSH_DELAY, ctx);
            }
        }
        self.pump_lease(ctx);
    }

    fn on_crash(&mut self) {}

    fn on_restart(&mut self, ctx: &mut Ctx<'_, NetMsg, Ob>) {
        // Volatile state is gone: caches, locks, lease, session, pending
        // everything. (The workload generator and script also restart from
        // wherever they were — local processes died with the machine.)
        for lane in self.lanes.iter_mut() {
            lane.lease = ClientLease::new(self.cfg.lease);
            lane.session = None;
            lane.serving = false;
            lane.hello_inflight = false;
            lane.server_incarnation = None;
            lane.seen_pushes.clear();
            lane.queue.clear();
            lane.flush_timer = None;
        }
        self.lazy_retained.clear();
        self.next_seq += 1_000_000; // fresh seq space for the new life
        self.pending.clear();
        let held: Vec<Ino> = self.locks.keys().copied().collect();
        for ino in held {
            self.bump_gen(ino);
        }
        self.locks.clear();
        self.name_cache.clear();
        self.parked.clear();
        self.deferred_demands.clear();
        self.cache.invalidate_all();
        self.ops.clear();
        self.pending_san.clear();
        self.flushes.clear();
        self.renames.clear();
        self.list_fanout.clear();
        self.gen_op_queued = false;
        self.queued_gen_op = None;
        self.next_poll_at = None;
        for lane in 0..self.lanes.len() {
            self.send_hello(lane, ctx);
        }
    }
}
