//! Write-back block cache.
//!
//! Caches whole blocks per inode, tracks dirtiness, and remembers the
//! provenance tag of each cached version so reads served from cache can be
//! audited by the offline checker exactly like reads served from disk.
//!
//! The cache holds at most [`BlockCache::capacity`] blocks; when an insert
//! pushes it past that, [`BlockCache::trim`] evicts **clean** blocks in
//! least-recently-used order. Dirty blocks are never evicted — they are the
//! write-back queue, and only drain by being hardened to the SAN
//! ([`BlockCache::mark_clean`]) or discarded wholesale at lease expiry
//! ([`BlockCache::invalidate_all`]). The coherence contract governing when
//! cached data may be *served* lives one layer up, in the lease FSM — see
//! `CACHING.md` for the phase↔admission table.

use std::collections::{BTreeMap, HashMap};

use tank_proto::{Ino, WriteTag};

/// Lifecycle state of one cached block. `CACHING.md`'s state table mirrors
/// this enum; a doc-contract test diffs the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockState {
    /// Identical to the on-disk copy; may be evicted at any time.
    Clean,
    /// Newer than the on-disk copy; pinned until written back.
    Dirty,
}

impl BlockState {
    /// Every state, for contract tests.
    pub const ALL: [BlockState; 2] = [BlockState::Clean, BlockState::Dirty];

    /// The name `CACHING.md` uses.
    pub fn label(self) -> &'static str {
        match self {
            BlockState::Clean => "Clean",
            BlockState::Dirty => "Dirty",
        }
    }
}

/// One cached block.
#[derive(Debug, Clone)]
pub struct CachedBlock {
    /// Block contents (always a whole block).
    pub data: Vec<u8>,
    /// Tag of the version this data represents.
    pub tag: WriteTag,
    /// Dirty = newer than the on-disk copy; must be written back.
    pub dirty: bool,
    /// Last-use stamp for LRU eviction (monotonic insert/serve counter).
    last_use: u64,
}

impl CachedBlock {
    /// The block's lifecycle state.
    pub fn state(&self) -> BlockState {
        if self.dirty {
            BlockState::Dirty
        } else {
            BlockState::Clean
        }
    }
}

/// Per-client block cache.
///
/// ```
/// use tank_client::cache::BlockCache;
/// use tank_proto::{Ino, WriteTag};
///
/// // Two-block cache: filling a third clean block evicts the coldest.
/// let mut c = BlockCache::with_capacity(8, 2);
/// c.fill(Ino(1), 0, vec![0; 8], WriteTag::default());
/// c.fill(Ino(1), 1, vec![1; 8], WriteTag::default());
/// c.fill(Ino(1), 2, vec![2; 8], WriteTag::default());
/// assert_eq!(c.trim(), 1);                    // block 0 was least recent
/// assert!(c.get(Ino(1), 0).is_none());
/// assert!(c.get(Ino(1), 2).is_some());
/// ```
#[derive(Debug)]
pub struct BlockCache {
    /// ino → (block index → block). BTreeMap so flush order is
    /// deterministic.
    files: HashMap<Ino, BTreeMap<u32, CachedBlock>>,
    block_size: usize,
    /// Total cached blocks (cheap len).
    blocks: usize,
    /// Max blocks retained across files (`usize::MAX` = unbounded;
    /// `0` = retain nothing clean — the "no read cache" baseline).
    capacity: usize,
    /// Monotonic LRU clock.
    tick: u64,
}

impl Default for BlockCache {
    fn default() -> Self {
        BlockCache::new(0)
    }
}

impl BlockCache {
    /// Unbounded cache for blocks of `block_size` bytes.
    pub fn new(block_size: usize) -> Self {
        BlockCache::with_capacity(block_size, usize::MAX)
    }

    /// Cache holding at most `capacity` blocks (clean blocks evict LRU;
    /// dirty blocks may transiently exceed the limit).
    pub fn with_capacity(block_size: usize, capacity: usize) -> Self {
        BlockCache {
            files: HashMap::new(),
            block_size,
            blocks: 0,
            capacity,
            tick: 0,
        }
    }

    /// The configured capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured block size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Total cached blocks.
    pub fn len(&self) -> usize {
        self.blocks
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.blocks == 0
    }

    /// Look up a block.
    pub fn get(&self, ino: Ino, idx: u32) -> Option<&CachedBlock> {
        self.files.get(&ino)?.get(&idx)
    }

    /// Insert a *clean* block (fetched from disk). A no-op when the block
    /// is already cached: while a lock is held, the cached copy is always
    /// at least as new as the disk (only our own flushes change the disk),
    /// and overwriting could clobber dirty data with a stale concurrent
    /// read — a lost update plus a read-your-writes violation.
    pub fn fill(&mut self, ino: Ino, idx: u32, data: Vec<u8>, tag: WriteTag) {
        debug_assert_eq!(data.len(), self.block_size);
        self.tick += 1;
        let stamp = self.tick;
        let file = self.files.entry(ino).or_default();
        if file.contains_key(&idx) {
            return;
        }
        file.insert(
            idx,
            CachedBlock {
                data,
                tag,
                dirty: false,
                last_use: stamp,
            },
        );
        self.blocks += 1;
    }

    /// Refresh a block's LRU stamp (a read was served from it).
    pub fn touch(&mut self, ino: Ino, idx: u32) {
        self.tick += 1;
        let stamp = self.tick;
        if let Some(b) = self.files.get_mut(&ino).and_then(|f| f.get_mut(&idx)) {
            b.last_use = stamp;
        }
    }

    /// Evict least-recently-used **clean** blocks until the cache is back
    /// within capacity; returns how many were dropped. Dirty blocks are
    /// never evicted (they are the write-back queue), so the cache can
    /// transiently exceed capacity while dirty data awaits hardening.
    ///
    /// Callers invoke this *after* a read has been served, never between
    /// the SAN fetch and the serve — at capacity 0 every fetched block
    /// lives exactly long enough to answer its read.
    ///
    /// ```
    /// use tank_client::cache::BlockCache;
    /// use tank_proto::{Ino, WriteTag};
    ///
    /// // Dirty blocks are pinned: even a capacity-0 cache retains them.
    /// let mut c = BlockCache::with_capacity(8, 0);
    /// c.write(Ino(1), 0, 0, &[7; 8], WriteTag::default());
    /// assert_eq!(c.trim(), 0); // nothing evictable
    /// assert_eq!(c.dirty_count(), 1);
    ///
    /// // Hardened to the SAN, the block turns clean — and evictable.
    /// c.mark_clean(Ino(1), 0, WriteTag::default());
    /// assert_eq!(c.trim(), 1);
    /// assert!(c.is_empty());
    /// ```
    pub fn trim(&mut self) -> usize {
        let mut evicted = 0;
        while self.blocks > self.capacity {
            // Coldest clean block across all files.
            let victim = self
                .files
                .iter()
                .flat_map(|(ino, f)| {
                    f.iter()
                        .filter(|(_, b)| !b.dirty)
                        .map(move |(idx, b)| (b.last_use, *ino, *idx))
                })
                .min();
            let Some((_, ino, idx)) = victim else {
                break; // everything left is dirty
            };
            if let Some(f) = self.files.get_mut(&ino) {
                f.remove(&idx);
                self.blocks -= 1;
                evicted += 1;
                if f.is_empty() {
                    self.files.remove(&ino);
                }
            }
        }
        evicted
    }

    /// Write `data` at `offset` within block `idx`, marking it dirty with
    /// `tag`. The block must already be cached (callers read-modify-write
    /// uncached partial blocks) unless the write covers the whole block.
    pub fn write(&mut self, ino: Ino, idx: u32, offset: usize, data: &[u8], tag: WriteTag) {
        debug_assert!(offset + data.len() <= self.block_size);
        self.tick += 1;
        let stamp = self.tick;
        let file = self.files.entry(ino).or_default();
        match file.get_mut(&idx) {
            Some(b) => {
                b.data[offset..offset + data.len()].copy_from_slice(data);
                b.tag = tag;
                b.dirty = true;
                b.last_use = stamp;
            }
            None => {
                assert!(
                    offset == 0 && data.len() == self.block_size,
                    "partial write to uncached block {ino}/{idx}: read-modify-write required"
                );
                file.insert(
                    idx,
                    CachedBlock {
                        data: data.to_vec(),
                        tag,
                        dirty: true,
                        last_use: stamp,
                    },
                );
                self.blocks += 1;
            }
        }
    }

    /// Dirty blocks of one inode, in index order.
    pub fn dirty_of(&self, ino: Ino) -> Vec<(u32, Vec<u8>, WriteTag)> {
        self.files
            .get(&ino)
            .map(|file| {
                file.iter()
                    .filter(|(_, b)| b.dirty)
                    .map(|(idx, b)| (*idx, b.data.clone(), b.tag))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All inodes with any cached block (dirty or clean), sorted.
    pub fn inos(&self) -> Vec<Ino> {
        let mut v: Vec<Ino> = self.files.keys().copied().collect();
        v.sort();
        v
    }

    /// All inodes that currently have dirty blocks.
    pub fn dirty_inos(&self) -> Vec<Ino> {
        let mut v: Vec<Ino> = self
            .files
            .iter()
            .filter(|(_, file)| file.values().any(|b| b.dirty))
            .map(|(ino, _)| *ino)
            .collect();
        v.sort();
        v
    }

    /// Count of dirty blocks across all files.
    pub fn dirty_count(&self) -> usize {
        self.files
            .values()
            .flat_map(|f| f.values())
            .filter(|b| b.dirty)
            .count()
    }

    /// Mark a block clean after its write-back was acknowledged by the
    /// disk — but only if the tag still matches (the block may have been
    /// re-dirtied by a newer local write while the flush was in flight).
    pub fn mark_clean(&mut self, ino: Ino, idx: u32, tag: WriteTag) {
        if let Some(b) = self.files.get_mut(&ino).and_then(|f| f.get_mut(&idx)) {
            if b.tag == tag {
                b.dirty = false;
            }
        }
    }

    /// Drop every cached block of one inode (e.g. after releasing its
    /// lock). Dirty data is discarded — callers flush first.
    pub fn invalidate_ino(&mut self, ino: Ino) -> usize {
        match self.files.remove(&ino) {
            Some(file) => {
                self.blocks -= file.len();
                file.len()
            }
            None => 0,
        }
    }

    /// Drop everything (lease expiry). Returns how many dirty blocks were
    /// discarded — in a correct run that flushed first, zero.
    pub fn invalidate_all(&mut self) -> usize {
        let dirty = self.dirty_count();
        self.files.clear();
        self.blocks = 0;
        dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tank_proto::{Epoch, NodeId};

    const F: Ino = Ino(1);

    fn tag(wseq: u64) -> WriteTag {
        WriteTag {
            writer: NodeId(1),
            epoch: Epoch(1),
            wseq,
        }
    }

    fn cache() -> BlockCache {
        BlockCache::new(8)
    }

    #[test]
    fn fill_never_clobbers_an_existing_block() {
        let mut c = cache();
        c.write(F, 0, 0, &[9; 8], tag(5)); // dirty, newest
                                           // A concurrent read's stale disk data arrives late:
        c.fill(F, 0, vec![1; 8], tag(1));
        let b = c.get(F, 0).unwrap();
        assert!(b.dirty, "dirty data survives");
        assert_eq!(b.data, vec![9; 8]);
        assert_eq!(b.tag, tag(5));
        // Clean blocks are also kept (they are as new as the disk).
        let mut c = cache();
        c.fill(F, 1, vec![2; 8], tag(2));
        c.fill(F, 1, vec![3; 8], tag(3));
        assert_eq!(c.get(F, 1).unwrap().tag, tag(2));
    }

    #[test]
    fn fill_then_get_is_clean() {
        let mut c = cache();
        c.fill(F, 0, vec![1; 8], tag(1));
        let b = c.get(F, 0).unwrap();
        assert!(!b.dirty);
        assert_eq!(b.data, vec![1; 8]);
        assert_eq!(c.len(), 1);
        assert!(c.dirty_inos().is_empty());
    }

    #[test]
    fn write_marks_dirty_and_updates_tag() {
        let mut c = cache();
        c.fill(F, 0, vec![0; 8], tag(1));
        c.write(F, 0, 2, &[7, 7], tag(2));
        let b = c.get(F, 0).unwrap();
        assert!(b.dirty);
        assert_eq!(b.data, vec![0, 0, 7, 7, 0, 0, 0, 0]);
        assert_eq!(b.tag, tag(2));
        assert_eq!(c.dirty_of(F).len(), 1);
    }

    #[test]
    fn whole_block_write_to_uncached_is_allowed() {
        let mut c = cache();
        c.write(F, 3, 0, &[9; 8], tag(1));
        assert!(c.get(F, 3).unwrap().dirty);
    }

    #[test]
    #[should_panic(expected = "read-modify-write required")]
    fn partial_write_to_uncached_panics() {
        let mut c = cache();
        c.write(F, 0, 2, &[1, 2], tag(1));
    }

    #[test]
    fn mark_clean_respects_tag_races() {
        let mut c = cache();
        c.write(F, 0, 0, &[1; 8], tag(1));
        // A newer local write lands while the flush of tag(1) is in
        // flight...
        c.write(F, 0, 0, &[2; 8], tag(2));
        // ...so the flush completion for tag(1) must NOT clean the block.
        c.mark_clean(F, 0, tag(1));
        assert!(c.get(F, 0).unwrap().dirty, "newer dirty data must survive");
        c.mark_clean(F, 0, tag(2));
        assert!(!c.get(F, 0).unwrap().dirty);
    }

    #[test]
    fn dirty_tracking_across_files() {
        let mut c = cache();
        c.write(Ino(1), 0, 0, &[1; 8], tag(1));
        c.fill(Ino(2), 0, vec![0; 8], tag(2));
        c.write(Ino(3), 0, 0, &[3; 8], tag(3));
        assert_eq!(c.dirty_inos(), vec![Ino(1), Ino(3)]);
        assert_eq!(c.dirty_count(), 2);
    }

    #[test]
    fn invalidate_ino_and_all() {
        let mut c = cache();
        c.write(Ino(1), 0, 0, &[1; 8], tag(1));
        c.fill(Ino(2), 0, vec![0; 8], tag(2));
        assert_eq!(c.invalidate_ino(Ino(1)), 1);
        assert_eq!(c.len(), 1);
        c.write(Ino(2), 1, 0, &[5; 8], tag(3));
        assert_eq!(c.invalidate_all(), 1, "one dirty block discarded");
        assert!(c.is_empty());
    }

    #[test]
    fn trim_evicts_lru_clean_blocks_only() {
        let mut c = BlockCache::with_capacity(8, 2);
        c.fill(F, 0, vec![0; 8], tag(1));
        c.fill(F, 1, vec![1; 8], tag(2));
        c.fill(F, 2, vec![2; 8], tag(3));
        // Re-use block 0 so block 1 becomes the coldest.
        c.touch(F, 0);
        assert_eq!(c.trim(), 1);
        assert!(c.get(F, 1).is_none(), "coldest clean block evicted");
        assert!(c.get(F, 0).is_some());
        assert!(c.get(F, 2).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn trim_never_evicts_dirty_blocks() {
        let mut c = BlockCache::with_capacity(8, 1);
        c.write(F, 0, 0, &[9; 8], tag(1));
        c.write(F, 1, 0, &[9; 8], tag(2));
        assert_eq!(c.trim(), 0, "dirty write-back data is pinned");
        assert_eq!(c.len(), 2, "cache may overflow with dirty data");
        c.mark_clean(F, 0, tag(1));
        assert_eq!(c.trim(), 1, "hardened block becomes evictable");
        assert!(c.get(F, 1).unwrap().dirty);
    }

    #[test]
    fn capacity_zero_retains_nothing_clean() {
        let mut c = BlockCache::with_capacity(8, 0);
        c.fill(F, 0, vec![1; 8], tag(1));
        assert!(c.get(F, 0).is_some(), "retained until the read is served");
        assert_eq!(c.trim(), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn block_state_tracks_dirtiness() {
        let mut c = cache();
        c.fill(F, 0, vec![1; 8], tag(1));
        assert_eq!(c.get(F, 0).unwrap().state(), BlockState::Clean);
        c.write(F, 0, 0, &[2; 8], tag(2));
        assert_eq!(c.get(F, 0).unwrap().state(), BlockState::Dirty);
        c.mark_clean(F, 0, tag(2));
        assert_eq!(c.get(F, 0).unwrap().state(), BlockState::Clean);
    }

    #[test]
    fn dirty_of_is_in_index_order() {
        let mut c = cache();
        c.write(F, 5, 0, &[5; 8], tag(5));
        c.write(F, 1, 0, &[1; 8], tag(1));
        c.write(F, 3, 0, &[3; 8], tag(3));
        let idxs: Vec<u32> = c.dirty_of(F).iter().map(|(i, _, _)| *i).collect();
        assert_eq!(idxs, vec![1, 3, 5]);
    }
}
