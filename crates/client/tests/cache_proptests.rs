//! Model-based property test of the write-back cache.

use proptest::prelude::*;
use std::collections::HashMap;
use tank_client::BlockCache;
use tank_proto::{Epoch, Ino, NodeId, WriteTag};

#[derive(Debug, Clone)]
enum Op {
    /// Whole-block dirty write.
    Write { ino: u64, idx: u32, fill: u8 },
    /// Clean fill from "disk" (must never clobber).
    Fill { ino: u64, idx: u32, fill: u8 },
    /// Flush completion for the block's current tag.
    MarkCleanCurrent { ino: u64, idx: u32 },
    /// Flush completion with a stale tag (must not clean).
    MarkCleanStale { ino: u64, idx: u32 },
    /// Drop one file.
    InvalidateIno { ino: u64 },
    /// Drop everything.
    InvalidateAll,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..4, 0u32..6, any::<u8>()).prop_map(|(ino, idx, fill)| Op::Write { ino, idx, fill }),
        (0u64..4, 0u32..6, any::<u8>()).prop_map(|(ino, idx, fill)| Op::Fill { ino, idx, fill }),
        (0u64..4, 0u32..6).prop_map(|(ino, idx)| Op::MarkCleanCurrent { ino, idx }),
        (0u64..4, 0u32..6).prop_map(|(ino, idx)| Op::MarkCleanStale { ino, idx }),
        (0u64..4).prop_map(|ino| Op::InvalidateIno { ino }),
        Just(Op::InvalidateAll),
    ]
}

#[derive(Debug, Clone, PartialEq)]
struct ModelBlock {
    data: Vec<u8>,
    tag: WriteTag,
    dirty: bool,
}

proptest! {
    /// The cache agrees with a straightforward model under arbitrary op
    /// interleavings: contents/tags/dirtiness match exactly, fills never
    /// clobber, stale clean-marks never clean, and the dirty accounting is
    /// exact.
    #[test]
    fn cache_matches_model(ops in proptest::collection::vec(arb_op(), 1..200)) {
        const BS: usize = 8;
        let mut cache = BlockCache::new(BS);
        let mut model: HashMap<(u64, u32), ModelBlock> = HashMap::new();
        let mut wseq = 0u64;

        for op in ops {
            match op {
                Op::Write { ino, idx, fill } => {
                    wseq += 1;
                    let tag = WriteTag { writer: NodeId(1), epoch: Epoch(1), wseq };
                    cache.write(Ino(ino), idx, 0, &[fill; BS], tag);
                    model.insert((ino, idx), ModelBlock { data: vec![fill; BS], tag, dirty: true });
                }
                Op::Fill { ino, idx, fill } => {
                    wseq += 1;
                    let tag = WriteTag { writer: NodeId(9), epoch: Epoch(1), wseq };
                    cache.fill(Ino(ino), idx, vec![fill; BS], tag);
                    model.entry((ino, idx)).or_insert(ModelBlock {
                        data: vec![fill; BS],
                        tag,
                        dirty: false,
                    });
                }
                Op::MarkCleanCurrent { ino, idx } => {
                    if let Some(b) = model.get_mut(&(ino, idx)) {
                        cache.mark_clean(Ino(ino), idx, b.tag);
                        b.dirty = false;
                    }
                }
                Op::MarkCleanStale { ino, idx } => {
                    let stale = WriteTag { writer: NodeId(1), epoch: Epoch(0), wseq: 0 };
                    cache.mark_clean(Ino(ino), idx, stale);
                    // Model: unchanged (tag can never match a live block's
                    // tag because wseq starts at 1).
                }
                Op::InvalidateIno { ino } => {
                    cache.invalidate_ino(Ino(ino));
                    model.retain(|(i, _), _| *i != ino);
                }
                Op::InvalidateAll => {
                    cache.invalidate_all();
                    model.clear();
                }
            }

            // Full-state comparison.
            prop_assert_eq!(cache.len(), model.len());
            let model_dirty = model.values().filter(|b| b.dirty).count();
            prop_assert_eq!(cache.dirty_count(), model_dirty);
            for ((ino, idx), mb) in &model {
                let cb = cache.get(Ino(*ino), *idx).expect("model block present");
                prop_assert_eq!(&cb.data, &mb.data);
                prop_assert_eq!(cb.tag, mb.tag);
                prop_assert_eq!(cb.dirty, mb.dirty);
            }
        }
    }
}
