//! End-to-end protocol smoke tests: one server, disks, clients, all real
//! actors in a deterministic world.

use tank_client::fs::Script;
use tank_client::{ClientConfig, ClientNode, FsData, FsErr, FsOp};
use tank_core::LeaseConfig;
use tank_proto::{NetMsg, NodeId, OpId};
use tank_server::{ServerConfig, ServerNode};
use tank_sim::{ClockSpec, LocalNs, NetId, NetParams, SimTime, World, WorldConfig};
use tank_storage::{DiskConfig, DiskNode};

const BS: usize = 512;

struct Rig {
    world: World<NetMsg>,
    server: NodeId,
    clients: Vec<NodeId>,
}

/// Build a world: 2 disks, 1 server, `nclients` clients with the given
/// scripts.
fn rig(scripts: Vec<Script>, lease: LeaseConfig) -> Rig {
    let mut world: World<NetMsg> = World::new(WorldConfig {
        seed: 42,
        record_trace: false,
        record_causal: false,
    });
    world.add_network(NetId::CONTROL, NetParams::ideal(200_000)); // 0.2ms
    world.add_network(NetId::SAN, NetParams::ideal(100_000)); // 0.1ms
    let d0 = world.add_node(
        Box::new(DiskNode::<()>::unobserved(DiskConfig {
            blocks: 4096,
            block_size: BS,
        })),
        ClockSpec::ideal(),
    );
    let d1 = world.add_node(
        Box::new(DiskNode::<()>::unobserved(DiskConfig {
            blocks: 4096,
            block_size: BS,
        })),
        ClockSpec::ideal(),
    );
    let mut scfg = ServerConfig::default();
    scfg.lease = lease;
    scfg.disks = vec![d0, d1];
    let server = world.add_node(
        Box::new(ServerNode::<()>::unobserved(scfg, 4096, BS)),
        ClockSpec::ideal(),
    );
    let mut clients = Vec::new();
    for script in scripts {
        let mut ccfg = ClientConfig::new(server, vec![d0, d1]);
        ccfg.lease = lease;
        ccfg.block_size = BS;
        let node = ClientNode::<()>::unobserved(ccfg).with_script(script);
        clients.push(world.add_node(Box::new(node), ClockSpec::ideal()));
    }
    Rig {
        world,
        server,
        clients,
    }
}

fn results_of(rig: &Rig, client: usize) -> Vec<(OpId, Result<FsData, FsErr>)> {
    rig.world
        .node_ref::<ClientNode<()>>(rig.clients[client])
        .unwrap()
        .results()
        .cloned()
        .collect()
}

fn ms(x: u64) -> LocalNs {
    LocalNs::from_millis(x)
}

#[test]
fn create_write_read_roundtrip_on_one_client() {
    let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
    let script = Script::new()
        .at(ms(10), FsOp::Create { path: "/f".into() })
        .at(
            ms(50),
            FsOp::Write {
                path: "/f".into(),
                offset: 0,
                data: data.clone(),
            },
        )
        .at(
            ms(100),
            FsOp::Read {
                path: "/f".into(),
                offset: 0,
                len: 1000,
            },
        )
        .at(ms(150), FsOp::Stat { path: "/f".into() });
    let mut r = rig(vec![script], LeaseConfig::default());
    r.world.run_until(SimTime::from_secs(1));
    let res = results_of(&r, 0);
    assert_eq!(res.len(), 4, "all four ops completed: {res:?}");
    assert_eq!(res[0].1, Ok(FsData::Unit), "create");
    assert_eq!(res[1].1, Ok(FsData::Unit), "write (into cache)");
    assert_eq!(
        res[2].1,
        Ok(FsData::Bytes(data)),
        "read returns written bytes"
    );
    match &res[3].1 {
        Ok(FsData::Attr { size, is_dir, .. }) => {
            assert_eq!(*size, 1000, "size committed eagerly");
            assert!(!is_dir);
        }
        other => panic!("stat: {other:?}"),
    }
}

#[test]
fn read_across_clients_after_flush_and_release() {
    // C0 creates and writes; C1 reads after C0 releases. The read must see
    // C0's bytes (fetched from the shared disk, not C1's empty cache).
    let payload = vec![7u8; 2 * BS];
    let s0 = Script::new()
        .at(
            ms(10),
            FsOp::Create {
                path: "/shared".into(),
            },
        )
        .at(
            ms(50),
            FsOp::Write {
                path: "/shared".into(),
                offset: 0,
                data: payload.clone(),
            },
        )
        .at(
            ms(100),
            FsOp::Release {
                path: "/shared".into(),
            },
        );
    let s1 = Script::new().at(
        ms(300),
        FsOp::Read {
            path: "/shared".into(),
            offset: 0,
            len: (2 * BS) as u32,
        },
    );
    let mut r = rig(vec![s0, s1], LeaseConfig::default());
    r.world.run_until(SimTime::from_secs(1));
    let res1 = results_of(&r, 1);
    assert_eq!(res1.len(), 1);
    assert_eq!(res1[0].1, Ok(FsData::Bytes(payload)));
}

#[test]
fn demand_revocation_moves_exclusive_lock_between_live_clients() {
    // C0 writes and holds the lock; C1 writes the same file. The server
    // demands from C0, C0 flushes + releases, C1 proceeds. Then C0 reads
    // back and must see C1's data (its own cache was invalidated on
    // release).
    let a = vec![1u8; BS];
    let b = vec![2u8; BS];
    let s0 = Script::new()
        .at(ms(10), FsOp::Create { path: "/f".into() })
        .at(
            ms(50),
            FsOp::Write {
                path: "/f".into(),
                offset: 0,
                data: a,
            },
        )
        .at(
            ms(900),
            FsOp::Read {
                path: "/f".into(),
                offset: 0,
                len: BS as u32,
            },
        );
    let s1 = Script::new().at(
        ms(200),
        FsOp::Write {
            path: "/f".into(),
            offset: 0,
            data: b.clone(),
        },
    );
    let mut r = rig(vec![s0, s1], LeaseConfig::default());
    r.world.run_until(SimTime::from_secs(2));
    let res0 = results_of(&r, 0);
    let res1 = results_of(&r, 1);
    assert_eq!(res1.len(), 1, "C1's write completed: {res1:?}");
    assert!(res1[0].1.is_ok());
    assert_eq!(res0.len(), 3, "C0 ops: {res0:?}");
    assert_eq!(
        res0[2].1,
        Ok(FsData::Bytes(b)),
        "C0 sees C1's bytes after revocation"
    );
}

#[test]
fn shared_readers_coexist() {
    let s0 = Script::new()
        .at(ms(10), FsOp::Create { path: "/f".into() })
        .at(
            ms(20),
            FsOp::Write {
                path: "/f".into(),
                offset: 0,
                data: vec![9u8; BS],
            },
        )
        .at(ms(60), FsOp::Release { path: "/f".into() })
        .at(
            ms(200),
            FsOp::Read {
                path: "/f".into(),
                offset: 0,
                len: 16,
            },
        );
    let s1 = Script::new().at(
        ms(210),
        FsOp::Read {
            path: "/f".into(),
            offset: 0,
            len: 16,
        },
    );
    let mut r = rig(vec![s0, s1], LeaseConfig::default());
    r.world.run_until(SimTime::from_secs(1));
    assert_eq!(
        results_of(&r, 0).last().unwrap().1,
        Ok(FsData::Bytes(vec![9u8; 16]))
    );
    assert_eq!(results_of(&r, 1)[0].1, Ok(FsData::Bytes(vec![9u8; 16])));
    // Both ended holding shared locks; server sees no waiters.
    let srv = r.world.node_ref::<ServerNode<()>>(r.server).unwrap();
    assert_eq!(srv.locks().waiting(), 0);
}

#[test]
fn metadata_operations_roundtrip() {
    let s0 = Script::new()
        .at(ms(10), FsOp::Mkdir { path: "/d".into() })
        .at(
            ms(20),
            FsOp::Create {
                path: "/d/x".into(),
            },
        )
        .at(
            ms(30),
            FsOp::Create {
                path: "/d/y".into(),
            },
        )
        .at(ms(40), FsOp::List { path: "/d".into() })
        .at(
            ms(50),
            FsOp::Delete {
                path: "/d/x".into(),
            },
        )
        .at(ms(60), FsOp::List { path: "/d".into() })
        .at(ms(70), FsOp::Stat { path: "/d".into() })
        .at(
            ms(80),
            FsOp::Delete {
                path: "/nope".into(),
            },
        );
    let mut r = rig(vec![s0], LeaseConfig::default());
    r.world.run_until(SimTime::from_secs(1));
    let res = results_of(&r, 0);
    assert_eq!(res.len(), 8);
    assert_eq!(res[3].1, Ok(FsData::Entries(vec!["x".into(), "y".into()])));
    assert_eq!(res[5].1, Ok(FsData::Entries(vec!["y".into()])));
    match &res[6].1 {
        Ok(FsData::Attr { is_dir, .. }) => assert!(is_dir),
        other => panic!("{other:?}"),
    }
    assert_eq!(res[7].1, Err(FsErr::NotFound));
}

#[test]
fn sub_block_rmw_write_preserves_surrounding_bytes() {
    // Write a full block, release (hardened), then on a fresh lock write 4
    // bytes in the middle: the client must RMW from disk.
    let mut expect = vec![5u8; BS];
    expect[100..104].copy_from_slice(&[9, 9, 9, 9]);
    let s0 = Script::new()
        .at(ms(10), FsOp::Create { path: "/f".into() })
        .at(
            ms(20),
            FsOp::Write {
                path: "/f".into(),
                offset: 0,
                data: vec![5u8; BS],
            },
        )
        .at(ms(60), FsOp::Release { path: "/f".into() })
        .at(
            ms(100),
            FsOp::Write {
                path: "/f".into(),
                offset: 100,
                data: vec![9u8; 4],
            },
        )
        .at(
            ms(150),
            FsOp::Read {
                path: "/f".into(),
                offset: 0,
                len: BS as u32,
            },
        );
    let mut r = rig(vec![s0], LeaseConfig::default());
    r.world.run_until(SimTime::from_secs(1));
    let res = results_of(&r, 0);
    assert_eq!(res[4].1, Ok(FsData::Bytes(expect)));
}

#[test]
fn keepalives_preserve_idle_client_lease() {
    // An idle client (no ops after 100ms) must stay in good standing via
    // keep-alives: after several lease periods its lease is still valid
    // and a late op succeeds.
    let lease = LeaseConfig::with_tau(LocalNs::from_secs(2));
    let s0 = Script::new()
        .at(ms(10), FsOp::Create { path: "/f".into() })
        .at(ms(9_000), FsOp::Stat { path: "/f".into() });
    let mut r = rig(vec![s0], lease);
    r.world.run_until(SimTime::from_secs(10));
    let res = results_of(&r, 0);
    assert_eq!(res.len(), 2);
    assert!(
        res[1].1.is_ok(),
        "late op served: lease never lapsed: {res:?}"
    );
    let c = r.world.node_ref::<ClientNode<()>>(r.clients[0]).unwrap();
    assert!(
        c.lease().keepalive_count() > 0,
        "keep-alives actually flowed"
    );
    // And the server never armed a lease timer.
    let srv = r.world.node_ref::<ServerNode<()>>(r.server).unwrap();
    assert_eq!(srv.authority().stats().timers_started, 0);
    assert_eq!(srv.authority().memory_bytes(), 0);
}

#[test]
fn busy_client_renews_opportunistically_with_zero_keepalives() {
    // A client doing steady metadata work never reaches phase 2, so the
    // lease protocol sends zero dedicated messages (§3.1).
    let lease = LeaseConfig::with_tau(LocalNs::from_secs(2));
    let mut script = Script::new().at(ms(5), FsOp::Create { path: "/f".into() });
    let mut t = 100;
    while t < 10_000 {
        script = script.at(ms(t), FsOp::Stat { path: "/f".into() });
        t += 300; // well inside the 0.8s renewal threshold
    }
    let mut r = rig(vec![script], lease);
    // Observe only while the workload is active (an idle tail would
    // legitimately fall back to keep-alives).
    r.world.run_until(SimTime::from_millis(9_900));
    let c = r.world.node_ref::<ClientNode<()>>(r.clients[0]).unwrap();
    assert_eq!(c.lease().keepalive_count(), 0, "no dedicated lease traffic");
    assert!(
        c.lease().renewal_count() > 20,
        "renewed by ordinary messages"
    );
    assert_eq!(
        r.world.stats().sent_kind("keep_alive", NetId::CONTROL),
        0,
        "nothing on the wire either"
    );
}
