//! CACHING.md is a contract: its three coherence tables must list
//! exactly the code's enum variants — cache block states, data-lock
//! modes, and lease phases — in declaration order. This test diffs each
//! table against the corresponding `ALL` constant so neither the doc nor
//! the code can drift from the other (the OBSERVABILITY.md pattern).

use tank_client::BlockState;
use tank_core::Phase;
use tank_proto::LockMode;

/// First-cell labels of the table under `heading`, in row order. Rows
/// are `| `Label` | ... |`; the header and separator rows have no
/// backticked first cell and fall out naturally.
fn table_labels(heading: &str) -> Vec<String> {
    let doc = include_str!("../../../CACHING.md");
    let mut in_section = false;
    let mut labels = Vec::new();
    for line in doc.lines() {
        let line = line.trim();
        if let Some(title) = line.strip_prefix("## ") {
            in_section = title == heading;
            continue;
        }
        if !in_section || !line.starts_with('|') {
            continue;
        }
        let first = line
            .trim_start_matches('|')
            .split('|')
            .next()
            .unwrap_or("")
            .trim();
        if let Some(label) = first.strip_prefix('`').and_then(|s| s.strip_suffix('`')) {
            labels.push(label.to_string());
        }
    }
    assert!(
        !labels.is_empty(),
        "no table rows parsed under \"## {heading}\" in CACHING.md"
    );
    labels
}

#[test]
fn block_state_table_matches_enum() {
    let doc: Vec<String> = table_labels("Cache block states");
    let code: Vec<String> = BlockState::ALL.iter().map(|s| s.label().into()).collect();
    assert_eq!(
        doc, code,
        "CACHING.md block-state table drifted from BlockState"
    );
}

#[test]
fn lock_mode_table_matches_enum() {
    let doc: Vec<String> = table_labels("Lock modes");
    let code: Vec<String> = LockMode::ALL.iter().map(|m| m.label().into()).collect();
    assert_eq!(
        doc, code,
        "CACHING.md lock-mode table drifted from LockMode"
    );
}

#[test]
fn phase_table_matches_enum() {
    let doc: Vec<String> = table_labels("Lease phases and cache admission");
    let code: Vec<String> = Phase::ALL.iter().map(|p| p.label().into()).collect();
    assert_eq!(doc, code, "CACHING.md phase table drifted from Phase");
}
