//! Shard map: partitioning the inode namespace across N metadata servers.
//!
//! The paper's client "maintains a single lease *per server*" (§3) — the
//! plural only matters once there is more than one server. This crate is
//! the shared placement vocabulary that lets a cluster of independent lock
//! servers split the namespace with no coordination between them:
//!
//! * every shard `s` owns a private namespace root, `Ino(1 + s)`, so the
//!   reserved inos `1..=n` are the shard roots;
//! * every other inode is owned by exactly one shard, chosen by rendezvous
//!   (highest-random-weight) hashing of the ino — deterministic, uniform,
//!   and computable by client and server alike with no directory service;
//! * top-level directory *entries* are placed by rendezvous-hashing the
//!   *name* ([`ShardMap::place_top`]), so a client knows which shard to ask
//!   for `/f17` without consulting any other shard first. Deeper paths have
//!   subtree affinity: a dentry lives on the shard that owns its parent
//!   directory's inode.
//! * each shard allocates SAN blocks only from its private slice of the
//!   device ([`ShardMap::block_range`]), so fencing a client out of one
//!   shard's range leaves its direct I/O against other shards untouched.
//!
//! A map with `n = 1` degenerates exactly to the single-server system: one
//! root at `Ino(1)`, every ino owned by [`ServerId`] 0, and a block range
//! covering the whole device.
//!
//! The map is versioned by an `epoch` carried in `Hello`/`HelloOk`; servers
//! reject traffic from clients holding a different map with
//! `Misrouted(StaleMap)`. This reproduction only uses static maps (epoch 0),
//! but the handshake means online resharding can be added without a wire
//! change.

use serde::{Deserialize, Serialize};
use tank_proto::{BlockRange, Ino, ServerId};

/// The cluster's shard layout: how many metadata servers exist and which
/// slice of the namespace and of the SAN each one owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMap {
    n: u16,
    epoch: u64,
}

impl ShardMap {
    /// A single-server map — the degenerate layout every pre-shard
    /// deployment runs.
    pub fn single() -> ShardMap {
        ShardMap::new(1)
    }

    /// A static map over `n` servers (epoch 0).
    pub fn new(n: u16) -> ShardMap {
        assert!(n >= 1, "a cluster needs at least one shard");
        ShardMap { n, epoch: 0 }
    }

    /// Number of shards.
    #[inline]
    pub fn nshards(&self) -> u16 {
        self.n
    }

    /// All shard ids, in order.
    pub fn servers(&self) -> impl Iterator<Item = ServerId> {
        (0..self.n).map(ServerId)
    }

    /// The map's version, exchanged in `Hello`/`HelloOk`.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The namespace root owned by shard `sid`. Roots occupy the reserved
    /// inos `1..=n`; with one shard this is the classic `Ino(1)`.
    #[inline]
    pub fn root_of(&self, sid: ServerId) -> Ino {
        debug_assert!(sid.0 < self.n);
        Ino(1 + sid.0 as u64)
    }

    /// Whether `ino` is one of the per-shard namespace roots.
    #[inline]
    pub fn is_root(&self, ino: Ino) -> bool {
        1 <= ino.0 && ino.0 <= self.n as u64
    }

    /// The shard that owns (serves metadata and locks for) `ino`.
    ///
    /// Roots belong to their own shard; everything else is placed by
    /// rendezvous hashing, so ownership is stable under any subset of
    /// shards being up and needs no placement table.
    #[inline]
    pub fn owner_of(&self, ino: Ino) -> ServerId {
        if self.is_root(ino) {
            return ServerId(ino.0 as u16 - 1);
        }
        self.rendezvous(ino.0)
    }

    /// The shard whose root directory holds the top-level entry `name`.
    ///
    /// Placing top-level *dentries* by name lets a client route `/f17`
    /// with nothing but the map in hand. The inode the entry resolves to
    /// is created on the same shard (servers allocate only self-owned
    /// inos), so in the common case dentry and inode governance coincide.
    #[inline]
    pub fn place_top(&self, name: &str) -> ServerId {
        self.rendezvous_bytes(name.as_bytes())
    }

    /// The slice of a `total_blocks`-sized SAN device that shard `sid`
    /// allocates from (and fences). Slices are contiguous, disjoint, and
    /// cover the device; with one shard the slice is the whole device.
    pub fn block_range(&self, sid: ServerId, total_blocks: u64) -> BlockRange {
        debug_assert!(sid.0 < self.n);
        if self.n == 1 {
            return BlockRange::ALL;
        }
        let n = self.n as u64;
        let i = sid.0 as u64;
        BlockRange {
            start: i * total_blocks / n,
            end: (i + 1) * total_blocks / n,
        }
    }

    /// Highest-random-weight choice over the shard set for a numeric key.
    fn rendezvous(&self, key: u64) -> ServerId {
        let mut best = (0u64, ServerId(0));
        for s in 0..self.n {
            let w = mix(key ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(s as u64 + 1)));
            if w > best.0 {
                best = (w, ServerId(s));
            }
        }
        best.1
    }

    /// Rendezvous over a byte-string key (top-level names).
    fn rendezvous_bytes(&self, key: &[u8]) -> ServerId {
        self.rendezvous(fnv1a(key))
    }
}

/// SplitMix64 finalizer: cheap, well-distributed 64-bit mixing. The exact
/// function is arbitrary but must be identical on client and server — it is
/// part of the placement contract, like [`tank_proto::stripe_disk`].
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over bytes, folding names into the numeric rendezvous key space.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_degenerates_to_classic_layout() {
        let m = ShardMap::single();
        assert_eq!(m.nshards(), 1);
        assert_eq!(m.root_of(ServerId(0)), Ino(1));
        assert!(m.is_root(Ino(1)));
        assert!(!m.is_root(Ino(2)));
        for i in [1u64, 2, 7, 1000] {
            assert_eq!(m.owner_of(Ino(i)), ServerId(0));
        }
        assert_eq!(m.place_top("f17"), ServerId(0));
        assert_eq!(m.block_range(ServerId(0), 4096), BlockRange::ALL);
    }

    #[test]
    fn roots_are_reserved_and_self_owned() {
        let m = ShardMap::new(4);
        for s in m.servers() {
            let root = m.root_of(s);
            assert!(m.is_root(root));
            assert_eq!(m.owner_of(root), s);
        }
        assert!(!m.is_root(Ino(5)));
        assert!(!m.is_root(Ino(0)));
    }

    #[test]
    fn ownership_is_deterministic_and_total() {
        let m = ShardMap::new(4);
        for i in 5..200u64 {
            let owner = m.owner_of(Ino(i));
            assert!(owner.0 < 4);
            assert_eq!(owner, m.owner_of(Ino(i)), "stable across calls");
        }
    }

    #[test]
    fn ownership_spreads_across_shards() {
        let m = ShardMap::new(4);
        let mut counts = [0usize; 4];
        for i in 5..1005u64 {
            counts[m.owner_of(Ino(i)).0 as usize] += 1;
        }
        // Rendezvous hashing should be roughly uniform: each shard gets
        // 250 ± a wide tolerance out of 1000.
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (150..=350).contains(&c),
                "shard {s} owns {c}/1000 inos — placement is skewed"
            );
        }
    }

    #[test]
    fn name_placement_spreads_across_shards() {
        let m = ShardMap::new(4);
        let mut counts = [0usize; 4];
        for i in 0..1000 {
            counts[m.place_top(&format!("f{i}")).0 as usize] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (150..=350).contains(&c),
                "shard {s} gets {c}/1000 top-level names — placement is skewed"
            );
        }
    }

    #[test]
    fn block_ranges_partition_the_device() {
        let m = ShardMap::new(3);
        let total = 1000u64;
        let ranges: Vec<BlockRange> = m.servers().map(|s| m.block_range(s, total)).collect();
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, total);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "ranges must tile with no gap");
        }
        for r in &ranges {
            assert!(r.end > r.start, "every shard gets a non-empty slice");
        }
    }

    #[test]
    fn growing_the_cluster_moves_a_minority_of_keys() {
        // The rendezvous property: going from n to n+1 shards relocates
        // roughly 1/(n+1) of the keys, not a wholesale reshuffle.
        let m4 = ShardMap::new(4);
        let m5 = ShardMap::new(5);
        let total = 2000u64;
        let moved = (6..6 + total)
            .filter(|&i| {
                let a = m4.owner_of(Ino(i));
                let b = m5.owner_of(Ino(i));
                a != b
            })
            .count() as u64;
        // Expected ~1/5 = 400; allow generous slack.
        assert!(
            moved < total / 2,
            "{moved}/{total} keys moved — not minimal-disruption placement"
        );
    }
}
