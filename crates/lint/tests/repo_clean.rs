//! Tier-1 gate: the shipped workspace obeys its own lints.
//!
//! This is the enforcement half of the tank-lint contract — `cargo test`
//! fails the moment anyone commits a determinism, arithmetic, unwrap,
//! match-exhaustiveness, or metric-closure violation that is not
//! explicitly allowlisted (see LINTS.md for the appeal process).

use std::path::Path;

#[test]
fn workspace_has_zero_lint_violations() {
    let root = tank_lint::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let report = tank_lint::check(&root).expect("workspace walk");
    assert!(
        report.clean(),
        "tank-lint found violations:\n{}",
        report.to_text()
    );
    // Guard against the walk silently finding nothing (which would make
    // the assertion above vacuous).
    assert!(
        report.checked_files >= 50,
        "suspiciously small walk: {} files",
        report.checked_files
    );
}
