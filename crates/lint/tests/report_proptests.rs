//! Property tests for the lint report: the JSON codec round-trips, and
//! the report is a pure function of the file *set*, not the walk order.

use proptest::collection::vec;
use proptest::prelude::*;

use tank_lint::check_files;
use tank_lint::report::{Report, Violation};
use tank_lint::source::SourceFile;

/// Strings that stress the JSON escaper: quotes, backslashes, control
/// characters, and multi-byte UTF-8, mixed with plain identifier runs.
fn tricky_string() -> impl Strategy<Value = String> {
    (
        "[a-zA-Z0-9_./-]{0,12}",
        prop_oneof![
            Just(String::new()),
            Just("\"".to_string()),
            Just("\\".to_string()),
            Just("\n\t\r".to_string()),
            Just("\u{1}\u{1f}".to_string()),
            Just("τ(1+ε) — naïve".to_string()),
        ],
        "[a-zA-Z0-9 ]{0,12}",
    )
        .prop_map(|(a, b, c)| format!("{a}{b}{c}"))
}

fn violation() -> impl Strategy<Value = Violation> {
    (
        tricky_string(),
        0u32..100_000,
        1u32..500,
        prop_oneof![
            Just("L1".to_string()),
            Just("L2".to_string()),
            Just("L3".to_string()),
            Just("L4".to_string()),
            Just("L5".to_string()),
        ],
        tricky_string(),
    )
        .prop_map(|(file, line, col, lint, message)| Violation {
            file,
            line,
            col,
            lint,
            message,
        })
}

fn report() -> impl Strategy<Value = Report> {
    (any::<u64>(), any::<u64>(), vec(violation(), 0..8)).prop_map(
        |(checked_files, allowlisted, violations)| Report {
            checked_files,
            allowlisted,
            violations,
        },
    )
}

proptest! {
    #[test]
    fn json_round_trips_any_report(r in report()) {
        let encoded = r.to_json();
        let decoded = Report::from_json(&encoded)
            .unwrap_or_else(|e| panic!("decode failed: {e}\njson: {encoded}"));
        prop_assert_eq!(&decoded, &r);
        // Canonical encoding: encoding again is byte-identical.
        prop_assert_eq!(decoded.to_json(), encoded);
    }

    #[test]
    fn report_is_stable_under_walk_order(keys in vec(any::<u64>(), 6)) {
        // A small workspace slice with violations in several files.
        let files = vec![
            SourceFile::parse("crates/core/src/a.rs", "fn f() { let t = Instant::now(); }"),
            SourceFile::parse("crates/core/src/b.rs", "fn g() { let r = thread_rng(); }"),
            SourceFile::parse("crates/client/src/c.rs", "let x = LocalNs(a.0 * 2);"),
            SourceFile::parse("crates/net/src/client.rs", "fn h(v: Option<u8>) { v.unwrap(); }"),
            SourceFile::parse("crates/proto/src/clean.rs", "pub fn ok() {}"),
            SourceFile::parse(
                "crates/server/src/d.rs",
                "fn m(p: PushBody) -> bool { match p { PushBody::Demand { .. } => true, _ => false } }",
            ),
        ];
        let baseline = check_files(&files);
        prop_assert!(!baseline.violations.is_empty(), "fixture should trip lints");

        // Shuffle by sorting on random keys; every permutation must
        // produce the identical report.
        let mut order: Vec<usize> = (0..files.len()).collect();
        order.sort_by_key(|&i| keys[i]);
        let shuffled: Vec<SourceFile> = order.iter().map(|&i| files[i].clone()).collect();
        let report = check_files(&shuffled);
        prop_assert_eq!(&report, &baseline);
        prop_assert_eq!(report.to_json(), baseline.to_json());
    }
}
