//! Negative controls: prove the lints actually fire.
//!
//! A linter that never complains is indistinguishable from one that
//! never runs. Each test here builds a throwaway fixture workspace with
//! a deliberate violation and asserts the right lint reports the right
//! file and line — through the library API and, for L1, through the
//! installed binary with its JSON output and non-zero exit code.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use tank_lint::report::Report;

/// Materialise a fixture workspace under the OS temp dir. The caller
/// gets a unique root containing a `[workspace]` manifest plus `files`.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str, files: &[(&str, &str)]) -> Fixture {
        let root =
            std::env::temp_dir().join(format!("tank-lint-fixture-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create fixture root");
        fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
        for (rel, text) in files {
            let path = root.join(rel);
            fs::create_dir_all(path.parent().expect("fixture file has a parent"))
                .expect("create fixture dirs");
            fs::write(path, text).expect("write fixture file");
        }
        Fixture { root }
    }

    fn check(&self) -> Report {
        tank_lint::check(&self.root).expect("lint fixture")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn l1_fires_on_instant_now_in_protocol_crate() {
    let fixture = Fixture::new(
        "l1-lib",
        &[(
            "crates/core/src/lib.rs",
            "use std::time::Instant;\n\npub fn bad() -> Instant {\n    Instant::now()\n}\n",
        )],
    );
    let report = fixture.check();
    assert_eq!(report.violations.len(), 1, "{}", report.to_text());
    let v = &report.violations[0];
    assert_eq!(v.lint, "L1");
    assert_eq!(v.file, "crates/core/src/lib.rs");
    assert_eq!(v.line, 4, "should point at the call, not the import");
}

#[test]
fn l1_binary_exits_nonzero_with_json_diagnostics() {
    let fixture = Fixture::new(
        "l1-bin",
        &[(
            "crates/core/src/lib.rs",
            "pub fn bad() -> u64 {\n    std::time::Instant::now().elapsed().as_nanos() as u64\n}\n",
        )],
    );
    let out = Command::new(env!("CARGO_BIN_EXE_tank-lint"))
        .args(["--format", "json", "--root"])
        .arg(&fixture.root)
        .output()
        .expect("run tank-lint binary");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let report =
        Report::from_json(String::from_utf8_lossy(&out.stdout).trim()).expect("parse JSON output");
    let v = report
        .violations
        .iter()
        .find(|v| v.lint == "L1")
        .expect("an L1 violation in the JSON report");
    assert_eq!(v.file, "crates/core/src/lib.rs");
    assert_eq!(v.line, 2);
}

#[test]
fn l2_fires_on_bare_lease_arithmetic() {
    let fixture = Fixture::new(
        "l2",
        &[(
            "crates/client/src/lib.rs",
            "pub fn bad(t: LocalNs) -> LocalNs {\n    LocalNs(t.0 * 2)\n}\n",
        )],
    );
    let report = fixture.check();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.lint == "L2" && v.line == 2),
        "{}",
        report.to_text()
    );
}

#[test]
fn l3_fires_on_unwrap_in_net() {
    let fixture = Fixture::new(
        "l3",
        &[(
            "crates/net/src/client.rs",
            "pub fn bad(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n",
        )],
    );
    let report = fixture.check();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.lint == "L3" && v.line == 2),
        "{}",
        report.to_text()
    );
}

#[test]
fn l4_fires_on_wildcard_protocol_match() {
    let fixture = Fixture::new(
        "l4",
        &[(
            "crates/server/src/lib.rs",
            "pub fn bad(m: NetMsg) -> bool {\n    match m {\n        NetMsg::Ctl(_) => true,\n        _ => false,\n    }\n}\n",
        )],
    );
    let report = fixture.check();
    assert!(
        report.violations.iter().any(|v| v.lint == "L4"),
        "{}",
        report.to_text()
    );
}

#[test]
fn l5_fires_on_unreferenced_metric() {
    let fixture = Fixture::new(
        "l5",
        &[
            (
                "crates/obs/src/names.rs",
                "pub const ORPHAN_METRIC: MetricDef = counter(\"x.orphan\", \"never emitted\");\n",
            ),
            ("crates/obs/src/lib.rs", "pub mod names;\n"),
        ],
    );
    let report = fixture.check();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.lint == "L5" && v.message.contains("ORPHAN_METRIC")),
        "{}",
        report.to_text()
    );
}

#[test]
fn l4_fires_on_wildcard_over_the_state_machine_enums() {
    // The PR-8 additions to the protocol-enum set: lock modes, cache
    // block states, WAL records, and the replication stream.
    for (name, arm) in [
        ("lockmode", "LockMode::Shared"),
        ("blockstate", "BlockState::Dirty"),
        ("walrecord", "WalRecord::Incarnation(_)"),
        ("replmsg", "ReplMsg::Append { .. }"),
    ] {
        let fixture = Fixture::new(
            &format!("l4-{name}"),
            &[(
                "crates/server/src/lib.rs",
                &format!(
                    "pub fn bad(m: M) -> bool {{\n    match m {{\n        {arm} => true,\n        _ => false,\n    }}\n}}\n"
                ),
            )],
        );
        let report = fixture.check();
        assert!(
            report.violations.iter().any(|v| v.lint == "L4"),
            "{arm}: {}",
            report.to_text()
        );
    }
}

#[test]
fn l6_fires_on_ack_before_fsync() {
    let fixture = Fixture::new(
        "l6",
        &[(
            "crates/server/src/node.rs",
            "pub fn respond(&mut self, ctx: &mut Ctx) {\n    \
             self.wal_append(&rec);\n    \
             ctx.send(NetId::CONTROL, c, NetMsg::Ctl(CtlMsg::Response(resp)));\n    \
             self.wal_fsync(ctx);\n}\n",
        )],
    );
    let report = fixture.check();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.lint == "L6" && v.line == 3),
        "{}",
        report.to_text()
    );
}

#[test]
fn l6_sync_before_ack_is_clean() {
    let fixture = Fixture::new(
        "l6-clean",
        &[(
            "crates/server/src/node.rs",
            "pub fn respond(&mut self, ctx: &mut Ctx) {\n    \
             self.wal_append(&rec);\n    \
             self.wal_sync_and_ship(ctx);\n    \
             ctx.send(NetId::CONTROL, c, NetMsg::Ctl(CtlMsg::Response(resp)));\n}\n",
        )],
    );
    let report = fixture.check();
    assert!(report.clean(), "{}", report.to_text());
}

#[test]
fn l7_fires_on_block_cache_escaping_the_client() {
    let fixture = Fixture::new(
        "l7-escape",
        &[(
            "crates/server/src/node.rs",
            "pub fn peek(c: &BlockCache) -> usize {\n    c.len()\n}\n",
        )],
    );
    let report = fixture.check();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.lint == "L7" && v.line == 1),
        "{}",
        report.to_text()
    );
}

#[test]
fn l7_fires_on_ungated_cache_fill() {
    let fixture = Fixture::new(
        "l7-fill",
        &[(
            "crates/client/src/node.rs",
            "impl ClientNode {\n    fn on_resp(&mut self) {\n        \
             self.cache.fill(ino, idx, data, tag);\n    }\n}\n",
        )],
    );
    let report = fixture.check();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.lint == "L7" && v.message.contains("may_admit")),
        "{}",
        report.to_text()
    );
}

#[test]
fn l8_fires_on_unsorted_lock_acquisition_loop() {
    let fixture = Fixture::new(
        "l8",
        &[(
            "crates/client/src/node.rs",
            "impl ClientNode {\n    fn advance(&mut self, ctx: &mut Ctx) {\n        \
             for ino in self.rename_dirs() {\n            \
             self.ensure_lock_then(ino, LockMode::Exclusive, k, ctx);\n        }\n    }\n}\n",
        )],
    );
    let report = fixture.check();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.lint == "L8" && v.line == 3),
        "{}",
        report.to_text()
    );
}

#[test]
fn l8_sorted_acquisition_is_clean() {
    let fixture = Fixture::new(
        "l8-clean",
        &[(
            "crates/client/src/node.rs",
            "impl ClientNode {\n    fn advance(&mut self, ctx: &mut Ctx) {\n        \
             let mut dirs = self.rename_dirs();\n        dirs.sort();\n        \
             for ino in dirs {\n            \
             self.ensure_lock_then(ino, LockMode::Exclusive, k, ctx);\n        }\n    }\n}\n",
        )],
    );
    let report = fixture.check();
    assert!(report.clean(), "{}", report.to_text());
}

#[test]
fn inline_directive_suppresses_and_is_counted() {
    let fixture = Fixture::new(
        "inline-allow",
        &[(
            "crates/core/src/lib.rs",
            "pub fn special() -> std::time::Instant {\n    // tank-lint: allow(L1) negative-control fixture\n    std::time::Instant::now()\n}\n",
        )],
    );
    let report = fixture.check();
    assert!(report.clean(), "{}", report.to_text());
    assert_eq!(report.allowlisted, 1);
}
