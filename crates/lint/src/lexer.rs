//! A small Rust lexer: enough token fidelity for the repo lints.
//!
//! The container has no crate registry, so a full `syn` parse is off the
//! table; the lints instead work on a token stream with source positions.
//! The lexer understands everything that could *mislead* a token-level
//! lint — comments, string/char/byte/raw-string literals, lifetimes, and
//! multi-character operators (so `->` never reads as a bare `-`) — and
//! deliberately nothing more.

/// Token classes the lints distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including a lone `_`).
    Ident,
    /// `'a` style lifetime (or loop label).
    Lifetime,
    /// Numeric literal, suffix included.
    Number,
    /// String/char/byte literal, quotes included.
    Literal,
    /// Operator or delimiter; multi-char operators are one token.
    Punct,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Tok {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Lexer output: the token stream plus any inline lint directives found
/// in comments (`// tank-lint: allow(L1, L4) — reason`), as
/// `(line, lint ids)`.
#[derive(Debug, Default)]
pub struct LexOut {
    pub tokens: Vec<Tok>,
    pub allow_directives: Vec<(u32, Vec<String>)>,
}

/// Multi-character operators, longest first so maximal munch wins.
const MULTI_PUNCT: &[&str] = &[
    "..=", "...", "<<=", ">>=", "::", "=>", "->", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: LexOut,
}

/// Lex `src` into tokens and inline directives. Unterminated literals or
/// comments simply end the token stream at end of file: the lints prefer
/// best-effort tokens over refusing to check a file.
pub fn lex(src: &str) -> LexOut {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        out: LexOut::default(),
    };
    lx.run();
    lx.out
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advance one byte, tracking line/col. Multi-byte UTF-8 continuation
    /// bytes don't advance the column, keeping columns roughly char-based.
    fn bump(&mut self) -> u8 {
        let b = self.src[self.pos];
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            self.col += 1;
        }
        b
    }

    fn run(&mut self) {
        while self.pos < self.src.len() {
            let b = self.peek(0);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'r' | b'b' if self.raw_or_byte_literal() => {}
                b'"' => self.string_literal(),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => self.ident(),
                _ => self.punct(),
            }
        }
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.out.tokens.push(Tok {
            kind,
            text,
            line,
            col,
        });
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.directive(&text, line);
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.directive(&text, line);
    }

    /// Record a `tank-lint: allow(...)` directive if `comment` has one.
    fn directive(&mut self, comment: &str, line: u32) {
        let Some(at) = comment.find("tank-lint: allow(") else {
            return;
        };
        let rest = &comment[at + "tank-lint: allow(".len()..];
        let Some(close) = rest.find(')') else { return };
        let ids: Vec<String> = rest[..close]
            .split(',')
            .map(|s| s.trim().to_owned())
            .filter(|s| !s.is_empty())
            .collect();
        if !ids.is_empty() {
            self.out.allow_directives.push((line, ids));
        }
    }

    /// Try `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`; false if the `r`/`b`
    /// here is just the start of an identifier.
    fn raw_or_byte_literal(&mut self) -> bool {
        let mut ahead = 1;
        if self.peek(0) == b'b' {
            if self.peek(1) == b'\'' {
                // Byte literal b'…'.
                let (line, col) = (self.line, self.col);
                let start = self.pos;
                self.bump();
                self.bump();
                while self.pos < self.src.len() && self.peek(0) != b'\'' {
                    if self.peek(0) == b'\\' {
                        self.bump();
                    }
                    self.bump();
                }
                if self.pos < self.src.len() {
                    self.bump();
                }
                let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.push(TokKind::Literal, text, line, col);
                return true;
            }
            if self.peek(1) == b'r' {
                ahead = 2;
            }
        }
        let mut hashes = 0usize;
        while self.peek(ahead + hashes) == b'#' {
            hashes += 1;
        }
        if self.peek(ahead + hashes) != b'"' {
            // Covers plain idents starting with r/b and raw `r#ident`s.
            return false;
        }
        // Raw (byte) string: scan for `"` followed by `hashes` hashes.
        let (line, col) = (self.line, self.col);
        let start = self.pos;
        for _ in 0..(ahead + hashes + 1) {
            self.bump();
        }
        'scan: while self.pos < self.src.len() {
            if self.bump() == b'"' {
                for i in 0..hashes {
                    if self.peek(i) != b'#' {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Literal, text, line, col);
        true
    }

    fn string_literal(&mut self) {
        let (line, col) = (self.line, self.col);
        let start = self.pos;
        self.bump();
        while self.pos < self.src.len() && self.peek(0) != b'"' {
            if self.peek(0) == b'\\' {
                self.bump();
            }
            self.bump();
        }
        if self.pos < self.src.len() {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Literal, text, line, col);
    }

    fn char_or_lifetime(&mut self) {
        let (line, col) = (self.line, self.col);
        let start = self.pos;
        let one = self.peek(1);
        let is_lifetime =
            (one == b'_' || one.is_ascii_alphabetic()) && self.peek(2) != b'\'' && one != 0;
        if is_lifetime {
            self.bump();
            while self.peek(0) == b'_' || self.peek(0).is_ascii_alphanumeric() {
                self.bump();
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.push(TokKind::Lifetime, text, line, col);
        } else {
            self.bump();
            while self.pos < self.src.len() && self.peek(0) != b'\'' {
                if self.peek(0) == b'\\' {
                    self.bump();
                }
                self.bump();
            }
            if self.pos < self.src.len() {
                self.bump();
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.push(TokKind::Literal, text, line, col);
        }
    }

    fn number(&mut self) {
        let (line, col) = (self.line, self.col);
        let start = self.pos;
        while self.pos < self.src.len() {
            let b = self.peek(0);
            // Also part of the literal: a decimal point followed by a
            // digit, and an exponent sign (`1e-9`) — not operators.
            let exponent_sign = (b == b'+' || b == b'-')
                && matches!(self.src.get(self.pos.wrapping_sub(1)), Some(b'e' | b'E'))
                && self.peek(1).is_ascii_digit();
            if b == b'_'
                || b.is_ascii_alphanumeric()
                || (b == b'.' && self.peek(1).is_ascii_digit())
                || exponent_sign
            {
                self.bump();
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Number, text, line, col);
    }

    fn ident(&mut self) {
        let (line, col) = (self.line, self.col);
        let start = self.pos;
        while self.pos < self.src.len() {
            let b = self.peek(0);
            if b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80 {
                self.bump();
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Ident, text, line, col);
    }

    fn punct(&mut self) {
        let (line, col) = (self.line, self.col);
        for op in MULTI_PUNCT {
            if self.src[self.pos..].starts_with(op.as_bytes()) {
                for _ in 0..op.len() {
                    self.bump();
                }
                self.push(TokKind::Punct, (*op).to_owned(), line, col);
                return;
            }
        }
        let b = self.bump();
        self.push(TokKind::Punct, (b as char).to_string(), line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn operators_are_maximal_munch() {
        assert_eq!(
            texts("a -> b - c ..= d"),
            ["a", "->", "b", "-", "c", "..=", "d"]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Literal && t.text == "'x'"));
    }

    #[test]
    fn raw_strings_swallow_quotes() {
        let toks = lex(r####"let s = r#"no "tokens" in + here"#; x"####).tokens;
        assert!(toks.iter().any(|t| t.is_ident("x")));
        assert!(!toks.iter().any(|t| t.is_punct("+")));
    }

    #[test]
    fn comments_yield_directives_not_tokens() {
        let out = lex("let a = 1; // tank-lint: allow(L1, L4) timer seed\nlet b = 2;");
        assert_eq!(
            out.allow_directives,
            vec![(1, vec!["L1".into(), "L4".into()])]
        );
        assert!(!out.tokens.iter().any(|t| t.text.contains("tank")));
    }

    #[test]
    fn positions_are_one_based_and_tracked() {
        let toks = lex("ab\n  cd").tokens;
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn float_exponent_sign_is_not_an_operator() {
        assert_eq!(texts("1.5e-3 + 2"), ["1.5e-3", "+", "2"]);
    }
}
