//! L7 `phase-gated-cache-access`: the client block cache is only touched
//! through its two gates, and only from the two files that own it.
//!
//! CACHING.md's coherence contract hangs on two funnels: cached data is
//! *served* only while the lane's lease phase allows it (`cache_usable`,
//! the Figure-4 phase 1–2 gate), and data *enters* the cache only when
//! read under the currently-held lock epoch (`may_admit`). A cache
//! access that bypasses either gate is exactly the bug class the
//! checker's coherence audit exists to catch at runtime; this lint
//! catches it at review time instead.
//!
//! Three clauses:
//!
//! 1. the `BlockCache` type is confined to `client/src/cache.rs` (its
//!    home) and `client/src/node.rs` (its one consumer); any other
//!    mention is a violation (`client/src/lib.rs` re-exports it for the
//!    cache's own integration tests, on the committed allowlist);
//! 2. a function that calls `.fill(` on the cache must consult
//!    `may_admit` in the same function;
//! 3. a function that both reads the cache (`.get(`) and serves a
//!    `ReadServed` event must consult `cache_usable` in the same
//!    function.

use crate::report::Violation;
use crate::source::SourceFile;

use super::scan;

const CACHE_FILES: &[&str] = &["crates/client/src/cache.rs", "crates/client/src/node.rs"];

pub fn check(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        let toks = &f.tokens;
        if !CACHE_FILES.contains(&f.rel.as_str()) {
            for t in toks {
                if t.is_ident("BlockCache") {
                    out.push(Violation {
                        file: f.rel.clone(),
                        line: t.line,
                        col: t.col,
                        lint: "L7".into(),
                        message: "`BlockCache` outside client/src/{cache,node}.rs: every \
                                  cache access must flow through the gated paths in \
                                  node.rs, not reach the cache directly"
                            .into(),
                    });
                }
            }
            continue;
        }
        // Inside the owning files the gates themselves apply. The cache
        // implementation file defines fill/get; only the consumer is
        // held to the gate rule.
        if f.rel != "crates/client/src/node.rs" {
            continue;
        }
        for (start, end) in scan::fn_bodies(toks) {
            let body = &toks[start..end];
            let mentions = |name: &str| body.iter().any(|t| t.is_ident(name));
            let fill_at = (start..end).find(|&i| scan::is_method_call(toks, i, "fill"));
            if let Some(i) = fill_at {
                if !mentions("may_admit") {
                    out.push(Violation {
                        file: f.rel.clone(),
                        line: toks[i].line,
                        col: toks[i].col,
                        lint: "L7".into(),
                        message: "cache `.fill(` without consulting `may_admit` in this \
                                  function: data read under a dead lock epoch must not \
                                  enter the cache"
                            .into(),
                    });
                }
            }
            let get_at = (start..end).find(|&i| scan::is_method_call(toks, i, "get"));
            if let (Some(i), true) = (get_at, mentions("ReadServed")) {
                if !mentions("cache_usable") {
                    out.push(Violation {
                        file: f.rel.clone(),
                        line: toks[i].line,
                        col: toks[i].col,
                        lint: "L7".into(),
                        message: "cache `.get(` on a serve path (`ReadServed`) without \
                                  consulting `cache_usable`: a quiesced lane (phase 3+) \
                                  must not serve cached data"
                            .into(),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_cache_escaping_its_home_fires() {
        let f = SourceFile::parse(
            "crates/server/src/node.rs",
            "fn peek(c: &BlockCache) { c.len(); }",
        );
        let v = check(&[f]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "L7");
    }

    #[test]
    fn ungated_fill_fires() {
        let f = SourceFile::parse(
            "crates/client/src/node.rs",
            "fn on_resp(&mut self) { self.cache.fill(ino, idx, data, tag); }",
        );
        assert_eq!(check(&[f]).len(), 1);
    }

    #[test]
    fn gated_fill_is_clean() {
        let f = SourceFile::parse(
            "crates/client/src/node.rs",
            "fn on_resp(&mut self) { if !self.may_admit(ino, epoch) { return; } \
             self.cache.fill(ino, idx, data, tag); }",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn ungated_serve_fires() {
        let f = SourceFile::parse(
            "crates/client/src/node.rs",
            "fn serve(&mut self) { let b = self.cache.get(ino, idx); \
             self.emit(ClientEvent::ReadServed { op, ino, idx, tag, from_cache }, ctx); }",
        );
        assert_eq!(check(&[f]).len(), 1);
    }

    #[test]
    fn gated_serve_and_non_serving_get_are_clean() {
        let f = SourceFile::parse(
            "crates/client/src/node.rs",
            "fn serve(&mut self) { if !self.cache_usable(ino) { return; } \
             let b = self.cache.get(ino, idx); \
             self.emit(ClientEvent::ReadServed { op, ino, idx, tag, from_cache }, ctx); }\n\
             fn gather(&mut self) { if self.cache.get(ino, idx).is_none() { fetch(); } }",
        );
        assert!(check(&[f]).is_empty());
    }
}
