//! L3 `no-unwrap-on-wire`: decode and socket failures must flow into
//! typed errors, not panics.
//!
//! The NACK/retransmit design (DESIGN.md §6–7) assumes a malformed or
//! truncated datagram is an *event* the protocol handles — a node that
//! panics on a bad frame turns a lossy network into a crash fault. So on
//! the wire-facing paths (`proto::wire`, all of `net`), `unwrap()` and
//! `expect()` are banned outside tests; errors there are `WireError`/
//! `NetClientError` values that feed the existing recovery machinery.
//! Genuinely unreachable cases (e.g. lock poisoning on a crate-private
//! mutex) use an inline `tank-lint: allow(L3)` with the argument spelled
//! out, or better, a non-panicking idiom.

use crate::report::Violation;
use crate::source::SourceFile;

fn in_scope(rel: &str) -> bool {
    rel == "crates/proto/src/wire.rs" || rel.starts_with("crates/net/src/")
}

pub fn check(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        if !in_scope(&f.rel) {
            continue;
        }
        let toks = &f.tokens;
        for (i, t) in toks.iter().enumerate() {
            let callee = if t.is_ident("unwrap") || t.is_ident("expect") {
                &t.text
            } else {
                continue;
            };
            // Method position only: `.unwrap(`/`.expect(`. Leaves
            // `unwrap_or_else` (a different ident) and stray mentions alone.
            let is_method = i > 0
                && toks[i - 1].is_punct(".")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("));
            if is_method {
                out.push(Violation {
                    file: f.rel.clone(),
                    line: t.line,
                    col: t.col,
                    lint: "L3".into(),
                    message: format!(
                        "`.{callee}()` on a wire path: a bad frame or socket error must \
                         become a typed error feeding the NACK/retransmit machinery, not \
                         a panic"
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unwrap_and_expect_in_net() {
        let f = SourceFile::parse(
            "crates/net/src/client.rs",
            "let g = m.lock().unwrap();\nlet v = x.expect(\"decode\");",
        );
        let v = check(&[f]);
        assert_eq!(v.len(), 2);
        assert_eq!((v[0].line, v[1].line), (1, 2));
    }

    #[test]
    fn unwrap_or_else_is_fine() {
        let f = SourceFile::parse(
            "crates/net/src/client.rs",
            "let g = m.lock().unwrap_or_else(|p| p.into_inner());",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn tests_and_other_crates_are_out_of_scope() {
        let in_tests = SourceFile::parse(
            "crates/net/src/client.rs",
            "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }",
        );
        let elsewhere = SourceFile::parse("crates/core/src/lib.rs", "x.unwrap();");
        assert!(check(&[in_tests, elsewhere]).is_empty());
    }
}
