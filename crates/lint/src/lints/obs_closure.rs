//! L5 `obs-contract-closure`: every metric declared in `obs::names` has
//! a live emitter.
//!
//! PR 2's doc-contract test proves OBSERVABILITY.md and `names::ALL`
//! agree; this lint closes the loop in the other direction — a metric
//! that no non-test code references is a contract entry measuring
//! nothing, and experiments built on it would silently read zeros. Each
//! `const NAME: MetricDef` in `crates/obs/src/names.rs` must be
//! referenced by identifier in at least one other source file (test
//! modules don't count; they are stripped before linting).

use crate::lexer::TokKind;
use crate::report::Violation;
use crate::source::SourceFile;

const NAMES_FILE: &str = "crates/obs/src/names.rs";

pub fn check(files: &[SourceFile]) -> Vec<Violation> {
    let Some(names) = files.iter().find(|f| f.rel == NAMES_FILE) else {
        // Workspace slice without the obs contract (e.g. lint self-tests).
        return Vec::new();
    };
    // Declarations: `pub const NAME: MetricDef = …`.
    let mut decls: Vec<(&str, u32, u32)> = Vec::new();
    let toks = &names.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("const")
            && toks.get(i + 2).is_some_and(|c| c.is_punct(":"))
            && toks.get(i + 3).is_some_and(|ty| ty.is_ident("MetricDef"))
        {
            if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                decls.push((&name.text, name.line, name.col));
            }
        }
    }
    let mut out = Vec::new();
    for (name, line, col) in decls {
        let referenced = files.iter().any(|f| {
            f.rel != NAMES_FILE
                && f.tokens
                    .iter()
                    .any(|t| t.kind == TokKind::Ident && t.text == name)
        });
        if !referenced {
            out.push(Violation {
                file: NAMES_FILE.into(),
                line,
                col,
                lint: "L5".into(),
                message: format!(
                    "metric `{name}` is declared in the obs contract but never referenced \
                     by a non-test call site: it would export constant zeros"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names_file(body: &str) -> SourceFile {
        SourceFile::parse(NAMES_FILE, body)
    }

    #[test]
    fn unreferenced_metric_is_flagged_at_its_declaration() {
        let names = names_file(
            "pub const USED: MetricDef = counter(\"a.b\", \"h\");\n\
             pub const ORPHAN: MetricDef = counter(\"c.d\", \"h\");",
        );
        let user = SourceFile::parse("crates/sim/src/world.rs", "reg.counter(names::USED);");
        let v = check(&[names, user]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("ORPHAN"));
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn test_only_references_do_not_count() {
        let names = names_file("pub const M: MetricDef = counter(\"a.b\", \"h\");");
        let user = SourceFile::parse(
            "crates/sim/src/world.rs",
            "#[cfg(test)]\nmod tests { fn t() { use_metric(names::M); } }",
        );
        assert_eq!(check(&[names, user]).len(), 1);
    }
}
