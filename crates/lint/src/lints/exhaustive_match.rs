//! L4 `exhaustive-protocol-match`: protocol enums are matched variant by
//! variant, never with a `_ =>` wildcard.
//!
//! Adding a `Message` variant must be a compile error at every dispatch
//! site (DESIGN.md §6's safety case enumerates the handling of each
//! message in each state). A wildcard arm converts that compile error
//! into a silent drop — exactly how a new NACK reason or push message
//! would get ignored by an old code path. A *named* catch-all binding
//! (`other => …`) stays legal: it shows intent and still forwards the
//! value.
//!
//! A match is flagged when some arm pattern mentions a protocol enum
//! (`Enum::Variant`) and some other arm is exactly `_` with no guard.

use crate::lexer::Tok;
use crate::report::Violation;
use crate::source::SourceFile;

/// The protocol-surface enums: wire messages, their bodies and reasons,
/// SAN fencing, the client lease phases, lock and cache state machines,
/// the WAL record vocabulary, and the replication stream.
const PROTO_ENUMS: &[&str] = &[
    "NetMsg",
    "CtlMsg",
    "RequestBody",
    "ReplyBody",
    "ResponseOutcome",
    "NackReason",
    "RouteError",
    "PushBody",
    "SanMsg",
    "FenceOp",
    "Phase",
    "LeaseAction",
    "LockMode",
    "BlockState",
    "WalRecord",
    "ReplMsg",
];

pub fn check(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        let toks = &f.tokens;
        for (i, t) in toks.iter().enumerate() {
            if !t.is_ident("match") {
                continue;
            }
            let Some(body) = find_body_open(toks, i + 1) else {
                continue;
            };
            inspect_match(f, toks, body, &mut out);
        }
    }
    out
}

/// Index of the match body's `{`: the first `{` after the scrutinee at
/// paren/bracket depth 0 (Rust bans struct literals and bare block
/// expressions in scrutinee position, so this brace is the body).
fn find_body_open(toks: &[Tok], mut j: usize) -> Option<usize> {
    let mut depth = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if depth == 0 && t.is_punct("{") {
            return Some(j);
        }
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        }
        j += 1;
    }
    None
}

/// Split the body into arms and apply the rule.
fn inspect_match(f: &SourceFile, toks: &[Tok], body: usize, out: &mut Vec<Violation>) {
    let mut mentions_protocol = false;
    let mut wildcard: Option<&Tok> = None;
    let mut k = body + 1;
    loop {
        // Pattern (including any guard) up to `=>` at depth 0.
        let start = k;
        let mut depth = 0i32;
        while k < toks.len() {
            let t = &toks[k];
            if depth == 0 && (t.is_punct("=>") || t.is_punct("}")) {
                break;
            }
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
            }
            k += 1;
        }
        if k >= toks.len() || toks[k].is_punct("}") {
            break;
        }
        let pat = &toks[start..k];
        if pat.len() == 1 && pat[0].is_ident("_") {
            wildcard = Some(&pat[0]);
        }
        if pat
            .windows(2)
            .any(|w| PROTO_ENUMS.iter().any(|e| w[0].is_ident(e)) && w[1].is_punct("::"))
        {
            mentions_protocol = true;
        }
        k += 1; // past `=>`
        k = skip_arm_expr(toks, k);
    }
    if mentions_protocol {
        if let Some(w) = wildcard {
            out.push(Violation {
                file: f.rel.clone(),
                line: w.line,
                col: w.col,
                lint: "L4".into(),
                message: "`_ =>` wildcard in a match over a protocol enum: new message \
                          variants must fail to compile here, not fall through silently \
                          (bind a name if a catch-all is intended)"
                    .into(),
            });
        }
    }
}

/// Skip one arm expression: a brace block plus optional comma, or tokens
/// through the separating comma at depth 0 (the body's `}` also ends it).
fn skip_arm_expr(toks: &[Tok], mut k: usize) -> usize {
    if k < toks.len() && toks[k].is_punct("{") {
        let mut depth = 0i32;
        while k < toks.len() {
            if toks[k].is_punct("{") {
                depth += 1;
            } else if toks[k].is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    k += 1;
                    break;
                }
            }
            k += 1;
        }
        if k < toks.len() && toks[k].is_punct(",") {
            k += 1;
        }
        return k;
    }
    let mut depth = 0i32;
    while k < toks.len() {
        let t = &toks[k];
        if depth == 0 && t.is_punct(",") {
            return k + 1;
        }
        if depth == 0 && t.is_punct("}") {
            return k; // body close; leave for the caller to see
        }
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        }
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_wildcard_alongside_protocol_variants() {
        let f = SourceFile::parse(
            "crates/server/src/node.rs",
            "match m { NetMsg::Request(r) => handle(r), _ => {} }",
        );
        let v = check(&[f]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "L4");
    }

    #[test]
    fn named_catch_all_is_legal() {
        let f = SourceFile::parse(
            "crates/server/src/node.rs",
            "match m { NetMsg::Request(r) => handle(r), other => log(other) }",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn guarded_wildcard_is_not_the_wildcard_arm() {
        let f = SourceFile::parse(
            "crates/server/src/node.rs",
            "match m { NackReason::Recovering => a(), _ if odd => b(), NackReason::Stale => c() }",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn non_protocol_matches_may_use_wildcards() {
        let f = SourceFile::parse(
            "crates/server/src/node.rs",
            "match ev { Event::Tick => a(), _ => b() }",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn nested_block_arms_do_not_confuse_arm_splitting() {
        let f = SourceFile::parse(
            "crates/client/src/node.rs",
            "match m {\n  Phase::Active => { if x { y() } },\n  Phase::Renewing => z(),\n  _ => {}\n}",
        );
        assert_eq!(check(&[f]).len(), 1);
    }
}
