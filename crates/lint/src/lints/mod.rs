//! The lint battery: each lint is a pure function from the lexed
//! workspace to violations. Registration here is what the CLI's
//! `--list` and `run_all` iterate.

pub mod determinism;
pub mod exhaustive_match;
pub mod no_unwrap;
pub mod obs_closure;
pub mod time_arith;

use crate::report::Violation;
use crate::source::SourceFile;

/// Crates whose behaviour must be a pure function of simulated time and
/// seeded randomness (DESIGN.md: one schedule ⇒ one history).
pub const PROTOCOL_CRATES: &[&str] = &["core", "proto", "client", "server", "sim", "consistency"];

/// Registry entry for one lint.
pub struct LintInfo {
    /// Stable id used in diagnostics, directives, and the allowlist.
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line rule statement.
    pub summary: &'static str,
    /// The checker.
    pub check: fn(&[SourceFile]) -> Vec<Violation>,
}

/// All registered lints, in id order.
pub const LINTS: &[LintInfo] = &[
    LintInfo {
        id: "L1",
        name: "determinism",
        summary: "no ambient wall clock or OS randomness (Instant::now, SystemTime, \
                  thread_rng) outside the real-transport crates",
        check: determinism::check,
    },
    LintInfo {
        id: "L2",
        name: "checked-time-arithmetic",
        summary: "no bare +/-/* or `as` casts inside LocalNs(..)/SimTime(..) constructors \
                  outside sim::time — use the checked helpers",
        check: time_arith::check,
    },
    LintInfo {
        id: "L3",
        name: "no-unwrap-on-wire",
        summary: "no unwrap()/expect() on decode or socket paths (proto::wire and net)",
        check: no_unwrap::check,
    },
    LintInfo {
        id: "L4",
        name: "exhaustive-protocol-match",
        summary: "no `_ =>` wildcard arms in matches over protocol enums — new message \
                  variants must be handled explicitly",
        check: exhaustive_match::check,
    },
    LintInfo {
        id: "L5",
        name: "obs-contract-closure",
        summary: "every metric declared in obs::names is referenced by at least one \
                  non-test call site",
        check: obs_closure::check,
    },
];

/// Run every registered lint over `files`.
pub fn run_all(files: &[SourceFile]) -> Vec<Violation> {
    LINTS.iter().flat_map(|l| (l.check)(files)).collect()
}
