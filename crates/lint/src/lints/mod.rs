//! The lint battery: each lint is a pure function from the lexed
//! workspace to violations. Registration here is what the CLI's
//! `--list` and `run_all` iterate.

pub mod cache_gate;
pub mod determinism;
pub mod exhaustive_match;
pub mod fsync_before_ack;
pub mod lock_order;
pub mod no_unwrap;
pub mod obs_closure;
pub mod scan;
pub mod time_arith;

use crate::report::Violation;
use crate::source::SourceFile;

/// Crates whose behaviour must be a pure function of simulated time and
/// seeded randomness (DESIGN.md: one schedule ⇒ one history).
pub const PROTOCOL_CRATES: &[&str] = &["core", "proto", "client", "server", "sim", "consistency"];

/// Registry entry for one lint.
pub struct LintInfo {
    /// Stable id used in diagnostics, directives, and the allowlist.
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line rule statement.
    pub summary: &'static str,
    /// The checker.
    pub check: fn(&[SourceFile]) -> Vec<Violation>,
}

/// All registered lints, in id order.
pub const LINTS: &[LintInfo] = &[
    LintInfo {
        id: "L1",
        name: "determinism",
        summary: "no ambient wall clock or OS randomness (Instant::now, SystemTime, \
                  thread_rng) outside the real-transport crates",
        check: determinism::check,
    },
    LintInfo {
        id: "L2",
        name: "checked-time-arithmetic",
        summary: "no bare +/-/* or `as` casts inside LocalNs(..)/SimTime(..) constructors \
                  outside sim::time — use the checked helpers",
        check: time_arith::check,
    },
    LintInfo {
        id: "L3",
        name: "no-unwrap-on-wire",
        summary: "no unwrap()/expect() on decode or socket paths (proto::wire and net)",
        check: no_unwrap::check,
    },
    LintInfo {
        id: "L4",
        name: "exhaustive-protocol-match",
        summary: "no `_ =>` wildcard arms in matches over protocol enums — new message \
                  variants must be handled explicitly",
        check: exhaustive_match::check,
    },
    LintInfo {
        id: "L5",
        name: "obs-contract-closure",
        summary: "every metric declared in obs::names is referenced by at least one \
                  non-test call site",
        check: obs_closure::check,
    },
    LintInfo {
        id: "L6",
        name: "fsync-before-ack",
        summary: "the server never builds a `CtlMsg::Response` with un-synced WAL state \
                  earlier in the same function — durability precedes acknowledgement",
        check: fsync_before_ack::check,
    },
    LintInfo {
        id: "L7",
        name: "phase-gated-cache-access",
        summary: "the client block cache stays behind its two gates: fills consult \
                  `may_admit`, serve paths consult `cache_usable`, and `BlockCache` \
                  never escapes client/src/{cache,node}.rs",
        check: cache_gate::check,
    },
    LintInfo {
        id: "L8",
        name: "shard-lock-order",
        summary: "a loop acquiring locks over several inodes (`ensure_lock_then`) must \
                  be preceded by a sort of its iteration order — the global acquisition \
                  order is the deadlock-freedom argument",
        check: lock_order::check,
    },
];

/// Run every registered lint over `files`.
pub fn run_all(files: &[SourceFile]) -> Vec<Violation> {
    LINTS.iter().flat_map(|l| (l.check)(files)).collect()
}
