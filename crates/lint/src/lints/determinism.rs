//! L1 `determinism`: protocol code must not read ambient time or OS
//! randomness.
//!
//! Theorem 3.1's replayability argument needs every protocol decision to
//! be a function of `SimTime`/`LocalNs` and the seeded RNG: one schedule,
//! one history. A stray `Instant::now()` or `thread_rng()` silently
//! reintroduces wall-clock nondeterminism. The lint runs over *all*
//! crates; the real-transport crates (`net`, `cluster`, `bench`) are
//! exempted by the committed allowlist, not by the rule.

use crate::lexer::TokKind;
use crate::report::Violation;
use crate::source::SourceFile;

/// Identifiers that are forbidden outright wherever they appear.
const BANNED_IDENTS: &[(&str, &str)] = &[
    ("SystemTime", "ambient wall clock"),
    ("thread_rng", "OS-seeded randomness"),
    ("from_entropy", "OS-seeded randomness"),
    ("OsRng", "OS-seeded randomness"),
];

pub fn check(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        for (i, t) in f.tokens.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let why = if let Some((_, why)) = BANNED_IDENTS.iter().find(|(id, _)| t.is_ident(id)) {
                Some(format!("use of `{}` ({why})", t.text))
            } else if t.is_ident("Instant")
                && f.tokens.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && f.tokens.get(i + 2).is_some_and(|n| n.is_ident("now"))
            {
                Some("call to `Instant::now` (ambient wall clock)".to_owned())
            } else {
                None
            };
            if let Some(why) = why {
                out.push(Violation {
                    file: f.rel.clone(),
                    line: t.line,
                    col: t.col,
                    lint: "L1".into(),
                    message: format!(
                        "{why}: protocol behaviour must be a function of simulated time and \
                         the seeded RNG"
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_instant_now_with_position() {
        let f = SourceFile::parse(
            "crates/core/src/lib.rs",
            "fn f() {\n    let t = Instant::now();\n}",
        );
        let v = check(&[f]);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].line, v[0].lint.as_str()), (2, "L1"));
    }

    #[test]
    fn instant_elapsed_alone_is_not_flagged() {
        let f = SourceFile::parse("crates/core/src/lib.rs", "fn f(i: Instant) -> u64 { 0 }");
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn flags_rng_sources() {
        let f = SourceFile::parse("crates/client/src/x.rs", "let r = thread_rng();");
        assert_eq!(check(&[f]).len(), 1);
    }
}
