//! L6 `fsync-before-ack`: the server never acknowledges state it has not
//! made durable.
//!
//! DESIGN.md §9's recovery argument rests on one invariant: every
//! response the server sends describes state that is already on stable
//! storage — a client that hears an ACK and then watches the server
//! crash must find the acknowledged mutation again after recovery. The
//! code expresses this as a funnel: mutations `wal_append`, the send
//! path `wal_fsync`s (directly or via `wal_sync_and_ship`), and only
//! then does a `CtlMsg::Response` go out.
//!
//! The lint enforces the funnel shape per function in the server crate:
//! walking each body in order, a `wal_append` marks the state dirty, a
//! `wal_fsync`/`wal_sync_and_ship` marks it durable, and constructing a
//! `CtlMsg::Response` while not durable is a violation. A response send
//! with no sync anywhere before it in the same function is also flagged
//! — the two replay paths (hello replay, dedup-window replay) resend
//! *cached* responses whose state was synced when first produced, and
//! carry inline allows saying exactly that.

use crate::report::Violation;
use crate::source::SourceFile;

use super::scan;

const SYNCS: &[&str] = &["wal_fsync", "wal_sync_and_ship"];

pub fn check(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        if f.crate_name() != Some("server") {
            continue;
        }
        let toks = &f.tokens;
        for (start, end) in scan::fn_bodies(toks) {
            let mut synced = false;
            let mut appended = false;
            for i in start..end {
                let t = &toks[i];
                if SYNCS.iter().any(|s| t.is_ident(s)) {
                    synced = true;
                    appended = false;
                } else if t.is_ident("wal_append") {
                    appended = true;
                } else if scan::is_path(toks, i, "CtlMsg", "Response") && (!synced || appended) {
                    out.push(Violation {
                        file: f.rel.clone(),
                        line: t.line,
                        col: t.col,
                        lint: "L6".into(),
                        message: if appended {
                            "`CtlMsg::Response` built after a `wal_append` with no \
                             intervening fsync: the ACK would describe state the WAL has \
                             not made durable — call wal_fsync/wal_sync_and_ship first"
                        } else {
                            "`CtlMsg::Response` built with no wal_fsync/wal_sync_and_ship \
                             earlier in this function: if this resends a cached (already \
                             durable) response, say so with an inline allow"
                        }
                        .into(),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_on_ack_before_any_sync() {
        let f = SourceFile::parse(
            "crates/server/src/node.rs",
            "fn respond(&mut self) { ctx.send(NetId::CONTROL, c, NetMsg::Ctl(CtlMsg::Response(r))); }",
        );
        let v = check(&[f]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "L6");
    }

    #[test]
    fn fires_on_append_after_the_sync() {
        let f = SourceFile::parse(
            "crates/server/src/node.rs",
            "fn respond(&mut self) { self.wal_fsync(ctx); self.wal_append(&rec); \
             ctx.send(NetId::CONTROL, c, NetMsg::Ctl(CtlMsg::Response(r))); }",
        );
        assert_eq!(check(&[f]).len(), 1);
    }

    #[test]
    fn sync_then_ack_is_the_blessed_shape() {
        let f = SourceFile::parse(
            "crates/server/src/node.rs",
            "fn respond(&mut self) { self.wal_append(&rec); self.wal_sync_and_ship(ctx); \
             ctx.send(NetId::CONTROL, c, NetMsg::Ctl(CtlMsg::Response(r))); }",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn other_crates_are_out_of_scope() {
        let f = SourceFile::parse(
            "crates/client/src/node.rs",
            "fn relay(&mut self) { ctx.send(NetId::CONTROL, c, NetMsg::Ctl(CtlMsg::Response(r))); }",
        );
        assert!(check(&[f]).is_empty());
    }
}
