//! L8 `shard-lock-order`: a loop that acquires locks on several inodes
//! must iterate them in sorted order.
//!
//! DESIGN.md §12's deadlock-freedom argument for multi-inode operations
//! (rename holds up to four locks across two shards) is a total
//! acquisition order: every participant collects the inodes it needs,
//! sorts them, and acquires in that order. Two renames whose lock sets
//! overlap then conflict on the *lowest* contested inode and one of them
//! waits there, holding nothing the other needs.
//!
//! The lint is the lexical shadow of that argument: in the protocol
//! crates, a `for` loop whose body calls `ensure_lock_then` must be
//! preceded, in the same function, by a `sort`-family call (`sort`,
//! `sort_by`, `sort_unstable`, …) — evidence the iteration order was
//! normalized before the acquisition sweep. A loop acquiring in
//! caller-supplied order is exactly the shape that deadlocks.

use crate::report::Violation;
use crate::source::SourceFile;

use super::scan;

pub fn check(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        let Some(krate) = f.crate_name() else {
            continue;
        };
        if !super::PROTOCOL_CRATES.contains(&krate) {
            continue;
        }
        let toks = &f.tokens;
        for (start, end) in scan::fn_bodies(toks) {
            let mut i = start;
            while i < end {
                if toks[i].is_ident("for") {
                    // Body of the `for` is the first `{` after the
                    // iterator expression at brace depth 0.
                    let mut j = i + 1;
                    while j < end && !toks[j].is_punct("{") {
                        j += 1;
                    }
                    if j >= end {
                        break;
                    }
                    let close = scan::match_brace(toks, j).min(end);
                    let acquires = toks[j..close]
                        .iter()
                        .any(|t| t.is_ident("ensure_lock_then"));
                    if acquires {
                        let sorted_before = toks[start..i].iter().any(|t| {
                            t.kind == crate::lexer::TokKind::Ident && t.text.starts_with("sort")
                        });
                        if !sorted_before {
                            out.push(Violation {
                                file: f.rel.clone(),
                                line: toks[i].line,
                                col: toks[i].col,
                                lint: "L8".into(),
                                message: "loop acquires locks (`ensure_lock_then`) over an \
                                          iteration order never sorted in this function: \
                                          multi-inode acquisition must follow the global \
                                          sorted order or two overlapping ops can deadlock"
                                    .into(),
                            });
                        }
                        i = close;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsorted_acquisition_loop_fires() {
        let f = SourceFile::parse(
            "crates/client/src/node.rs",
            "fn advance(&mut self) { for ino in dirs { self.ensure_lock_then(ino, m, k, ctx); } }",
        );
        let v = check(&[f]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "L8");
    }

    #[test]
    fn sorted_acquisition_loop_is_clean() {
        let f = SourceFile::parse(
            "crates/client/src/node.rs",
            "fn advance(&mut self) { dirs.sort(); \
             for ino in dirs { self.ensure_lock_then(ino, m, k, ctx); } }",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn sort_variants_count() {
        let f = SourceFile::parse(
            "crates/client/src/node.rs",
            "fn advance(&mut self) { dirs.sort_unstable_by_key(|i| i.0); \
             for ino in dirs { self.ensure_lock_then(ino, m, k, ctx); } }",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn loops_without_lock_acquisition_are_ignored() {
        let f = SourceFile::parse(
            "crates/client/src/node.rs",
            "fn drain(&mut self) { for x in items { self.push(x); } }",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn non_protocol_crates_are_out_of_scope() {
        let f = SourceFile::parse(
            "crates/lint/src/lib.rs",
            "fn advance() { for ino in dirs { x.ensure_lock_then(ino); } }",
        );
        assert!(check(&[f]).is_empty());
    }
}
