//! L2 `checked-time-arithmetic`: lease/timestamp math must not silently
//! wrap.
//!
//! Lease-expiry comparisons (`DESIGN.md` §3: the client walks to Phase 4
//! strictly before the server's `τ(1+ε)` timer) stop being comparisons
//! if an intermediate `u64` wraps or an `as` cast truncates. The
//! newtypes `LocalNs`/`SimTime` exist so arithmetic happens once, in
//! `sim::time`, with saturating semantics. This lint flags bare `+`,
//! `-`, `*`, or `as` inside a `LocalNs(..)`/`SimTime(..)` constructor in
//! the protocol crates — the raw-`u64` escape hatch that would bypass
//! the checked helpers. Division is permitted (it cannot wrap).
//!
//! The check is lexical, scoped to constructor argument lists: arithmetic
//! *before* the value reaches a constructor is out of reach, but every
//! wrap found in practice sat exactly in this pattern
//! (`LocalNs(a.0 * 2)`-style), and the constructor is the one funnel all
//! raw values pass through.

use crate::report::Violation;
use crate::source::SourceFile;

use super::PROTOCOL_CRATES;

const TIME_TYPES: &[&str] = &["LocalNs", "SimTime"];

pub fn check(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        let in_scope = f.crate_name().is_some_and(|c| PROTOCOL_CRATES.contains(&c));
        if !in_scope {
            continue;
        }
        let toks = &f.tokens;
        for (i, t) in toks.iter().enumerate() {
            if !TIME_TYPES.iter().any(|ty| t.is_ident(ty)) {
                continue;
            }
            // Constructor call: the type name directly followed by `(`.
            // `LocalNs::from_millis(..)` has `::` here and is not matched.
            if !toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
                continue;
            }
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < toks.len() {
                let a = &toks[j];
                if a.is_punct("(") {
                    depth += 1;
                } else if a.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if a.is_punct("+") || a.is_punct("-") || a.is_punct("*") || a.is_ident("as")
                {
                    out.push(Violation {
                        file: f.rel.clone(),
                        line: a.line,
                        col: a.col,
                        lint: "L2".into(),
                        message: format!(
                            "bare `{}` inside `{}(..)`: raw time arithmetic can wrap or \
                             truncate — use the checked helpers in sim::time",
                            a.text, t.text
                        ),
                    });
                }
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_bare_multiply_in_constructor() {
        let f = SourceFile::parse("crates/client/src/node.rs", "let rto = LocalNs(cur.0 * 2);");
        let v = check(&[f]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "L2");
    }

    #[test]
    fn flags_as_cast_in_constructor() {
        let f = SourceFile::parse(
            "crates/core/src/config.rs",
            "LocalNs((tau.0 as f64 * frac) as u64)",
        );
        // Two `as` casts and one `*`.
        assert_eq!(check(&[f]).len(), 3);
    }

    #[test]
    fn division_and_helpers_are_fine() {
        let f = SourceFile::parse(
            "crates/core/src/config.rs",
            "let a = LocalNs(tau.0 / 20); let b = tau.times(2); let c = LocalNs::from_millis(5);",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        let f = SourceFile::parse("crates/bench/src/main.rs", "LocalNs(a + b)");
        assert!(check(&[f]).is_empty());
    }
}
