//! Shared token-scanning helpers for the function-scoped lints.
//!
//! L6–L8 reason about what happens *inside one function*: whether an ack
//! follows a sync, whether a cache access sits behind its gate, whether a
//! lock loop was preceded by a sort. This module finds function bodies in
//! the token stream so each lint can walk them independently.

use crate::lexer::Tok;

/// Token ranges `[start, end)` of every `fn` body in `toks`, outermost
/// first. Nested items (closures, inner fns) stay inside their enclosing
/// body's range — the lints treat a function and its closures as one
/// scope, which is the conservative direction for all three rules.
pub fn fn_bodies(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // `fn name` — an identifier must follow, which excludes `fn(..)`
        // pointer types and the `Fn` traits (capitalised, so not `fn`).
        if toks[i].is_ident("fn")
            && toks
                .get(i + 1)
                .is_some_and(|t| t.kind == crate::lexer::TokKind::Ident)
        {
            // The body is the first `{` after the signature at
            // paren/bracket depth 0 (return types and where clauses
            // contain no braces; a `;` first means a trait method
            // declaration with no body).
            let mut j = i + 2;
            let mut depth = 0i32;
            let mut body = None;
            while j < toks.len() {
                let t = &toks[j];
                if depth == 0 && t.is_punct("{") {
                    body = Some(j);
                    break;
                }
                if depth == 0 && t.is_punct(";") {
                    break;
                }
                if t.is_punct("(") || t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") {
                    depth -= 1;
                }
                j += 1;
            }
            if let Some(open) = body {
                let close = match_brace(toks, open);
                out.push((open + 1, close));
                i = close;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// With `toks[open]` a `{`, the index of its matching `}` (or the end of
/// the stream on imbalance).
pub fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct("{") {
            depth += 1;
        } else if toks[i].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len()
}

/// True when `toks[i..]` spells the method-call suffix `.name(`.
pub fn is_method_call(toks: &[Tok], i: usize, name: &str) -> bool {
    toks[i].is_punct(".")
        && toks.get(i + 1).is_some_and(|t| t.is_ident(name))
        && toks.get(i + 2).is_some_and(|t| t.is_punct("("))
}

/// True when `toks[i..]` spells the path `a::b`.
pub fn is_path(toks: &[Tok], i: usize, a: &str, b: &str) -> bool {
    toks[i].is_ident(a)
        && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
        && toks.get(i + 2).is_some_and(|t| t.is_ident(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    #[test]
    fn finds_bodies_and_skips_fn_pointers() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "struct S { check: fn(&str) -> bool }\nfn a() { one(); }\nfn b(x: u8) -> u8 { x }\n",
        );
        let bodies = fn_bodies(&f.tokens);
        assert_eq!(bodies.len(), 2);
        let (s, e) = bodies[0];
        assert!(f.tokens[s..e].iter().any(|t| t.is_ident("one")));
    }

    #[test]
    fn nested_closures_stay_in_the_outer_body() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "fn outer() { let c = |x| { inner(x) }; c(1); }",
        );
        let bodies = fn_bodies(&f.tokens);
        assert_eq!(bodies.len(), 1);
        let (s, e) = bodies[0];
        assert!(f.tokens[s..e].iter().any(|t| t.is_ident("inner")));
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let f = SourceFile::parse("crates/x/src/lib.rs", "trait T { fn m(&self) -> u8; }");
        assert!(fn_bodies(&f.tokens).is_empty());
    }
}
