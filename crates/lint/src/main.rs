//! CLI for `tank-lint`.
//!
//! ```text
//! cargo run -p tank-lint                      # text diagnostics
//! cargo run -p tank-lint -- --format json     # machine-readable report
//! cargo run -p tank-lint -- --list            # registered lints
//! cargo run -p tank-lint -- --root path/to/ws # lint another workspace
//! ```
//!
//! Exit status: 0 when clean, 1 when violations survive the allowlist,
//! 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut format = "text".to_owned();
    let mut root: Option<PathBuf> = None;
    let mut list = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => match args.next() {
                Some(f) if f == "text" || f == "json" => format = f,
                _ => return usage("--format takes `text` or `json`"),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root takes a path"),
            },
            "--list" => list = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if list {
        for l in tank_lint::lints::LINTS {
            println!("{} {}: {}", l.id, l.name, l.summary);
        }
        return ExitCode::SUCCESS;
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| tank_lint::find_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("tank-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    let report = match tank_lint::check(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "tank-lint: failed to read sources under {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    if format == "json" {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

const USAGE: &str = "usage: tank-lint [--root <workspace>] [--format text|json] [--list]";

fn usage(msg: &str) -> ExitCode {
    eprintln!("tank-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
