//! The committed allowlist: where a lint's rule is deliberately relaxed,
//! with the reason on record.
//!
//! Policy (see `LINTS.md`): an entry here needs a *structural* reason —
//! a whole crate whose job requires the forbidden construct — never
//! convenience. Point exceptions inside otherwise-governed code use an
//! inline `// tank-lint: allow(Lx) reason` comment instead, which scopes
//! the exemption to one line and keeps the reason next to the code.

/// One allowlist entry: `lint` is not reported under `path_prefix`.
#[derive(Debug, Clone, Copy)]
pub struct Allow {
    /// Lint id, e.g. `L1`.
    pub lint: &'static str,
    /// Workspace-relative path prefix the exemption covers.
    pub path_prefix: &'static str,
    /// Why the exemption is sound.
    pub reason: &'static str,
}

/// The committed exemptions.
pub const ALLOWLIST: &[Allow] = &[
    Allow {
        lint: "L1",
        path_prefix: "crates/net/",
        reason: "real transport: socket deadlines and the monotonic epoch need the OS clock; \
                 protocol decisions still flow through LocalNs",
    },
    Allow {
        lint: "L1",
        path_prefix: "crates/cluster/",
        reason: "process harness: drives real OS processes on real time by design",
    },
    Allow {
        lint: "L1",
        path_prefix: "crates/bench/",
        reason: "benchmarks measure wall-clock behaviour of the real stack",
    },
    Allow {
        lint: "L2",
        path_prefix: "crates/sim/src/time.rs",
        reason: "the one blessed home of raw time arithmetic; every other site must go \
                 through its checked (saturating) helpers",
    },
    Allow {
        lint: "L7",
        path_prefix: "crates/client/src/lib.rs",
        reason: "the crate root re-exports BlockCache/BlockState as the public API surface \
                 for the cache's own integration tests; no cache *access* happens here",
    },
];

/// The allowlist entry suppressing `lint` at `rel`, if any.
pub fn allowed(lint: &str, rel: &str) -> Option<&'static Allow> {
    ALLOWLIST
        .iter()
        .find(|a| a.lint == lint && rel.starts_with(a.path_prefix))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_scoping() {
        assert!(allowed("L1", "crates/net/src/server.rs").is_some());
        assert!(allowed("L1", "crates/core/src/lib.rs").is_none());
        assert!(allowed("L2", "crates/sim/src/time.rs").is_some());
        assert!(allowed("L2", "crates/sim/src/world.rs").is_none());
    }
}
