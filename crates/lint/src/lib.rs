//! `tank-lint`: repo-aware static analysis for the Storage Tank
//! workspace.
//!
//! The compiler checks types; this crate checks the *protocol
//! discipline* DESIGN.md's safety argument assumes but rustc cannot see:
//! determinism under simulated time (L1), non-wrapping lease arithmetic
//! (L2), panic-free wire paths (L3), exhaustive protocol matches (L4),
//! and a fully-emitting metric contract (L5). The rules and their
//! rationale are catalogued in `LINTS.md`.
//!
//! Pipeline: [`source::walk_sources`] lexes `crates/*/src/**/*.rs` with
//! test items stripped, [`lints::run_all`] applies the battery, and
//! [`check_files`] filters through the committed [`allowlist`] plus
//! inline `tank-lint: allow(…)` directives, yielding a canonical sorted
//! [`report::Report`]. Both the CLI (`cargo run -p tank-lint`) and the
//! tier-1 `repo_clean` integration test are thin wrappers over
//! [`check`].

pub mod allowlist;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod source;

use std::io;
use std::path::Path;

use report::Report;
use source::SourceFile;

/// Lint the workspace rooted at `root`.
pub fn check(root: &Path) -> io::Result<Report> {
    Ok(check_files(&source::walk_sources(root)?))
}

/// Lint an already-loaded set of sources. The result is independent of
/// the order of `files`: violations are sorted and every lint is a pure
/// function of the set.
pub fn check_files(files: &[SourceFile]) -> Report {
    let mut allowlisted = 0u64;
    let mut violations = Vec::new();
    for v in lints::run_all(files) {
        let inline = files
            .iter()
            .find(|f| f.rel == v.file)
            .is_some_and(|f| f.inline_allowed(&v.lint, v.line));
        if inline || allowlist::allowed(&v.lint, &v.file).is_some() {
            allowlisted += 1;
        } else {
            violations.push(v);
        }
    }
    let mut report = Report {
        checked_files: files.len() as u64,
        allowlisted,
        violations,
    };
    report.normalize();
    report
}

/// Locate the workspace root: walk up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}
