//! Workspace source loading: file walk, test-span stripping, and inline
//! allow directives.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Tok};

/// One lexed workspace source file, ready for the lints.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across OSes;
    /// this is what diagnostics and the allowlist key on).
    pub rel: String,
    /// Non-test tokens: `#[cfg(test)]` items are stripped before linting,
    /// since the rules govern shipping code, not its tests.
    pub tokens: Vec<Tok>,
    /// Inline `tank-lint: allow(…)` directives as `(line, lint ids)`.
    pub allow_directives: Vec<(u32, Vec<String>)>,
}

impl SourceFile {
    /// Lex `text` as the file at `rel`.
    pub fn parse(rel: &str, text: &str) -> SourceFile {
        let out = lex(text);
        SourceFile {
            rel: rel.to_owned(),
            tokens: strip_test_spans(out.tokens),
            allow_directives: out.allow_directives,
        }
    }

    /// The crate this file belongs to (`crates/core/src/…` → `core`).
    pub fn crate_name(&self) -> Option<&str> {
        self.rel.strip_prefix("crates/")?.split('/').next()
    }

    /// True if an inline directive allows `lint` on `line` (directives
    /// cover their own line and the next, so they can sit above or beside
    /// the flagged code).
    pub fn inline_allowed(&self, lint: &str, line: u32) -> bool {
        self.allow_directives
            .iter()
            .any(|(l, ids)| (line == *l || line == *l + 1) && ids.iter().any(|i| i == lint))
    }
}

/// Walk `root` for lintable sources: `crates/*/src/**/*.rs`, sorted by
/// relative path. Benches, examples, and integration tests are outside
/// the walk by construction.
pub fn walk_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut files = Vec::new();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let text = fs::read_to_string(&p)?;
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            Ok(SourceFile::parse(&rel, &text))
        })
        .collect()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Drop every item annotated `#[cfg(test)]` (attributes included) from
/// the token stream. The item is skipped through its closing brace, or
/// through `;` for brace-less items like `mod tests;`.
fn strip_test_spans(tokens: Vec<Tok>) -> Vec<Tok> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(&tokens, i) {
            i += 7;
            // Skip any further attributes on the same item.
            while i < tokens.len() && tokens[i].is_punct("#") {
                i += 1;
                i = skip_balanced(&tokens, i, "[", "]");
            }
            i = skip_item(&tokens, i);
        } else {
            out.push(tokens[i].clone());
            i += 1;
        }
    }
    out
}

/// Does `tokens[i..]` start with exactly `#[cfg(test)]`?
fn is_cfg_test_attr(tokens: &[Tok], i: usize) -> bool {
    tokens.len() >= i + 7
        && tokens[i].is_punct("#")
        && tokens[i + 1].is_punct("[")
        && tokens[i + 2].is_ident("cfg")
        && tokens[i + 3].is_punct("(")
        && tokens[i + 4].is_ident("test")
        && tokens[i + 5].is_punct(")")
        && tokens[i + 6].is_punct("]")
}

/// Skip one item starting at `i`: through the matching `}` of its first
/// top-level brace, or through a top-level `;`.
fn skip_item(tokens: &[Tok], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < tokens.len() {
        let t = &tokens[i];
        if depth == 0 && t.is_punct("{") {
            return skip_balanced(tokens, i, "{", "}");
        }
        if depth == 0 && t.is_punct(";") {
            return i + 1;
        }
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        }
        i += 1;
    }
    i
}

/// With `tokens[i]` an `open`, return the index just past its matching
/// `close`.
fn skip_balanced(tokens: &[Tok], mut i: usize, open: &str, close: &str) -> usize {
    let mut depth = 0i32;
    while i < tokens.len() {
        if tokens[i].is_punct(open) {
            depth += 1;
        } else if tokens[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_modules_are_stripped() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "fn keep() {}\n#[cfg(test)]\nmod tests {\n fn gone() { x.unwrap(); }\n}\nfn also_kept() {}",
        );
        assert!(f.tokens.iter().any(|t| t.is_ident("keep")));
        assert!(f.tokens.iter().any(|t| t.is_ident("also_kept")));
        assert!(!f.tokens.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn cfg_not_test_is_kept() {
        let f = SourceFile::parse("crates/x/src/lib.rs", "#[cfg(not(test))]\nfn kept() {}");
        assert!(f.tokens.iter().any(|t| t.is_ident("kept")));
    }

    #[test]
    fn stacked_attributes_are_skipped_with_the_item() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "#[cfg(test)]\n#[allow(dead_code)]\nfn gone() {}\nfn kept() {}",
        );
        assert!(!f.tokens.iter().any(|t| t.is_ident("gone")));
        assert!(f.tokens.iter().any(|t| t.is_ident("kept")));
    }

    #[test]
    fn inline_allow_covers_own_and_next_line() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "// tank-lint: allow(L3) poisoning is unreachable here\nlet v = x.unwrap();",
        );
        assert!(f.inline_allowed("L3", 1));
        assert!(f.inline_allowed("L3", 2));
        assert!(!f.inline_allowed("L3", 3));
        assert!(!f.inline_allowed("L1", 2));
    }

    #[test]
    fn crate_name_is_derived_from_path() {
        let f = SourceFile::parse("crates/proto/src/wire.rs", "");
        assert_eq!(f.crate_name(), Some("proto"));
    }
}
