//! Diagnostics and the machine-readable report.
//!
//! The JSON codec is hand-rolled: the workspace's vendored `serde` is a
//! derive-marker stub (the offline container has no registry), so the
//! types carry the standard derives for API compatibility while
//! [`Report::to_json`]/[`Report::from_json`] do the actual work. The
//! encoding is canonical — violations sorted, keys in a fixed order — so
//! a report is byte-stable for a given workspace state regardless of
//! file-walk order.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One lint violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Violation {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Lint id, e.g. `L1`.
    pub lint: String,
    /// Human-readable explanation.
    pub message: String,
}

/// The result of a full lint run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    /// Number of source files checked.
    pub checked_files: u64,
    /// Violations suppressed by the crate allowlist or inline directives.
    pub allowlisted: u64,
    /// Surviving violations, sorted by `(file, line, col, lint)`.
    pub violations: Vec<Violation>,
}

impl Report {
    /// Canonicalize: sort and dedupe violations.
    pub fn normalize(&mut self) {
        self.violations.sort();
        self.violations.dedup();
    }

    /// True when the run found nothing.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// rustc-style text rendering.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for v in &self.violations {
            let _ = writeln!(
                s,
                "error[{}]: {}\n  --> {}:{}:{}",
                v.lint, v.message, v.file, v.line, v.col
            );
        }
        let _ = writeln!(
            s,
            "tank-lint: {} file(s) checked, {} violation(s), {} allowlisted",
            self.checked_files,
            self.violations.len(),
            self.allowlisted
        );
        s
    }

    /// Canonical JSON encoding.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"checked_files\":{},\"allowlisted\":{},\"violations\":[",
            self.checked_files, self.allowlisted
        );
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"file\":{},\"line\":{},\"col\":{},\"lint\":{},\"message\":{}}}",
                json_str(&v.file),
                v.line,
                v.col,
                json_str(&v.lint),
                json_str(&v.message)
            );
        }
        s.push_str("]}");
        s
    }

    /// Decode a report produced by [`Report::to_json`] (accepts any field
    /// order and JSON whitespace).
    pub fn from_json(text: &str) -> Result<Report, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        let obj = v.as_obj("report")?;
        let mut report = Report {
            checked_files: obj.get_u64("checked_files")?,
            allowlisted: obj.get_u64("allowlisted")?,
            violations: Vec::new(),
        };
        for item in obj.get("violations")?.as_arr("violations")? {
            let o = item.as_obj("violation")?;
            report.violations.push(Violation {
                file: o.get_str("file")?,
                line: o.get_u64("line")? as u32,
                col: o.get_u64("col")? as u32,
                lint: o.get_str("lint")?,
                message: o.get_str("message")?,
            });
        }
        Ok(report)
    }
}

/// Escape `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value for decoding (only what reports contain).
enum Json {
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_obj(&self, what: &str) -> Result<&Vec<(String, Json)>, String> {
        match self {
            Json::Obj(m) => Ok(m),
            _ => Err(format!("{what}: expected object")),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&Vec<Json>, String> {
        match self {
            Json::Arr(a) => Ok(a),
            _ => Err(format!("{what}: expected array")),
        }
    }
}

/// Field lookups over a decoded object.
trait ObjExt {
    fn get(&self, key: &str) -> Result<&Json, String>;
    fn get_u64(&self, key: &str) -> Result<u64, String>;
    fn get_str(&self, key: &str) -> Result<String, String>;
}

impl ObjExt for Vec<(String, Json)> {
    fn get(&self, key: &str) -> Result<&Json, String> {
        self.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field {key}"))
    }

    fn get_u64(&self, key: &str) -> Result<u64, String> {
        match self.get(key)? {
            Json::Num(n) => Ok(*n),
            _ => Err(format!("field {key}: expected number")),
        }
    }

    fn get_str(&self, key: &str) -> Result<String, String> {
        match self.get(key)? {
            Json::Str(s) => Ok(s.clone()),
            _ => Err(format!("field {key}: expected string")),
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.b.get(self.i) {
            Some(b'{') => self.obj(),
            Some(b'[') => self.arr(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }

    fn obj(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn arr(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.b.get(self.i) != Some(&b'"') {
            return Err(format!("expected string at byte {}", self.i));
        }
        self.i += 1;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences intact).
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while matches!(self.b.get(self.i), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            checked_files: 3,
            allowlisted: 2,
            violations: vec![Violation {
                file: "crates/core/src/lib.rs".into(),
                line: 10,
                col: 5,
                lint: "L1".into(),
                message: "call to `Instant::now` — \"wall clock\"\tin protocol crate".into(),
            }],
        }
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let r = sample();
        assert_eq!(Report::from_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn decode_tolerates_whitespace_and_field_order() {
        let text = "{ \"violations\": [], \"allowlisted\": 0,\n \"checked_files\": 7 }";
        let r = Report::from_json(text).unwrap();
        assert_eq!(r.checked_files, 7);
        assert!(r.clean());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Report::from_json("{\"checked_files\":1}").is_err());
        assert!(Report::from_json("[]").is_err());
        assert!(
            Report::from_json("{\"checked_files\":1,\"allowlisted\":0,\"violations\":[]}x")
                .is_err()
        );
    }
}
