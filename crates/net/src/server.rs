//! The UDP lease/lock/metadata server, event-driven.
//!
//! One reactor thread waits for socket readiness ([`crate::poll`]) with
//! its timeout bounded by the earliest pending protocol timer, drains
//! every ready datagram into an arena batch per wakeup, and hands the
//! batch to a fixed worker pool ([`crate::reactor`]). Workers decode off
//! the state lock, run the protocol state machines under it, and send
//! replies outside it again via an outbox. Push retries, release waits,
//! lease expiries, the steal grace and the recovery window are all
//! multiplexed into the reactor's poll timeout — no thread ever sleeps
//! per event. DESIGN.md §15 walks the architecture.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use tank_core::{ClientStanding, LeaseAuthority, LeaseConfig};
use tank_meta::{MetaError, MetaStore};
use tank_obs::{names, Counter, Histogram, Registry};
use tank_proto::message::{FsError, ReplyBody, RequestBody, ResponseOutcome};
use tank_proto::{
    CtlMsg, Incarnation, Ino, LockMode, NackReason, NetMsg, NodeId, PushBody, ReqSeq, Request,
    Response, ServerPush, SessionId, WireEncode,
};
use tank_server::lock::{Grant, LockManager, LockRequestOutcome};
use tank_server::session::{Admission, SessionTable};

use crate::fault::{FaultConfig, FaultySocket};
use crate::poll::{set_recv_buffer, Poller};
use crate::reactor::{
    decode_batch, drain_ready, recv_scratch, TimerQueue, WakeupBatch, WorkerPool,
};
use crate::{locked, mono_now};

/// Shortest poll timeout: epoll has millisecond resolution, and a
/// sub-millisecond timeout must not busy-spin.
const MIN_POLL: Duration = Duration::from_millis(1);
/// Longest poll timeout: bounds both timer slop when a worker arms a
/// deadline mid-wait and the latency of noticing a stop request.
const MAX_POLL: Duration = Duration::from_millis(25);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Lease contract.
    pub lease: LeaseConfig,
    /// Push retry interval.
    pub push_retry: Duration,
    /// Push retry budget before a delivery error is declared.
    pub push_retries: u32,
    /// Post-PushAck release deadline.
    pub release_timeout: Duration,
    /// This server instance's incarnation number, stamped on every
    /// response. An operator restarting a crashed server must pass a
    /// larger value than the previous instance used, so clients can
    /// tell a restart from a long network outage.
    pub incarnation: u64,
    /// Start in the recovery grace window: refuse lock grants and
    /// metadata mutations for `τ(1+ε)` after startup, so every lease
    /// that might have been outstanding at the crash has expired on its
    /// holder's own clock (and that holder has quiesced) before any
    /// conflicting grant can be issued. Set this whenever the bind
    /// address may have served an earlier incarnation.
    pub recover: bool,
    /// Fault injection applied to this server's socket.
    pub faults: FaultConfig,
    /// Worker threads executing drained batches.
    pub workers: usize,
    /// Extra delay between a lease expiring and its locks being stolen,
    /// covering SAN writes the holder issued before it quiesced but
    /// that had not landed at expiry (the net mirror of
    /// `ServerConfig::harden_grace` on the sim side). Delaying the
    /// steal only widens the exclusion window, so Theorem 3.1 is
    /// unaffected; zero steals immediately.
    pub harden_grace: Duration,
    /// Modeled per-transaction service time, slept inside the state
    /// lock for every request except `KeepAlive`. Zero (the default)
    /// disables it. The capacity experiment (E19) sets this so the
    /// saturation resource is the modeled metadata device rather than
    /// the host CPU — on a single-core runner, N shard servers sleeping
    /// concurrently still model N independent devices, so the measured
    /// ceiling scales with shard count the way real spindles would.
    pub service: Duration,
    /// Kernel receive-buffer size to request (`SO_RCVBUF`), letting the
    /// socket absorb a burst while the reactor drains. `None` keeps the
    /// OS default.
    pub recv_buf: Option<usize>,
    /// Most datagrams drained per wakeup; a deeper backlog surfaces on
    /// the next wakeup so timers still fire between batches.
    pub max_batch: usize,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            lease: LeaseConfig::default(),
            push_retry: Duration::from_millis(200),
            push_retries: 3,
            release_timeout: Duration::from_secs(2),
            incarnation: 1,
            recover: false,
            faults: FaultConfig::none(),
            workers: 2,
            harden_grace: Duration::ZERO,
            service: Duration::ZERO,
            recv_buf: None,
            max_batch: 1024,
        }
    }
}

/// Timer events multiplexed into the reactor's poll timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimerEv {
    PushRetry(u64),
    ReleaseWait(u64),
    LeaseExpiry(NodeId),
    /// Harden grace between lease expiry and the steal (see
    /// [`NetServerConfig::harden_grace`]).
    StealGrace(NodeId),
    RecoveryDone,
}

struct PendingPush {
    addr: SocketAddr,
    dst: NodeId,
    session: SessionId,
    body: PushBody,
    retries_left: u32,
    acked: bool,
}

/// Counters exposed to tests/operators.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetServerStats {
    /// Requests executed.
    pub requests: u64,
    /// NACKs sent.
    pub nacks: u64,
    /// Duplicate requests answered from the replay cache (at-most-once
    /// in action: the request was *not* re-executed).
    pub replays: u64,
    /// Delivery errors declared.
    pub delivery_errors: u64,
    /// Steals performed.
    pub steals: u64,
    /// Requests refused because the recovery grace window was open.
    pub recovery_nacks: u64,
}

/// The server's protocol state, shared between the reactor thread (which
/// fires timers against it) and the worker pool (which executes drained
/// requests against it) under one mutex. All sends go through
/// the `outbox` field and happen after the lock is released.
pub struct LeaseServer {
    cfg: NetServerConfig,
    meta: MetaStore,
    locks: LockManager,
    authority: LeaseAuthority,
    sessions: SessionTable,
    /// addr ⟷ node id mapping (ids assigned on first contact).
    ids: HashMap<SocketAddr, NodeId>,
    addrs: HashMap<NodeId, SocketAddr>,
    next_id: u32,
    pushes: HashMap<u64, PendingPush>,
    next_push: u64,
    timers: TimerQueue<TimerEv>,
    incarnation: Incarnation,
    recovering: bool,
    stats: NetServerStats,
    /// Encoded responses awaiting transmission; drained by whichever
    /// thread holds the lock, sent after it unlocks.
    outbox: Vec<(SocketAddr, Bytes)>,
    /// Wall-clock vectored-batch execution histogram (when observed).
    batch_exec_ns: Option<Arc<Histogram>>,
    /// Scratch buffers for [`Self::deliver_grants`]: the grant-push path
    /// runs on the hot request loop, so each pass reuses these instead of
    /// collecting a fresh `Vec` (see `rotate_grants` and the criterion
    /// datapoint in `tank-bench`).
    grant_queue: std::collections::VecDeque<Grant>,
    grant_batch: Vec<Grant>,
    grant_touched: Vec<Ino>,
}

/// Move all queued grants into `batch` for one delivery pass, reusing
/// `batch`'s capacity. After warm-up neither side allocates: the queue
/// keeps its buffer across `drain`, and `clear` + `extend` refills the
/// batch in place. Public so the allocation claim is benchmarked
/// (`crates/bench/benches/batch_codec.rs`) rather than asserted.
pub fn rotate_grants(queue: &mut std::collections::VecDeque<Grant>, batch: &mut Vec<Grant>) {
    batch.clear();
    batch.extend(queue.drain(..));
}

/// What the reactor and workers share: the protocol state and the one
/// socket everything is sent on.
struct Shared {
    state: Mutex<LeaseServer>,
    sock: Arc<FaultySocket>,
}

impl Shared {
    /// Send everything the locked section queued, outside the lock.
    fn flush(&self, out: Vec<(SocketAddr, Bytes)>) {
        for (dst, bytes) in out {
            let _ = self.sock.send_to(&bytes, dst);
        }
    }

    /// [`Shared::flush`] draining a reusable buffer in place (keeps its
    /// capacity; send errors are the peer's loss, as everywhere).
    fn flush_from(&self, out: &mut Vec<(SocketAddr, Bytes)>) {
        for (dst, bytes) in out.drain(..) {
            let _ = self.sock.send_to(&bytes, dst);
        }
    }
}

/// Reactor-loop instruments (when observed).
struct ReactorObs {
    wakeups: Arc<Counter>,
    datagrams_per_wakeup: Arc<Histogram>,
    queue_depth: Arc<Histogram>,
}

/// Handle returned by [`LeaseServer::spawn`].
pub struct ServerHandle {
    /// The bound address (useful with port 0).
    pub addr: SocketAddr,
    join: std::thread::JoinHandle<NetServerStats>,
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Stop the server and return its final counters.
    pub fn stop(self) -> NetServerStats {
        self.stop.store(true, Ordering::SeqCst);
        self.join.join().unwrap_or_default()
    }
}

impl LeaseServer {
    /// Bind `addr` and run the server: one reactor thread plus
    /// `cfg.workers` execution threads.
    pub fn spawn(addr: &str, cfg: NetServerConfig) -> std::io::Result<ServerHandle> {
        Self::spawn_observed(addr, cfg, None)
    }

    /// [`spawn`](Self::spawn) with an observability registry: records the
    /// `server.batch.exec_ns` execution histogram and the
    /// `net.reactor.*` loop instruments.
    pub fn spawn_observed(
        addr: &str,
        cfg: NetServerConfig,
        registry: Option<&Arc<Registry>>,
    ) -> std::io::Result<ServerHandle> {
        let sock = Arc::new(FaultySocket::bind(addr, cfg.faults)?);
        let bound = sock.local_addr()?;
        if let Some(bytes) = cfg.recv_buf {
            // Best effort: rmem_max may clamp it, and a smaller backlog
            // only costs drops the retry machinery already absorbs.
            let _ = set_recv_buffer(&*sock, bytes);
        }
        sock.set_nonblocking(true)?;
        let workers = cfg.workers;
        let max_batch = cfg.max_batch.max(1);
        let mut server = LeaseServer {
            meta: MetaStore::new(1 << 16, 4096),
            locks: LockManager::new(),
            authority: LeaseAuthority::new(cfg.lease),
            sessions: SessionTable::new(),
            ids: HashMap::new(),
            addrs: HashMap::new(),
            next_id: 1,
            pushes: HashMap::new(),
            next_push: 1,
            timers: TimerQueue::new(),
            incarnation: Incarnation(cfg.incarnation),
            recovering: false,
            stats: NetServerStats::default(),
            outbox: Vec::new(),
            batch_exec_ns: registry.map(|r| r.histogram_def(&names::SERVER_BATCH_EXEC_NS)),
            grant_queue: std::collections::VecDeque::new(),
            grant_batch: Vec::new(),
            grant_touched: Vec::new(),
            cfg,
        };
        if server.cfg.recover {
            // Diskless recovery (§6): no lease state survived the crash,
            // so wait out one full server-side lease period before
            // granting anything. Every lease that might have been live at
            // the crash expires on its holder's clock within τ(1+ε) of
            // the crash — and the crash predates our startup.
            server.recovering = true;
            let grace = Duration::from_nanos(server.cfg.lease.server_timeout().0);
            server.timers.arm(grace, TimerEv::RecoveryDone);
        }
        let obs = registry.map(|r| ReactorObs {
            wakeups: r.counter_def(&names::NET_REACTOR_WAKEUPS),
            datagrams_per_wakeup: r.histogram_def(&names::NET_REACTOR_DATAGRAMS_PER_WAKEUP),
            queue_depth: r.histogram_def(&names::NET_REACTOR_WORKER_QUEUE_DEPTH),
        });
        let shared = Arc::new(Shared {
            state: Mutex::new(server),
            sock,
        });
        let pool = {
            let shared = shared.clone();
            WorkerPool::spawn(workers, move |recycler| {
                let shared = shared.clone();
                let mut requests: Vec<(SocketAddr, Request)> = Vec::new();
                let mut out: Vec<(SocketAddr, Bytes)> = Vec::new();
                move |batch: WakeupBatch| {
                    requests.clear();
                    decode_batch(&batch, &mut requests);
                    WorkerPool::recycle(&recycler, batch);
                    // One lock scope per request, not per batch: the
                    // modeled service time sleeps under the state lock,
                    // so a batch-wide scope would stall the reactor (and
                    // overflow the kernel receive buffer) for the whole
                    // batch and delay every reply to the end of it.
                    // Swapping the outbox out under the lock recycles one
                    // send buffer with zero steady-state allocation.
                    for (peer, req) in requests.drain(..) {
                        {
                            let mut st = locked(&shared.state);
                            st.on_request(peer, req);
                            std::mem::swap(&mut st.outbox, &mut out);
                        }
                        shared.flush_from(&mut out);
                    }
                }
            })
        };
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let join = std::thread::spawn(move || run_reactor(&shared, pool, max_batch, obs, &stop2));
        Ok(ServerHandle {
            addr: bound,
            join,
            stop,
        })
    }

    fn node_of(&mut self, addr: SocketAddr) -> NodeId {
        if let Some(&id) = self.ids.get(&addr) {
            return id;
        }
        let id = NodeId(self.next_id);
        self.next_id += 1;
        self.ids.insert(addr, id);
        self.addrs.insert(id, addr);
        id
    }

    /// Queue a message for transmission once the state lock drops.
    fn send(&mut self, addr: SocketAddr, msg: &NetMsg) {
        self.outbox.push((addr, msg.encoded()));
    }

    fn respond(
        &mut self,
        addr: SocketAddr,
        client: NodeId,
        session: SessionId,
        seq: ReqSeq,
        outcome: ResponseOutcome,
    ) {
        let resp = Response {
            dst: client,
            session,
            seq,
            incarnation: self.incarnation,
            outcome,
        };
        if resp.is_ack() {
            self.sessions.record_response(client, seq, resp.clone());
        } else {
            self.stats.nacks += 1;
        }
        self.send(addr, &NetMsg::Ctl(CtlMsg::Response(resp)));
    }

    fn on_timer(&mut self, ev: TimerEv) {
        match ev {
            TimerEv::PushRetry(push_seq) => {
                let Some(p) = self.pushes.get_mut(&push_seq) else {
                    return;
                };
                if p.acked {
                    return;
                }
                if p.retries_left == 0 {
                    let dst = p.dst;
                    self.delivery_error(dst);
                } else {
                    p.retries_left -= 1;
                    self.send_push(push_seq);
                }
            }
            TimerEv::ReleaseWait(push_seq) => {
                if let Some(p) = self.pushes.remove(&push_seq) {
                    let still_held = match &p.body {
                        PushBody::Demand { ino, epoch, .. } => {
                            self.locks.holding_epoch(p.dst, *ino) == Some(*epoch)
                        }
                        // An Invalidate push carries no lock to re-demand.
                        PushBody::Invalidate { .. } => false,
                    };
                    if still_held {
                        self.delivery_error(p.dst);
                    }
                }
            }
            TimerEv::LeaseExpiry(client) => {
                if self.authority.on_timer(client, mono_now()) {
                    if self.cfg.harden_grace > Duration::ZERO {
                        // Expiry already bans the client from acks; hold
                        // the steal back so in-flight hardens can land.
                        self.timers
                            .arm(self.cfg.harden_grace, TimerEv::StealGrace(client));
                    } else {
                        self.steal(client);
                    }
                }
            }
            TimerEv::StealGrace(client) => {
                // A Hello in the grace window clears the Expired
                // standing (new session), making the steal moot — the
                // Hello path already stole and regranted.
                if self.authority.standing_of(client) == ClientStanding::Expired {
                    self.steal(client);
                }
            }
            TimerEv::RecoveryDone => {
                self.recovering = false;
            }
        }
    }

    /// Take an expired client's locks. No SAN sits behind this server, so
    /// fencing is a no-op and the steal happens directly.
    fn steal(&mut self, client: NodeId) {
        self.stats.steals += 1;
        let (_stolen, grants) = self.locks.steal_all(client);
        self.deliver_grants(grants);
    }

    /// Requests that need the server's full authority: lock grants and
    /// metadata mutations. These are refused during the recovery grace
    /// window; everything else (Hello, KeepAlive, reads, releases,
    /// PushAcks) is served so surviving clients can wind down cleanly.
    fn needs_full_service(body: &RequestBody) -> bool {
        match body {
            RequestBody::LockAcquire { .. }
            | RequestBody::Create { .. }
            | RequestBody::Mkdir { .. }
            | RequestBody::Unlink { .. }
            | RequestBody::RenameLink { .. }
            | RequestBody::RenameUnlink { .. }
            | RequestBody::SetAttr { .. }
            | RequestBody::AllocBlocks { .. }
            | RequestBody::CommitWrite { .. }
            | RequestBody::WriteData { .. } => true,
            // A batch needs full service exactly when any element does.
            RequestBody::Batch(elems) => elems.iter().any(Self::needs_full_service),
            RequestBody::Hello { .. }
            | RequestBody::KeepAlive
            | RequestBody::Lookup { .. }
            | RequestBody::ReadDir { .. }
            | RequestBody::GetAttr { .. }
            | RequestBody::LockRelease { .. }
            | RequestBody::PushAck { .. }
            | RequestBody::ReadData { .. } => false,
        }
    }

    fn delivery_error(&mut self, client: NodeId) {
        self.stats.delivery_errors += 1;
        let done: Vec<u64> = self
            .pushes
            .iter()
            .filter(|(_, p)| p.dst == client)
            .map(|(k, _)| *k)
            .collect();
        for k in done {
            self.pushes.remove(&k);
        }
        if let Some(fires_at) = self.authority.on_delivery_error(client, mono_now()) {
            let delay = Duration::from_nanos(fires_at.0.saturating_sub(mono_now().0));
            self.timers.arm(delay, TimerEv::LeaseExpiry(client));
        }
    }

    fn send_push(&mut self, push_seq: u64) {
        let Some(p) = self.pushes.get(&push_seq) else {
            return;
        };
        let msg = NetMsg::Ctl(CtlMsg::Push(ServerPush {
            dst: p.dst,
            session: p.session,
            push_seq,
            body: p.body.clone(),
        }));
        let addr = p.addr;
        self.send(addr, &msg);
        let delay = self.cfg.push_retry;
        self.timers.arm(delay, TimerEv::PushRetry(push_seq));
    }

    /// Returns grants unblocked when the holder had no live session.
    fn start_demand(&mut self, holder: NodeId, ino: Ino, mode_needed: LockMode) -> Vec<Grant> {
        let dup = self.pushes.values().any(|p| {
            p.dst == holder && matches!(p.body, PushBody::Demand { ino: i, .. } if i == ino)
        });
        if dup {
            return Vec::new();
        }
        let (Some(session), Some(&addr)) = (self.sessions.current(holder), self.addrs.get(&holder))
        else {
            return self.locks.release(holder, ino, None);
        };
        let Some(epoch) = self.locks.holding_epoch(holder, ino) else {
            return Vec::new();
        };
        let push_seq = self.next_push;
        self.next_push += 1;
        self.pushes.insert(
            push_seq,
            PendingPush {
                addr,
                dst: holder,
                session,
                body: PushBody::Demand {
                    ino,
                    mode_needed,
                    epoch,
                },
                retries_left: self.cfg.push_retries,
                acked: false,
            },
        );
        self.send_push(push_seq);
        Vec::new()
    }

    fn deliver_grants(&mut self, grants: Vec<Grant>) {
        // The scratch buffers live on `self` so repeated passes reuse
        // their capacity; they are taken out for the loop because
        // `respond`/`start_demand` need `&mut self`.
        let mut queue = std::mem::take(&mut self.grant_queue);
        let mut batch = std::mem::take(&mut self.grant_batch);
        let mut touched = std::mem::take(&mut self.grant_touched);
        queue.extend(grants);
        while !queue.is_empty() {
            rotate_grants(&mut queue, &mut batch);
            touched.clear();
            touched.extend(batch.iter().map(|g| g.ino));
            touched.sort();
            touched.dedup();
            for g in batch.drain(..) {
                if let Some((session, seq)) = g.answers {
                    let Some(&addr) = self.addrs.get(&g.client) else {
                        continue;
                    };
                    let (blocks, size) = self.meta.file_extent(g.ino).unwrap_or((Vec::new(), 0));
                    self.respond(
                        addr,
                        g.client,
                        session,
                        seq,
                        ResponseOutcome::Acked(Ok(ReplyBody::LockGranted {
                            ino: g.ino,
                            mode: g.mode,
                            epoch: g.epoch,
                            blocks,
                            size,
                        })),
                    );
                }
            }
            for &ino in &touched {
                for (holder, mode) in self.locks.pending_demands(ino) {
                    let more = self.start_demand(holder, ino, mode);
                    queue.extend(more);
                }
            }
        }
        self.grant_queue = queue;
        self.grant_batch = batch;
        self.grant_touched = touched;
    }

    fn map_meta<T>(r: Result<T, MetaError>) -> Result<T, FsError> {
        r.map_err(|e| match e {
            MetaError::NotFound => FsError::NotFound,
            MetaError::Exists => FsError::Exists,
            MetaError::Invalid => FsError::Invalid,
            MetaError::NoSpace => FsError::NoSpace,
        })
    }

    fn on_request(&mut self, addr: SocketAddr, req: Request) {
        let client = self.node_of(addr);
        // The recovery gate comes first: while the grace window is open
        // nothing may be granted or mutated, no matter how fresh the
        // session looks. The NACK does not condemn the client's cache —
        // it means "retry after a delay".
        if self.recovering && Self::needs_full_service(&req.body) {
            self.stats.recovery_nacks += 1;
            return self.respond(
                addr,
                client,
                req.session,
                req.seq,
                ResponseOutcome::Nacked(NackReason::Recovering),
            );
        }
        match self.authority.standing_of(client) {
            ClientStanding::Good => {}
            ClientStanding::Suspect { .. } => {
                return self.respond(
                    addr,
                    client,
                    req.session,
                    req.seq,
                    ResponseOutcome::Nacked(NackReason::LeaseTimingOut),
                );
            }
            ClientStanding::Expired => {
                if !matches!(req.body, RequestBody::Hello { .. }) {
                    return self.respond(
                        addr,
                        client,
                        req.session,
                        req.seq,
                        ResponseOutcome::Nacked(NackReason::SessionExpired),
                    );
                }
            }
        }
        if matches!(req.body, RequestBody::Hello { .. }) {
            // Hello sits outside the session dedup window; duplicates
            // are suppressed by (client, seq) so a replayed datagram
            // cannot mint a second session and orphan the first.
            if let Some(resp) = self.sessions.hello_replay(client, req.seq) {
                self.stats.replays += 1;
                self.send(addr, &NetMsg::Ctl(CtlMsg::Response(resp)));
                return;
            }
            self.stats.requests += 1;
            let (_stolen, grants) = self.locks.steal_all(client);
            self.deliver_grants(grants);
            self.authority.on_new_session(client);
            let session = self.sessions.begin(client);
            let resp = Response {
                dst: client,
                session,
                seq: req.seq,
                incarnation: self.incarnation,
                outcome: ResponseOutcome::Acked(Ok(ReplyBody::HelloOk {
                    session,
                    map_epoch: 0,
                })),
            };
            self.sessions.record_hello(client, req.seq, resp.clone());
            self.send(addr, &NetMsg::Ctl(CtlMsg::Response(resp)));
            return;
        }
        match self.sessions.admit(client, req.session, req.seq) {
            Admission::Execute => {
                self.stats.requests += 1;
                self.execute(addr, client, req);
            }
            Admission::Replay(resp) => {
                self.stats.replays += 1;
                self.send(addr, &NetMsg::Ctl(CtlMsg::Response(*resp)));
            }
            Admission::InProgress => {}
            Admission::WrongSession => {
                self.respond(
                    addr,
                    client,
                    req.session,
                    req.seq,
                    ResponseOutcome::Nacked(NackReason::StaleSession),
                );
            }
        }
    }

    fn execute(&mut self, addr: SocketAddr, client: NodeId, req: Request) {
        let session = req.session;
        let seq = req.seq;
        match req.body {
            RequestBody::Hello { .. } => unreachable!(),
            RequestBody::LockAcquire { ino, mode } => {
                self.do_lock_acquire(addr, client, session, seq, ino, mode);
            }
            RequestBody::Batch(elems) => {
                self.do_batch(addr, client, session, seq, elems);
            }
            body => {
                let result = self.execute_sync(client, body);
                self.respond(addr, client, session, seq, ResponseOutcome::Acked(result));
            }
        }
    }

    /// Vectored batch execution: elements run in order, the first
    /// file-system error stops the rest, and the whole batch is answered
    /// with one ACK carrying per-element outcomes. Wall-clock execution
    /// time lands in `server.batch.exec_ns` when observed.
    fn do_batch(
        &mut self,
        addr: SocketAddr,
        client: NodeId,
        session: SessionId,
        seq: ReqSeq,
        elems: Vec<RequestBody>,
    ) {
        let t0 = Instant::now();
        let mut outcomes: Vec<Result<ReplyBody, FsError>> = Vec::with_capacity(elems.len());
        for body in elems {
            let result = if body.batchable() {
                self.execute_sync(client, body)
            } else {
                Err(FsError::Invalid)
            };
            let stop = result.is_err();
            outcomes.push(result);
            if stop {
                break;
            }
        }
        if let Some(h) = &self.batch_exec_ns {
            h.observe(t0.elapsed().as_nanos() as u64);
        }
        self.respond(
            addr,
            client,
            session,
            seq,
            ResponseOutcome::Acked(Ok(ReplyBody::Batch(outcomes))),
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn do_lock_acquire(
        &mut self,
        addr: SocketAddr,
        client: NodeId,
        session: SessionId,
        seq: ReqSeq,
        ino: Ino,
        mode: LockMode,
    ) {
        let result = if let Err(e) = Self::map_meta(self.meta.getattr(ino)) {
            Err(e)
        } else {
            match self.locks.request(client, ino, mode, session, seq) {
                LockRequestOutcome::Granted(g) => {
                    let (blocks, size) = self.meta.file_extent(ino).unwrap_or((Vec::new(), 0));
                    Ok(ReplyBody::LockGranted {
                        ino,
                        mode,
                        epoch: g.epoch,
                        blocks,
                        size,
                    })
                }
                LockRequestOutcome::AlreadyHeld(epoch, held) => {
                    let (blocks, size) = self.meta.file_extent(ino).unwrap_or((Vec::new(), 0));
                    Ok(ReplyBody::LockGranted {
                        ino,
                        mode: held,
                        epoch,
                        blocks,
                        size,
                    })
                }
                LockRequestOutcome::Queued { demand_from } => {
                    let mut grants = Vec::new();
                    for holder in demand_from {
                        grants.extend(self.start_demand(holder, ino, mode));
                    }
                    self.deliver_grants(grants);
                    return; // grant answers later
                }
            }
        };
        self.respond(addr, client, session, seq, ResponseOutcome::Acked(result));
    }

    /// Execute one synchronously-answerable body. `LockAcquire` (which
    /// may queue and answer later) and session shapes are `Invalid` here;
    /// [`Self::execute`] routes them first, and batches exclude them.
    fn execute_sync(&mut self, client: NodeId, body: RequestBody) -> Result<ReplyBody, FsError> {
        // Modeled metadata-device service time (see
        // [`NetServerConfig::service`]). KeepAlive is pure lease
        // maintenance and costs no device work.
        if !self.cfg.service.is_zero() && !matches!(body, RequestBody::KeepAlive) {
            std::thread::sleep(self.cfg.service);
        }
        let now = mono_now().0;
        match body {
            RequestBody::KeepAlive => Ok(ReplyBody::Ok),
            RequestBody::Create { parent, name } => {
                Self::map_meta(self.meta.create(parent, &name, now))
                    .map(|ino| ReplyBody::Created { ino })
            }
            RequestBody::Mkdir { parent, name } => {
                Self::map_meta(self.meta.mkdir(parent, &name, now))
                    .map(|ino| ReplyBody::Created { ino })
            }
            RequestBody::Lookup { parent, name } => Self::map_meta(self.meta.lookup(parent, &name))
                .map(|(ino, attr)| ReplyBody::Resolved { ino, attr }),
            RequestBody::ReadDir { dir } => {
                Self::map_meta(self.meta.readdir(dir)).map(|entries| ReplyBody::Dir { entries })
            }
            RequestBody::RenameLink { dir, name, ino } => {
                Self::map_meta(self.meta.rename_link(dir, &name, ino)).map(|_| ReplyBody::Ok)
            }
            RequestBody::RenameUnlink { dir, name } => {
                Self::map_meta(self.meta.rename_unlink(dir, &name)).map(|_| ReplyBody::Ok)
            }
            RequestBody::Unlink { parent, name } => match self.meta.lookup(parent, &name) {
                Ok((ino, _)) if self.locks.is_contended(ino) => Err(FsError::Unavailable),
                _ => Self::map_meta(self.meta.unlink(parent, &name)).map(|_| ReplyBody::Ok),
            },
            RequestBody::GetAttr { ino } => {
                Self::map_meta(self.meta.getattr(ino)).map(|attr| ReplyBody::Attr { attr })
            }
            RequestBody::SetAttr { ino, size } => Self::map_meta(self.meta.setattr(ino, size, now))
                .map(|attr| ReplyBody::Attr { attr }),
            RequestBody::LockRelease { ino, epoch } => {
                let grants = self.locks.release(client, ino, Some(epoch));
                let done: Vec<u64> = self
                    .pushes
                    .iter()
                    .filter(|(_, p)| {
                        p.dst == client
                            && matches!(p.body, PushBody::Demand { ino: i, .. } if i == ino)
                    })
                    .map(|(k, _)| *k)
                    .collect();
                for k in done {
                    self.pushes.remove(&k);
                }
                self.deliver_grants(grants);
                Ok(ReplyBody::Ok)
            }
            RequestBody::PushAck { push_seq } => {
                let mut arm_release = false;
                if let Some(p) = self.pushes.get_mut(&push_seq) {
                    if !p.acked {
                        p.acked = true;
                        arm_release = true;
                    }
                }
                if arm_release {
                    let delay = self.cfg.release_timeout;
                    self.timers.arm(delay, TimerEv::ReleaseWait(push_seq));
                }
                Ok(ReplyBody::Ok)
            }
            RequestBody::AllocBlocks { ino, count } => {
                if !self.locks.holds(client, ino, LockMode::Exclusive) {
                    Err(FsError::NotLocked)
                } else {
                    Self::map_meta(self.meta.alloc_blocks(ino, count))
                        .map(|blocks| ReplyBody::Allocated { blocks })
                }
            }
            RequestBody::CommitWrite { ino, new_size } => {
                if !self.locks.holds(client, ino, LockMode::Exclusive) {
                    Err(FsError::NotLocked)
                } else {
                    Self::map_meta(self.meta.commit_write(ino, new_size, now))
                        .map(|_| ReplyBody::Ok)
                }
            }
            RequestBody::ReadData { .. } | RequestBody::WriteData { .. } => {
                // No SAN behind this server; data stays with the client.
                Err(FsError::Invalid)
            }
            RequestBody::Hello { .. } | RequestBody::LockAcquire { .. } | RequestBody::Batch(_) => {
                Err(FsError::Invalid)
            }
        }
    }
}

/// The reactor loop: fire due timers, flush their output, wait for
/// readiness bounded by the next deadline, drain the backlog into one
/// batch, and hand it to the pool. Returns the final counters once the
/// stop flag is seen and the pool has drained.
fn run_reactor(
    shared: &Arc<Shared>,
    pool: WorkerPool,
    max_batch: usize,
    obs: Option<ReactorObs>,
    stop: &AtomicBool,
) -> NetServerStats {
    let mut poller = match Poller::new() {
        Ok(mut p) => match p.register(&*shared.sock, 0) {
            Ok(()) => p,
            Err(_) => sleeper_poller(),
        },
        Err(_) => sleeper_poller(),
    };
    let mut scratch = recv_scratch();
    let recycler = pool.recycler();
    loop {
        // Fire everything due and compute how long the next wait may be.
        let (wait, out) = {
            let mut st = locked(&shared.state);
            let now = Instant::now();
            while let Some(ev) = st.timers.pop_due(now) {
                st.on_timer(ev);
            }
            let wait = st
                .timers
                .next_deadline()
                .map(|at| at.saturating_duration_since(now))
                .unwrap_or(MAX_POLL)
                .clamp(MIN_POLL, MAX_POLL);
            (wait, std::mem::take(&mut st.outbox))
        };
        shared.flush(out);
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let ready = match poller.wait(wait) {
            Ok(tokens) => !tokens.is_empty(),
            Err(_) => false,
        };
        let mut drained = 0;
        if ready {
            let mut batch = pool.take_spare();
            drained = drain_ready(&shared.sock, &mut scratch, &mut batch, max_batch);
            if drained > 0 {
                let depth = pool.submit(batch);
                if let Some(o) = &obs {
                    o.queue_depth.observe(depth as u64);
                }
            } else {
                WorkerPool::recycle(&recycler, batch);
            }
        }
        poller.note_progress(drained > 0);
        if let Some(o) = &obs {
            o.wakeups.inc();
            o.datagrams_per_wakeup.observe(drained as u64);
        }
    }
    // Let queued batches finish before reading the counters.
    pool.shutdown();
    locked(&shared.state).stats
}

/// The portable fallback with the server socket's token registered.
fn sleeper_poller() -> Poller {
    let mut p = Poller::sleeper();
    p.register_token(0);
    p
}
