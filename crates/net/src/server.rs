//! The UDP lease/lock/metadata server (synchronous, single I/O thread).

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use tank_core::{ClientStanding, LeaseAuthority, LeaseConfig};
use tank_meta::{MetaError, MetaStore};
use tank_obs::{names, Histogram, Registry};
use tank_proto::message::{FsError, ReplyBody, RequestBody, ResponseOutcome};
use tank_proto::{
    CtlMsg, Incarnation, Ino, LockMode, NackReason, NetMsg, NodeId, PushBody, ReqSeq, Request,
    Response, ServerPush, SessionId, WireDecode, WireEncode,
};
use tank_server::lock::{Grant, LockManager, LockRequestOutcome};
use tank_server::session::{Admission, SessionTable};

use crate::fault::{FaultConfig, FaultySocket};
use crate::mono_now;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Lease contract.
    pub lease: LeaseConfig,
    /// Push retry interval.
    pub push_retry: Duration,
    /// Push retry budget before a delivery error is declared.
    pub push_retries: u32,
    /// Post-PushAck release deadline.
    pub release_timeout: Duration,
    /// This server instance's incarnation number, stamped on every
    /// response. An operator restarting a crashed server must pass a
    /// larger value than the previous instance used, so clients can
    /// tell a restart from a long network outage.
    pub incarnation: u64,
    /// Start in the recovery grace window: refuse lock grants and
    /// metadata mutations for `τ(1+ε)` after startup, so every lease
    /// that might have been outstanding at the crash has expired on its
    /// holder's own clock (and that holder has quiesced) before any
    /// conflicting grant can be issued. Set this whenever the bind
    /// address may have served an earlier incarnation.
    pub recover: bool,
    /// Fault injection applied to this server's socket.
    pub faults: FaultConfig,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            lease: LeaseConfig::default(),
            push_retry: Duration::from_millis(200),
            push_retries: 3,
            release_timeout: Duration::from_secs(2),
            incarnation: 1,
            recover: false,
            faults: FaultConfig::none(),
        }
    }
}

/// Timer events multiplexed into the single-threaded server loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimerEv {
    PushRetry(u64),
    ReleaseWait(u64),
    LeaseExpiry(NodeId),
    RecoveryDone,
}

/// Heap entry ordered so the earliest deadline pops first.
struct TimerEntry {
    at: Instant,
    seq: u64,
    ev: TimerEv,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

struct PendingPush {
    addr: SocketAddr,
    dst: NodeId,
    session: SessionId,
    body: PushBody,
    retries_left: u32,
    acked: bool,
}

/// Counters exposed to tests/operators.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetServerStats {
    /// Requests executed.
    pub requests: u64,
    /// NACKs sent.
    pub nacks: u64,
    /// Duplicate requests answered from the replay cache (at-most-once
    /// in action: the request was *not* re-executed).
    pub replays: u64,
    /// Delivery errors declared.
    pub delivery_errors: u64,
    /// Steals performed.
    pub steals: u64,
    /// Requests refused because the recovery grace window was open.
    pub recovery_nacks: u64,
}

/// The server state, owned by the run loop.
pub struct LeaseServer {
    cfg: NetServerConfig,
    sock: Arc<FaultySocket>,
    meta: MetaStore,
    locks: LockManager,
    authority: LeaseAuthority,
    sessions: SessionTable,
    /// addr ⟷ node id mapping (ids assigned on first contact).
    ids: HashMap<SocketAddr, NodeId>,
    addrs: HashMap<NodeId, SocketAddr>,
    next_id: u32,
    pushes: HashMap<u64, PendingPush>,
    next_push: u64,
    timers: BinaryHeap<TimerEntry>,
    next_timer: u64,
    incarnation: Incarnation,
    recovering: bool,
    stats: NetServerStats,
    /// Wall-clock vectored-batch execution histogram (when observed).
    batch_exec_ns: Option<Arc<Histogram>>,
    /// Scratch buffers for [`Self::deliver_grants`]: the grant-push path
    /// runs on the hot request loop, so each pass reuses these instead of
    /// collecting a fresh `Vec` (see `rotate_grants` and the criterion
    /// datapoint in `tank-bench`).
    grant_queue: VecDeque<Grant>,
    grant_batch: Vec<Grant>,
    grant_touched: Vec<Ino>,
}

/// Move all queued grants into `batch` for one delivery pass, reusing
/// `batch`'s capacity. After warm-up neither side allocates: the queue
/// keeps its buffer across `drain`, and `clear` + `extend` refills the
/// batch in place. Public so the allocation claim is benchmarked
/// (`crates/bench/benches/batch_codec.rs`) rather than asserted.
pub fn rotate_grants(queue: &mut VecDeque<Grant>, batch: &mut Vec<Grant>) {
    batch.clear();
    batch.extend(queue.drain(..));
}

/// Handle returned by [`LeaseServer::spawn`].
pub struct ServerHandle {
    /// The bound address (useful with port 0).
    pub addr: SocketAddr,
    join: std::thread::JoinHandle<NetServerStats>,
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Stop the server and return its final counters.
    pub fn stop(self) -> NetServerStats {
        self.stop.store(true, Ordering::SeqCst);
        self.join.join().unwrap_or_default()
    }
}

impl LeaseServer {
    /// Bind `addr` and run the server on a background thread.
    pub fn spawn(addr: &str, cfg: NetServerConfig) -> std::io::Result<ServerHandle> {
        Self::spawn_observed(addr, cfg, None)
    }

    /// [`spawn`](Self::spawn) with an observability registry: records the
    /// `server.batch.exec_ns` histogram for vectored batch execution.
    pub fn spawn_observed(
        addr: &str,
        cfg: NetServerConfig,
        registry: Option<&Arc<Registry>>,
    ) -> std::io::Result<ServerHandle> {
        let sock = Arc::new(FaultySocket::bind(addr, cfg.faults)?);
        let bound = sock.local_addr()?;
        let mut server = LeaseServer {
            sock,
            meta: MetaStore::new(1 << 16, 4096),
            locks: LockManager::new(),
            authority: LeaseAuthority::new(cfg.lease),
            sessions: SessionTable::new(),
            ids: HashMap::new(),
            addrs: HashMap::new(),
            next_id: 1,
            pushes: HashMap::new(),
            next_push: 1,
            timers: BinaryHeap::new(),
            next_timer: 1,
            incarnation: Incarnation(cfg.incarnation),
            recovering: false,
            stats: NetServerStats::default(),
            batch_exec_ns: registry.map(|r| r.histogram_def(&names::SERVER_BATCH_EXEC_NS)),
            grant_queue: VecDeque::new(),
            grant_batch: Vec::new(),
            grant_touched: Vec::new(),
            cfg,
        };
        if server.cfg.recover {
            // Diskless recovery (§6): no lease state survived the crash,
            // so wait out one full server-side lease period before
            // granting anything. Every lease that might have been live at
            // the crash expires on its holder's clock within τ(1+ε) of
            // the crash — and the crash predates our startup.
            server.recovering = true;
            let grace = Duration::from_nanos(server.cfg.lease.server_timeout().0);
            server.arm(grace, TimerEv::RecoveryDone);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let join = std::thread::spawn(move || server.run(&stop2));
        Ok(ServerHandle {
            addr: bound,
            join,
            stop,
        })
    }

    fn run(mut self, stop: &AtomicBool) -> NetServerStats {
        let mut buf = vec![0u8; 64 * 1024];
        while !stop.load(Ordering::SeqCst) {
            self.fire_due_timers();
            let wait = self
                .timers
                .peek()
                .map(|t| t.at.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(10))
                .clamp(Duration::from_millis(1), Duration::from_millis(10));
            let _ = self.sock.set_read_timeout(Some(wait));
            match self.sock.recv_from(&mut buf) {
                Ok((n, peer)) => {
                    let mut bytes = Bytes::copy_from_slice(&buf[..n]);
                    if let Ok(NetMsg::Ctl(CtlMsg::Request(req))) = NetMsg::decode(&mut bytes) {
                        self.on_request(peer, req);
                    }
                }
                Err(_) => continue, // timeout or transient error
            }
        }
        self.stats
    }

    fn arm(&mut self, after: Duration, ev: TimerEv) {
        let seq = self.next_timer;
        self.next_timer += 1;
        self.timers.push(TimerEntry {
            at: Instant::now() + after,
            seq,
            ev,
        });
    }

    fn fire_due_timers(&mut self) {
        loop {
            match self.timers.peek() {
                Some(t) if t.at <= Instant::now() => {}
                _ => break,
            }
            let Some(t) = self.timers.pop() else { break };
            self.on_timer(t.ev);
        }
    }

    fn on_timer(&mut self, ev: TimerEv) {
        match ev {
            TimerEv::PushRetry(push_seq) => {
                let Some(p) = self.pushes.get_mut(&push_seq) else {
                    return;
                };
                if p.acked {
                    return;
                }
                if p.retries_left == 0 {
                    let dst = p.dst;
                    self.delivery_error(dst);
                } else {
                    p.retries_left -= 1;
                    self.send_push(push_seq);
                }
            }
            TimerEv::ReleaseWait(push_seq) => {
                if let Some(p) = self.pushes.remove(&push_seq) {
                    let still_held = match &p.body {
                        PushBody::Demand { ino, epoch, .. } => {
                            self.locks.holding_epoch(p.dst, *ino) == Some(*epoch)
                        }
                        // An Invalidate push carries no lock to re-demand.
                        PushBody::Invalidate { .. } => false,
                    };
                    if still_held {
                        self.delivery_error(p.dst);
                    }
                }
            }
            TimerEv::LeaseExpiry(client) => {
                if self.authority.on_timer(client, mono_now()) {
                    // No SAN here: fencing is a no-op; steal directly.
                    self.stats.steals += 1;
                    let (_stolen, grants) = self.locks.steal_all(client);
                    self.deliver_grants(grants);
                }
            }
            TimerEv::RecoveryDone => {
                self.recovering = false;
            }
        }
    }

    fn node_of(&mut self, addr: SocketAddr) -> NodeId {
        if let Some(&id) = self.ids.get(&addr) {
            return id;
        }
        let id = NodeId(self.next_id);
        self.next_id += 1;
        self.ids.insert(addr, id);
        self.addrs.insert(id, addr);
        id
    }

    fn send(&self, addr: SocketAddr, msg: &NetMsg) {
        let bytes = msg.encoded();
        let _ = self.sock.send_to(&bytes, addr);
    }

    fn respond(
        &mut self,
        addr: SocketAddr,
        client: NodeId,
        session: SessionId,
        seq: ReqSeq,
        outcome: ResponseOutcome,
    ) {
        let resp = Response {
            dst: client,
            session,
            seq,
            incarnation: self.incarnation,
            outcome,
        };
        if resp.is_ack() {
            self.sessions.record_response(client, seq, resp.clone());
        } else {
            self.stats.nacks += 1;
        }
        self.send(addr, &NetMsg::Ctl(CtlMsg::Response(resp)));
    }

    /// Requests that need the server's full authority: lock grants and
    /// metadata mutations. These are refused during the recovery grace
    /// window; everything else (Hello, KeepAlive, reads, releases,
    /// PushAcks) is served so surviving clients can wind down cleanly.
    fn needs_full_service(body: &RequestBody) -> bool {
        match body {
            RequestBody::LockAcquire { .. }
            | RequestBody::Create { .. }
            | RequestBody::Mkdir { .. }
            | RequestBody::Unlink { .. }
            | RequestBody::RenameLink { .. }
            | RequestBody::RenameUnlink { .. }
            | RequestBody::SetAttr { .. }
            | RequestBody::AllocBlocks { .. }
            | RequestBody::CommitWrite { .. }
            | RequestBody::WriteData { .. } => true,
            // A batch needs full service exactly when any element does.
            RequestBody::Batch(elems) => elems.iter().any(Self::needs_full_service),
            RequestBody::Hello { .. }
            | RequestBody::KeepAlive
            | RequestBody::Lookup { .. }
            | RequestBody::ReadDir { .. }
            | RequestBody::GetAttr { .. }
            | RequestBody::LockRelease { .. }
            | RequestBody::PushAck { .. }
            | RequestBody::ReadData { .. } => false,
        }
    }

    fn delivery_error(&mut self, client: NodeId) {
        self.stats.delivery_errors += 1;
        let done: Vec<u64> = self
            .pushes
            .iter()
            .filter(|(_, p)| p.dst == client)
            .map(|(k, _)| *k)
            .collect();
        for k in done {
            self.pushes.remove(&k);
        }
        if let Some(fires_at) = self.authority.on_delivery_error(client, mono_now()) {
            let delay = Duration::from_nanos(fires_at.0.saturating_sub(mono_now().0));
            self.arm(delay, TimerEv::LeaseExpiry(client));
        }
    }

    fn send_push(&mut self, push_seq: u64) {
        let Some(p) = self.pushes.get(&push_seq) else {
            return;
        };
        let msg = NetMsg::Ctl(CtlMsg::Push(ServerPush {
            dst: p.dst,
            session: p.session,
            push_seq,
            body: p.body.clone(),
        }));
        let addr = p.addr;
        self.send(addr, &msg);
        let delay = self.cfg.push_retry;
        self.arm(delay, TimerEv::PushRetry(push_seq));
    }

    /// Returns grants unblocked when the holder had no live session.
    fn start_demand(&mut self, holder: NodeId, ino: Ino, mode_needed: LockMode) -> Vec<Grant> {
        let dup = self.pushes.values().any(|p| {
            p.dst == holder && matches!(p.body, PushBody::Demand { ino: i, .. } if i == ino)
        });
        if dup {
            return Vec::new();
        }
        let (Some(session), Some(&addr)) = (self.sessions.current(holder), self.addrs.get(&holder))
        else {
            return self.locks.release(holder, ino, None);
        };
        let Some(epoch) = self.locks.holding_epoch(holder, ino) else {
            return Vec::new();
        };
        let push_seq = self.next_push;
        self.next_push += 1;
        self.pushes.insert(
            push_seq,
            PendingPush {
                addr,
                dst: holder,
                session,
                body: PushBody::Demand {
                    ino,
                    mode_needed,
                    epoch,
                },
                retries_left: self.cfg.push_retries,
                acked: false,
            },
        );
        self.send_push(push_seq);
        Vec::new()
    }

    fn deliver_grants(&mut self, grants: Vec<Grant>) {
        // The scratch buffers live on `self` so repeated passes reuse
        // their capacity; they are taken out for the loop because
        // `respond`/`start_demand` need `&mut self`.
        let mut queue = std::mem::take(&mut self.grant_queue);
        let mut batch = std::mem::take(&mut self.grant_batch);
        let mut touched = std::mem::take(&mut self.grant_touched);
        queue.extend(grants);
        while !queue.is_empty() {
            rotate_grants(&mut queue, &mut batch);
            touched.clear();
            touched.extend(batch.iter().map(|g| g.ino));
            touched.sort();
            touched.dedup();
            for g in batch.drain(..) {
                if let Some((session, seq)) = g.answers {
                    let Some(&addr) = self.addrs.get(&g.client) else {
                        continue;
                    };
                    let (blocks, size) = self.meta.file_extent(g.ino).unwrap_or((Vec::new(), 0));
                    self.respond(
                        addr,
                        g.client,
                        session,
                        seq,
                        ResponseOutcome::Acked(Ok(ReplyBody::LockGranted {
                            ino: g.ino,
                            mode: g.mode,
                            epoch: g.epoch,
                            blocks,
                            size,
                        })),
                    );
                }
            }
            for &ino in &touched {
                for (holder, mode) in self.locks.pending_demands(ino) {
                    let more = self.start_demand(holder, ino, mode);
                    queue.extend(more);
                }
            }
        }
        self.grant_queue = queue;
        self.grant_batch = batch;
        self.grant_touched = touched;
    }

    fn map_meta<T>(r: Result<T, MetaError>) -> Result<T, FsError> {
        r.map_err(|e| match e {
            MetaError::NotFound => FsError::NotFound,
            MetaError::Exists => FsError::Exists,
            MetaError::Invalid => FsError::Invalid,
            MetaError::NoSpace => FsError::NoSpace,
        })
    }

    fn on_request(&mut self, addr: SocketAddr, req: Request) {
        let client = self.node_of(addr);
        // The recovery gate comes first: while the grace window is open
        // nothing may be granted or mutated, no matter how fresh the
        // session looks. The NACK does not condemn the client's cache —
        // it means "retry after a delay".
        if self.recovering && Self::needs_full_service(&req.body) {
            self.stats.recovery_nacks += 1;
            return self.respond(
                addr,
                client,
                req.session,
                req.seq,
                ResponseOutcome::Nacked(NackReason::Recovering),
            );
        }
        match self.authority.standing_of(client) {
            ClientStanding::Good => {}
            ClientStanding::Suspect { .. } => {
                return self.respond(
                    addr,
                    client,
                    req.session,
                    req.seq,
                    ResponseOutcome::Nacked(NackReason::LeaseTimingOut),
                );
            }
            ClientStanding::Expired => {
                if !matches!(req.body, RequestBody::Hello { .. }) {
                    return self.respond(
                        addr,
                        client,
                        req.session,
                        req.seq,
                        ResponseOutcome::Nacked(NackReason::SessionExpired),
                    );
                }
            }
        }
        if matches!(req.body, RequestBody::Hello { .. }) {
            // Hello sits outside the session dedup window; duplicates
            // are suppressed by (client, seq) so a replayed datagram
            // cannot mint a second session and orphan the first.
            if let Some(resp) = self.sessions.hello_replay(client, req.seq) {
                self.stats.replays += 1;
                self.send(addr, &NetMsg::Ctl(CtlMsg::Response(resp)));
                return;
            }
            self.stats.requests += 1;
            let (_stolen, grants) = self.locks.steal_all(client);
            self.deliver_grants(grants);
            self.authority.on_new_session(client);
            let session = self.sessions.begin(client);
            let resp = Response {
                dst: client,
                session,
                seq: req.seq,
                incarnation: self.incarnation,
                outcome: ResponseOutcome::Acked(Ok(ReplyBody::HelloOk {
                    session,
                    map_epoch: 0,
                })),
            };
            self.sessions.record_hello(client, req.seq, resp.clone());
            self.send(addr, &NetMsg::Ctl(CtlMsg::Response(resp)));
            return;
        }
        match self.sessions.admit(client, req.session, req.seq) {
            Admission::Execute => {
                self.stats.requests += 1;
                self.execute(addr, client, req);
            }
            Admission::Replay(resp) => {
                self.stats.replays += 1;
                self.send(addr, &NetMsg::Ctl(CtlMsg::Response(*resp)));
            }
            Admission::InProgress => {}
            Admission::WrongSession => {
                self.respond(
                    addr,
                    client,
                    req.session,
                    req.seq,
                    ResponseOutcome::Nacked(NackReason::StaleSession),
                );
            }
        }
    }

    fn execute(&mut self, addr: SocketAddr, client: NodeId, req: Request) {
        let session = req.session;
        let seq = req.seq;
        match req.body {
            RequestBody::Hello { .. } => unreachable!(),
            RequestBody::LockAcquire { ino, mode } => {
                self.do_lock_acquire(addr, client, session, seq, ino, mode);
            }
            RequestBody::Batch(elems) => {
                self.do_batch(addr, client, session, seq, elems);
            }
            body => {
                let result = self.execute_sync(client, body);
                self.respond(addr, client, session, seq, ResponseOutcome::Acked(result));
            }
        }
    }

    /// Vectored batch execution: elements run in order, the first
    /// file-system error stops the rest, and the whole batch is answered
    /// with one ACK carrying per-element outcomes. Wall-clock execution
    /// time lands in `server.batch.exec_ns` when observed.
    fn do_batch(
        &mut self,
        addr: SocketAddr,
        client: NodeId,
        session: SessionId,
        seq: ReqSeq,
        elems: Vec<RequestBody>,
    ) {
        let t0 = Instant::now();
        let mut outcomes: Vec<Result<ReplyBody, FsError>> = Vec::with_capacity(elems.len());
        for body in elems {
            let result = if body.batchable() {
                self.execute_sync(client, body)
            } else {
                Err(FsError::Invalid)
            };
            let stop = result.is_err();
            outcomes.push(result);
            if stop {
                break;
            }
        }
        if let Some(h) = &self.batch_exec_ns {
            h.observe(t0.elapsed().as_nanos() as u64);
        }
        self.respond(
            addr,
            client,
            session,
            seq,
            ResponseOutcome::Acked(Ok(ReplyBody::Batch(outcomes))),
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn do_lock_acquire(
        &mut self,
        addr: SocketAddr,
        client: NodeId,
        session: SessionId,
        seq: ReqSeq,
        ino: Ino,
        mode: LockMode,
    ) {
        let result = if let Err(e) = Self::map_meta(self.meta.getattr(ino)) {
            Err(e)
        } else {
            match self.locks.request(client, ino, mode, session, seq) {
                LockRequestOutcome::Granted(g) => {
                    let (blocks, size) = self.meta.file_extent(ino).unwrap_or((Vec::new(), 0));
                    Ok(ReplyBody::LockGranted {
                        ino,
                        mode,
                        epoch: g.epoch,
                        blocks,
                        size,
                    })
                }
                LockRequestOutcome::AlreadyHeld(epoch, held) => {
                    let (blocks, size) = self.meta.file_extent(ino).unwrap_or((Vec::new(), 0));
                    Ok(ReplyBody::LockGranted {
                        ino,
                        mode: held,
                        epoch,
                        blocks,
                        size,
                    })
                }
                LockRequestOutcome::Queued { demand_from } => {
                    let mut grants = Vec::new();
                    for holder in demand_from {
                        grants.extend(self.start_demand(holder, ino, mode));
                    }
                    self.deliver_grants(grants);
                    return; // grant answers later
                }
            }
        };
        self.respond(addr, client, session, seq, ResponseOutcome::Acked(result));
    }

    /// Execute one synchronously-answerable body. `LockAcquire` (which
    /// may queue and answer later) and session shapes are `Invalid` here;
    /// [`Self::execute`] routes them first, and batches exclude them.
    fn execute_sync(&mut self, client: NodeId, body: RequestBody) -> Result<ReplyBody, FsError> {
        let now = mono_now().0;
        match body {
            RequestBody::KeepAlive => Ok(ReplyBody::Ok),
            RequestBody::Create { parent, name } => {
                Self::map_meta(self.meta.create(parent, &name, now))
                    .map(|ino| ReplyBody::Created { ino })
            }
            RequestBody::Mkdir { parent, name } => {
                Self::map_meta(self.meta.mkdir(parent, &name, now))
                    .map(|ino| ReplyBody::Created { ino })
            }
            RequestBody::Lookup { parent, name } => Self::map_meta(self.meta.lookup(parent, &name))
                .map(|(ino, attr)| ReplyBody::Resolved { ino, attr }),
            RequestBody::ReadDir { dir } => {
                Self::map_meta(self.meta.readdir(dir)).map(|entries| ReplyBody::Dir { entries })
            }
            RequestBody::RenameLink { dir, name, ino } => {
                Self::map_meta(self.meta.rename_link(dir, &name, ino)).map(|_| ReplyBody::Ok)
            }
            RequestBody::RenameUnlink { dir, name } => {
                Self::map_meta(self.meta.rename_unlink(dir, &name)).map(|_| ReplyBody::Ok)
            }
            RequestBody::Unlink { parent, name } => match self.meta.lookup(parent, &name) {
                Ok((ino, _)) if self.locks.is_contended(ino) => Err(FsError::Unavailable),
                _ => Self::map_meta(self.meta.unlink(parent, &name)).map(|_| ReplyBody::Ok),
            },
            RequestBody::GetAttr { ino } => {
                Self::map_meta(self.meta.getattr(ino)).map(|attr| ReplyBody::Attr { attr })
            }
            RequestBody::SetAttr { ino, size } => Self::map_meta(self.meta.setattr(ino, size, now))
                .map(|attr| ReplyBody::Attr { attr }),
            RequestBody::LockRelease { ino, epoch } => {
                let grants = self.locks.release(client, ino, Some(epoch));
                let done: Vec<u64> = self
                    .pushes
                    .iter()
                    .filter(|(_, p)| {
                        p.dst == client
                            && matches!(p.body, PushBody::Demand { ino: i, .. } if i == ino)
                    })
                    .map(|(k, _)| *k)
                    .collect();
                for k in done {
                    self.pushes.remove(&k);
                }
                self.deliver_grants(grants);
                Ok(ReplyBody::Ok)
            }
            RequestBody::PushAck { push_seq } => {
                let mut arm_release = false;
                if let Some(p) = self.pushes.get_mut(&push_seq) {
                    if !p.acked {
                        p.acked = true;
                        arm_release = true;
                    }
                }
                if arm_release {
                    let delay = self.cfg.release_timeout;
                    self.arm(delay, TimerEv::ReleaseWait(push_seq));
                }
                Ok(ReplyBody::Ok)
            }
            RequestBody::AllocBlocks { ino, count } => {
                if !self.locks.holds(client, ino, LockMode::Exclusive) {
                    Err(FsError::NotLocked)
                } else {
                    Self::map_meta(self.meta.alloc_blocks(ino, count))
                        .map(|blocks| ReplyBody::Allocated { blocks })
                }
            }
            RequestBody::CommitWrite { ino, new_size } => {
                if !self.locks.holds(client, ino, LockMode::Exclusive) {
                    Err(FsError::NotLocked)
                } else {
                    Self::map_meta(self.meta.commit_write(ino, new_size, now))
                        .map(|_| ReplyBody::Ok)
                }
            }
            RequestBody::ReadData { .. } | RequestBody::WriteData { .. } => {
                // No SAN behind this server; data stays with the client.
                Err(FsError::Invalid)
            }
            RequestBody::Hello { .. } | RequestBody::LockAcquire { .. } | RequestBody::Batch(_) => {
                Err(FsError::Invalid)
            }
        }
    }
}
