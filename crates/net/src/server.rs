//! The UDP lease/lock/metadata server.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;

use bytes::Bytes;
use tank_core::{ClientStanding, LeaseAuthority, LeaseConfig};
use tank_meta::{MetaError, MetaStore};
use tank_proto::message::{FsError, ReplyBody, RequestBody, ResponseOutcome};
use tank_proto::{
    CtlMsg, Ino, LockMode, NackReason, NetMsg, NodeId, PushBody, ReqSeq, Request, Response,
    ServerPush, SessionId, WireDecode, WireEncode,
};
use tank_server::lock::{Grant, LockManager, LockRequestOutcome};
use tank_server::session::{Admission, SessionTable};
use tokio::net::UdpSocket;
use tokio::sync::mpsc;

use crate::mono_now;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Lease contract.
    pub lease: LeaseConfig,
    /// Push retry interval.
    pub push_retry: std::time::Duration,
    /// Push retry budget before a delivery error is declared.
    pub push_retries: u32,
    /// Post-PushAck release deadline.
    pub release_timeout: std::time::Duration,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            lease: LeaseConfig::default(),
            push_retry: std::time::Duration::from_millis(200),
            push_retries: 3,
            release_timeout: std::time::Duration::from_secs(2),
        }
    }
}

/// Internal commands multiplexed into the single-threaded server loop.
enum Cmd {
    Datagram(SocketAddr, NetMsg),
    PushRetry(u64),
    ReleaseWait(u64),
    LeaseExpiry(NodeId),
}

struct PendingPush {
    addr: SocketAddr,
    dst: NodeId,
    session: SessionId,
    body: PushBody,
    retries_left: u32,
    acked: bool,
}

/// Counters exposed to tests/operators.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetServerStats {
    /// Requests executed.
    pub requests: u64,
    /// NACKs sent.
    pub nacks: u64,
    /// Delivery errors declared.
    pub delivery_errors: u64,
    /// Steals performed.
    pub steals: u64,
}

/// The server state, owned by the run loop.
pub struct LeaseServer {
    cfg: NetServerConfig,
    sock: Arc<UdpSocket>,
    tx: mpsc::UnboundedSender<Cmd>,
    meta: MetaStore,
    locks: LockManager,
    authority: LeaseAuthority,
    sessions: SessionTable,
    /// addr ⟷ node id mapping (ids assigned on first contact).
    ids: HashMap<SocketAddr, NodeId>,
    addrs: HashMap<NodeId, SocketAddr>,
    next_id: u32,
    pushes: HashMap<u64, PendingPush>,
    next_push: u64,
    stats: NetServerStats,
}

/// Handle returned by [`LeaseServer::spawn`].
pub struct ServerHandle {
    /// The bound address (useful with port 0).
    pub addr: SocketAddr,
    join: tokio::task::JoinHandle<NetServerStats>,
    shutdown: mpsc::UnboundedSender<()>,
}

impl ServerHandle {
    /// Stop the server and return its final counters.
    pub async fn stop(self) -> NetServerStats {
        let _ = self.shutdown.send(());
        self.join.await.unwrap_or_default()
    }
}

impl LeaseServer {
    /// Bind `addr` and run the server on a background task.
    pub async fn spawn(addr: &str, cfg: NetServerConfig) -> std::io::Result<ServerHandle> {
        let sock = Arc::new(UdpSocket::bind(addr).await?);
        let bound = sock.local_addr()?;
        let (tx, rx) = mpsc::unbounded_channel();
        let (stop_tx, stop_rx) = mpsc::unbounded_channel();
        let server = LeaseServer {
            cfg,
            sock: sock.clone(),
            tx: tx.clone(),
            meta: MetaStore::new(1 << 16, 4096),
            locks: LockManager::new(),
            authority: LeaseAuthority::new(LeaseConfig::default()),
            sessions: SessionTable::new(),
            ids: HashMap::new(),
            addrs: HashMap::new(),
            next_id: 1,
            pushes: HashMap::new(),
            next_push: 1,
            stats: NetServerStats::default(),
        };
        let mut server = server;
        server.authority = LeaseAuthority::new(server.cfg.lease);
        let join = tokio::spawn(server.run(rx, stop_rx));
        // Receiver task: socket → channel.
        tokio::spawn(async move {
            let mut buf = vec![0u8; 64 * 1024];
            loop {
                let Ok((n, peer)) = sock.recv_from(&mut buf).await else { break };
                let mut bytes = Bytes::copy_from_slice(&buf[..n]);
                if let Ok(msg) = NetMsg::decode(&mut bytes) {
                    if tx.send(Cmd::Datagram(peer, msg)).is_err() {
                        break;
                    }
                }
            }
        });
        Ok(ServerHandle { addr: bound, join, shutdown: stop_tx })
    }

    async fn run(
        mut self,
        mut rx: mpsc::UnboundedReceiver<Cmd>,
        mut stop: mpsc::UnboundedReceiver<()>,
    ) -> NetServerStats {
        loop {
            tokio::select! {
                cmd = rx.recv() => match cmd {
                    Some(cmd) => self.handle(cmd).await,
                    None => break,
                },
                _ = stop.recv() => break,
            }
        }
        self.stats
    }

    fn node_of(&mut self, addr: SocketAddr) -> NodeId {
        if let Some(&id) = self.ids.get(&addr) {
            return id;
        }
        let id = NodeId(self.next_id);
        self.next_id += 1;
        self.ids.insert(addr, id);
        self.addrs.insert(id, addr);
        id
    }

    async fn send(&self, addr: SocketAddr, msg: &NetMsg) {
        let bytes = msg.encoded();
        let _ = self.sock.send_to(&bytes, addr).await;
    }

    async fn respond(
        &mut self,
        addr: SocketAddr,
        client: NodeId,
        session: SessionId,
        seq: ReqSeq,
        outcome: ResponseOutcome,
    ) {
        let resp = Response { dst: client, session, seq, outcome };
        if resp.is_ack() {
            self.sessions.record_response(client, seq, resp.clone());
        } else {
            self.stats.nacks += 1;
        }
        self.send(addr, &NetMsg::Ctl(CtlMsg::Response(resp))).await;
    }

    async fn handle(&mut self, cmd: Cmd) {
        match cmd {
            Cmd::Datagram(addr, NetMsg::Ctl(CtlMsg::Request(req))) => {
                self.on_request(addr, req).await;
            }
            Cmd::Datagram(..) => {}
            Cmd::PushRetry(push_seq) => {
                let Some(p) = self.pushes.get_mut(&push_seq) else { return };
                if p.acked {
                    return;
                }
                if p.retries_left == 0 {
                    let dst = p.dst;
                    self.delivery_error(dst);
                } else {
                    p.retries_left -= 1;
                    self.send_push(push_seq).await;
                }
            }
            Cmd::ReleaseWait(push_seq) => {
                if let Some(p) = self.pushes.remove(&push_seq) {
                    let still_held = match &p.body {
                        PushBody::Demand { ino, epoch, .. } => {
                            self.locks.holding_epoch(p.dst, *ino) == Some(*epoch)
                        }
                        _ => false,
                    };
                    if still_held {
                        self.delivery_error(p.dst);
                    }
                }
            }
            Cmd::LeaseExpiry(client) => {
                if self.authority.on_timer(client, mono_now()) {
                    // No SAN here: fencing is a no-op; steal directly.
                    self.stats.steals += 1;
                    let (_stolen, grants) = self.locks.steal_all(client);
                    self.deliver_grants(grants).await;
                }
            }
        }
    }

    fn delivery_error(&mut self, client: NodeId) {
        self.stats.delivery_errors += 1;
        let done: Vec<u64> = self
            .pushes
            .iter()
            .filter(|(_, p)| p.dst == client)
            .map(|(k, _)| *k)
            .collect();
        for k in done {
            self.pushes.remove(&k);
        }
        if let Some(fires_at) = self.authority.on_delivery_error(client, mono_now()) {
            let delay = std::time::Duration::from_nanos(fires_at.0.saturating_sub(mono_now().0));
            let tx = self.tx.clone();
            tokio::spawn(async move {
                tokio::time::sleep(delay).await;
                let _ = tx.send(Cmd::LeaseExpiry(client));
            });
        }
    }

    async fn send_push(&mut self, push_seq: u64) {
        let Some(p) = self.pushes.get(&push_seq) else { return };
        let msg = NetMsg::Ctl(CtlMsg::Push(ServerPush {
            dst: p.dst,
            session: p.session,
            push_seq,
            body: p.body.clone(),
        }));
        let addr = p.addr;
        self.send(addr, &msg).await;
        let tx = self.tx.clone();
        let delay = self.cfg.push_retry;
        tokio::spawn(async move {
            tokio::time::sleep(delay).await;
            let _ = tx.send(Cmd::PushRetry(push_seq));
        });
    }

    /// Returns grants unblocked when the holder had no live session.
    async fn start_demand(&mut self, holder: NodeId, ino: Ino, mode_needed: LockMode) -> Vec<Grant> {
        let dup = self.pushes.values().any(|p| {
            p.dst == holder && matches!(p.body, PushBody::Demand { ino: i, .. } if i == ino)
        });
        if dup {
            return Vec::new();
        }
        let (Some(session), Some(&addr)) =
            (self.sessions.current(holder), self.addrs.get(&holder))
        else {
            return self.locks.release(holder, ino, None);
        };
        let Some(epoch) = self.locks.holding_epoch(holder, ino) else {
            return Vec::new();
        };
        let push_seq = self.next_push;
        self.next_push += 1;
        self.pushes.insert(
            push_seq,
            PendingPush {
                addr,
                dst: holder,
                session,
                body: PushBody::Demand { ino, mode_needed, epoch },
                retries_left: self.cfg.push_retries,
                acked: false,
            },
        );
        self.send_push(push_seq).await;
        Vec::new()
    }

    async fn deliver_grants(&mut self, grants: Vec<Grant>) {
        let mut queue: std::collections::VecDeque<Grant> = grants.into();
        while !queue.is_empty() {
            let mut touched: Vec<Ino> = Vec::new();
            let batch: Vec<Grant> = queue.drain(..).collect();
            touched.extend(batch.iter().map(|g| g.ino));
            touched.sort();
            touched.dedup();
            for g in batch {
                if let Some((session, seq)) = g.answers {
                let Some(&addr) = self.addrs.get(&g.client) else { continue };
                let (blocks, size) = self.meta.file_extent(g.ino).unwrap_or((Vec::new(), 0));
                self.respond(
                    addr,
                    g.client,
                    session,
                    seq,
                    ResponseOutcome::Acked(Ok(ReplyBody::LockGranted {
                        ino: g.ino,
                        mode: g.mode,
                        epoch: g.epoch,
                        blocks,
                        size,
                    })),
                )
                .await;
                }
            }
            for ino in touched {
                for (holder, mode) in self.locks.pending_demands(ino) {
                    let more = self.start_demand(holder, ino, mode).await;
                    queue.extend(more);
                }
            }
        }
    }

    fn map_meta<T>(r: Result<T, MetaError>) -> Result<T, FsError> {
        r.map_err(|e| match e {
            MetaError::NotFound => FsError::NotFound,
            MetaError::Exists => FsError::Exists,
            MetaError::Invalid => FsError::Invalid,
            MetaError::NoSpace => FsError::NoSpace,
        })
    }

    async fn on_request(&mut self, addr: SocketAddr, req: Request) {
        let client = self.node_of(addr);
        match self.authority.standing_of(client) {
            ClientStanding::Good => {}
            ClientStanding::Suspect { .. } => {
                return self
                    .respond(
                        addr,
                        client,
                        req.session,
                        req.seq,
                        ResponseOutcome::Nacked(NackReason::LeaseTimingOut),
                    )
                    .await;
            }
            ClientStanding::Expired => {
                if !matches!(req.body, RequestBody::Hello) {
                    return self
                        .respond(
                            addr,
                            client,
                            req.session,
                            req.seq,
                            ResponseOutcome::Nacked(NackReason::SessionExpired),
                        )
                        .await;
                }
            }
        }
        if matches!(req.body, RequestBody::Hello) {
            self.stats.requests += 1;
            let (_stolen, grants) = self.locks.steal_all(client);
            self.deliver_grants(grants).await;
            self.authority.on_new_session(client);
            let session = self.sessions.begin(client);
            return self
                .respond(
                    addr,
                    client,
                    session,
                    req.seq,
                    ResponseOutcome::Acked(Ok(ReplyBody::HelloOk { session })),
                )
                .await;
        }
        match self.sessions.admit(client, req.session, req.seq) {
            Admission::Execute => {
                self.stats.requests += 1;
                self.execute(addr, client, req).await;
            }
            Admission::Replay(resp) => {
                self.send(addr, &NetMsg::Ctl(CtlMsg::Response(*resp))).await;
            }
            Admission::InProgress => {}
            Admission::WrongSession => {
                self.respond(
                    addr,
                    client,
                    req.session,
                    req.seq,
                    ResponseOutcome::Nacked(NackReason::StaleSession),
                )
                .await;
            }
        }
    }

    async fn execute(&mut self, addr: SocketAddr, client: NodeId, req: Request) {
        let now = mono_now().0;
        let session = req.session;
        let seq = req.seq;
        let result: Result<ReplyBody, FsError> = match req.body {
            RequestBody::Hello => unreachable!(),
            RequestBody::KeepAlive => Ok(ReplyBody::Ok),
            RequestBody::Create { parent, name } => {
                Self::map_meta(self.meta.create(parent, &name, now)).map(|ino| ReplyBody::Created { ino })
            }
            RequestBody::Mkdir { parent, name } => {
                Self::map_meta(self.meta.mkdir(parent, &name, now)).map(|ino| ReplyBody::Created { ino })
            }
            RequestBody::Lookup { parent, name } => Self::map_meta(self.meta.lookup(parent, &name))
                .map(|(ino, attr)| ReplyBody::Resolved { ino, attr }),
            RequestBody::ReadDir { dir } => {
                Self::map_meta(self.meta.readdir(dir)).map(|entries| ReplyBody::Dir { entries })
            }
            RequestBody::Unlink { parent, name } => {
                match self.meta.lookup(parent, &name) {
                    Ok((ino, _)) if self.locks.is_contended(ino) => Err(FsError::Unavailable),
                    _ => Self::map_meta(self.meta.unlink(parent, &name)).map(|_| ReplyBody::Ok),
                }
            }
            RequestBody::GetAttr { ino } => {
                Self::map_meta(self.meta.getattr(ino)).map(|attr| ReplyBody::Attr { attr })
            }
            RequestBody::SetAttr { ino, size } => {
                Self::map_meta(self.meta.setattr(ino, size, now)).map(|attr| ReplyBody::Attr { attr })
            }
            RequestBody::LockAcquire { ino, mode } => {
                if let Err(e) = Self::map_meta(self.meta.getattr(ino)) {
                    Err(e)
                } else {
                    match self.locks.request(client, ino, mode, session, seq) {
                        LockRequestOutcome::Granted(g) => {
                            let (blocks, size) =
                                self.meta.file_extent(ino).unwrap_or((Vec::new(), 0));
                            Ok(ReplyBody::LockGranted { ino, mode, epoch: g.epoch, blocks, size })
                        }
                        LockRequestOutcome::AlreadyHeld(epoch, held) => {
                            let (blocks, size) =
                                self.meta.file_extent(ino).unwrap_or((Vec::new(), 0));
                            Ok(ReplyBody::LockGranted { ino, mode: held, epoch, blocks, size })
                        }
                        LockRequestOutcome::Queued { demand_from } => {
                            let mut grants = Vec::new();
                            for holder in demand_from {
                                grants.extend(self.start_demand(holder, ino, mode).await);
                            }
                            self.deliver_grants(grants).await;
                            return; // grant answers later
                        }
                    }
                }
            }
            RequestBody::LockRelease { ino, epoch } => {
                let grants = self.locks.release(client, ino, Some(epoch));
                let done: Vec<u64> = self
                    .pushes
                    .iter()
                    .filter(|(_, p)| {
                        p.dst == client
                            && matches!(p.body, PushBody::Demand { ino: i, .. } if i == ino)
                    })
                    .map(|(k, _)| *k)
                    .collect();
                for k in done {
                    self.pushes.remove(&k);
                }
                self.deliver_grants(grants).await;
                Ok(ReplyBody::Ok)
            }
            RequestBody::PushAck { push_seq } => {
                if let Some(p) = self.pushes.get_mut(&push_seq) {
                    if !p.acked {
                        p.acked = true;
                        let tx = self.tx.clone();
                        let delay = self.cfg.release_timeout;
                        tokio::spawn(async move {
                            tokio::time::sleep(delay).await;
                            let _ = tx.send(Cmd::ReleaseWait(push_seq));
                        });
                    }
                }
                Ok(ReplyBody::Ok)
            }
            RequestBody::AllocBlocks { ino, count } => {
                if !self.locks.holds(client, ino, LockMode::Exclusive) {
                    Err(FsError::NotLocked)
                } else {
                    Self::map_meta(self.meta.alloc_blocks(ino, count))
                        .map(|blocks| ReplyBody::Allocated { blocks })
                }
            }
            RequestBody::CommitWrite { ino, new_size } => {
                if !self.locks.holds(client, ino, LockMode::Exclusive) {
                    Err(FsError::NotLocked)
                } else {
                    Self::map_meta(self.meta.commit_write(ino, new_size, now)).map(|_| ReplyBody::Ok)
                }
            }
            RequestBody::ReadData { .. } | RequestBody::WriteData { .. } => {
                // No SAN behind this server; data stays with the client.
                Err(FsError::Invalid)
            }
        };
        self.respond(addr, client, session, seq, ResponseOutcome::Acked(result)).await;
    }
}
