//! Readiness polling for the event-driven net layer.
//!
//! [`Poller`] multiplexes any number of nonblocking UDP sockets behind
//! one blocking wait. On Linux it is a minimal raw-syscall shim over
//! `epoll` — three `extern "C"` declarations against the libc that `std`
//! already links, no new dependency. Everywhere else (and on demand, for
//! tests) it degrades to an adaptive sleep: the caller try-recvs every
//! registered socket per wakeup, and the sleep between wakeups grows
//! while the sockets stay idle and collapses to zero the moment traffic
//! appears. Both backends present the same contract: `wait` returns the
//! tokens that *may* be readable, never blocking past the caller's
//! timeout, and the caller drains with nonblocking reads until
//! `WouldBlock` — so a spurious token costs one empty syscall, not a
//! stall.

use std::io;
use std::time::Duration;

#[cfg(target_os = "linux")]
use std::os::fd::{AsRawFd, RawFd};

/// Maximum events harvested per `epoll_wait` call. More ready sockets
/// than this simply surface on the next wakeup.
const MAX_EVENTS: usize = 256;

/// Linux raw-syscall shim. `std` links libc on every Linux target, so
/// declaring the four symbols we need is enough — no crate required.
#[cfg(target_os = "linux")]
mod sys {
    /// `EPOLLIN`.
    pub const EPOLLIN: u32 = 0x1;
    /// `EPOLL_CTL_ADD`.
    pub const EPOLL_CTL_ADD: i32 = 1;
    /// `EPOLL_CLOEXEC`.
    pub const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// `struct epoll_event`. The kernel ABI packs it on x86_64 only.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(
            epfd: i32,
            events: *mut EpollEvent,
            maxevents: i32,
            timeout_ms: i32,
        ) -> i32;
        pub fn close(fd: i32) -> i32;
        pub fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const u8, optlen: u32)
            -> i32;
    }

    /// `SOL_SOCKET`.
    pub const SOL_SOCKET: i32 = 1;
    /// `SO_RCVBUF`.
    pub const SO_RCVBUF: i32 = 8;
}

/// Grow a socket's kernel receive buffer (Linux: `SO_RCVBUF`; clamped by
/// `net.core.rmem_max`). A capacity-test server needs more than the
/// default ~208 KiB of datagram backlog to ride out drain latency; on
/// other platforms this is a no-op and the default backlog stands.
#[cfg(target_os = "linux")]
pub fn set_recv_buffer(sock: &impl AsRawFd, bytes: usize) -> io::Result<()> {
    let val = bytes as i32;
    let rc = unsafe {
        sys::setsockopt(
            sock.as_raw_fd(),
            sys::SOL_SOCKET,
            sys::SO_RCVBUF,
            (&val as *const i32).cast(),
            std::mem::size_of::<i32>() as u32,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// No-op off Linux (see the Linux variant).
#[cfg(not(target_os = "linux"))]
pub fn set_recv_buffer<T>(_sock: &T, _bytes: usize) -> io::Result<()> {
    Ok(())
}

#[cfg(target_os = "linux")]
struct Epoll {
    epfd: i32,
    events: Vec<sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

/// Adaptive-sleep fallback state: the idle streak drives the next sleep.
struct Sleeper {
    /// Registered tokens, all reported "maybe ready" each wakeup.
    tokens: Vec<u64>,
    /// Consecutive wakeups that drained nothing.
    idle_streak: u32,
}

impl Sleeper {
    /// Sleep span for the current idle streak: 0 while traffic flows
    /// (pure busy-poll), escalating 50 µs → 100 µs → … once idle.
    fn backoff(&self) -> Duration {
        if self.idle_streak == 0 {
            return Duration::ZERO;
        }
        let us = 50u64.saturating_mul(1 << self.idle_streak.min(6).saturating_sub(1));
        Duration::from_micros(us)
    }
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(Epoll),
    Sleep(Sleeper),
}

/// A readiness multiplexer over nonblocking sockets.
pub struct Poller {
    backend: Backend,
    ready: Vec<u64>,
}

impl Poller {
    /// The platform's best backend: `epoll` on Linux, the adaptive
    /// sleeper elsewhere.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                backend: Backend::Epoll(Epoll {
                    epfd,
                    events: vec![sys::EpollEvent { events: 0, data: 0 }; MAX_EVENTS],
                }),
                ready: Vec::with_capacity(MAX_EVENTS),
            })
        }
        #[cfg(not(target_os = "linux"))]
        Ok(Self::sleeper())
    }

    /// The portable adaptive-sleep backend, constructible on every
    /// platform so the fallback path stays tested where `epoll` is the
    /// default.
    pub fn sleeper() -> Poller {
        Poller {
            backend: Backend::Sleep(Sleeper {
                tokens: Vec::new(),
                idle_streak: 0,
            }),
            ready: Vec::with_capacity(MAX_EVENTS),
        }
    }

    /// Register a socket under `token`. The socket must outlive the
    /// poller's use of it and should already be nonblocking.
    #[cfg(target_os = "linux")]
    pub fn register(&mut self, sock: &impl AsRawFd, token: u64) -> io::Result<()> {
        self.register_fd(sock.as_raw_fd(), token)
    }

    #[cfg(target_os = "linux")]
    fn register_fd(&mut self, fd: RawFd, token: u64) -> io::Result<()> {
        match &mut self.backend {
            Backend::Epoll(ep) => {
                let mut ev = sys::EpollEvent {
                    events: sys::EPOLLIN,
                    data: token,
                };
                let rc = unsafe { sys::epoll_ctl(ep.epfd, sys::EPOLL_CTL_ADD, fd, &mut ev) };
                if rc < 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(())
            }
            Backend::Sleep(s) => {
                s.tokens.push(token);
                Ok(())
            }
        }
    }

    /// Register (portable variant: the sleeper needs only the token).
    #[cfg(not(target_os = "linux"))]
    pub fn register<T>(&mut self, _sock: &T, token: u64) -> io::Result<()> {
        match &mut self.backend {
            Backend::Sleep(s) => {
                s.tokens.push(token);
                Ok(())
            }
        }
    }

    /// Register a token on the sleeper backend regardless of platform
    /// (tests exercising the fallback on Linux).
    pub fn register_token(&mut self, token: u64) {
        if let Backend::Sleep(s) = &mut self.backend {
            s.tokens.push(token);
        }
    }

    /// Block until at least one registered socket may be readable or
    /// `timeout` elapses, then return the candidate tokens (empty on
    /// timeout). Epoll reports exactly the ready sockets; the sleeper
    /// reports everything registered and relies on the caller's
    /// nonblocking drain.
    pub fn wait(&mut self, timeout: Duration) -> io::Result<&[u64]> {
        self.ready.clear();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => {
                // `Duration::ZERO` is an explicit nonblocking check;
                // anything else rounds *up*, so a sub-millisecond
                // timeout never degenerates into a busy-spin.
                let ms = if timeout.is_zero() {
                    0
                } else {
                    timeout.as_millis().clamp(1, i32::MAX as u128) as i32
                };
                let n = loop {
                    let rc = unsafe {
                        sys::epoll_wait(ep.epfd, ep.events.as_mut_ptr(), MAX_EVENTS as i32, ms)
                    };
                    if rc >= 0 {
                        break rc as usize;
                    }
                    let err = io::Error::last_os_error();
                    if err.kind() != io::ErrorKind::Interrupted {
                        return Err(err);
                    }
                };
                for ev in &ep.events[..n] {
                    self.ready.push(ev.data);
                }
            }
            Backend::Sleep(s) => {
                let nap = s.backoff().min(timeout);
                if !nap.is_zero() {
                    std::thread::sleep(nap);
                }
                self.ready.extend_from_slice(&s.tokens);
            }
        }
        Ok(&self.ready)
    }

    /// Tell the poller whether the last drain made progress. Drives the
    /// sleeper's backoff; a no-op for epoll, whose readiness is exact.
    pub fn note_progress(&mut self, drained_any: bool) {
        if let Backend::Sleep(s) = &mut self.backend {
            if drained_any {
                s.idle_streak = 0;
            } else {
                s.idle_streak = s.idle_streak.saturating_add(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::UdpSocket;

    #[test]
    fn epoll_reports_a_ready_socket_and_times_out_when_idle() {
        let sock = UdpSocket::bind("127.0.0.1:0").expect("bind");
        sock.set_nonblocking(true).expect("nonblocking");
        let mut poller = Poller::new().expect("poller");
        poller.register(&sock, 42).expect("register");

        // Idle: times out empty.
        let t0 = std::time::Instant::now();
        let ready = poller.wait(Duration::from_millis(20)).expect("wait");
        assert!(ready.is_empty(), "nothing readable yet");
        assert!(t0.elapsed() >= Duration::from_millis(15), "waited it out");

        // A datagram arrives: the token comes back promptly.
        let tx = UdpSocket::bind("127.0.0.1:0").expect("bind tx");
        tx.send_to(b"ping", sock.local_addr().expect("addr"))
            .expect("send");
        let ready = poller.wait(Duration::from_millis(500)).expect("wait");
        assert_eq!(ready, &[42]);
    }

    #[test]
    fn sleeper_reports_registered_tokens_and_backs_off_when_idle() {
        let mut poller = Poller::sleeper();
        poller.register_token(7);
        let ready = poller.wait(Duration::from_millis(5)).expect("wait");
        assert_eq!(ready, &[7], "sleeper always offers the tokens");
        // Idle streaks grow the nap but never past the caller's timeout.
        for _ in 0..10 {
            poller.note_progress(false);
            let t0 = std::time::Instant::now();
            let _ = poller.wait(Duration::from_millis(10)).expect("wait");
            assert!(t0.elapsed() <= Duration::from_millis(50));
        }
        poller.note_progress(true);
    }
}
