//! `tankcli` — a one-shot command-line client for `tankd`.
//!
//! ```sh
//! tankcli 127.0.0.1:4800 mkdir /docs
//! tankcli 127.0.0.1:4800 create /docs/a.txt
//! tankcli 127.0.0.1:4800 ls /docs
//! tankcli 127.0.0.1:4800 stat /docs/a.txt
//! tankcli 127.0.0.1:4800 lock /docs/a.txt SECS  # hold X for SECS
//! tankcli 127.0.0.1:4800 bench 1000             # request RTT microbenchmark
//! ```

use tank_core::LeaseConfig;
use tank_net::TankClient;
use tank_proto::{Ino, LockMode};

fn usage() -> ! {
    eprintln!(
        "usage: tankcli ADDR (ls|stat|create|mkdir|rm) PATH | ADDR lock PATH SECS | ADDR bench N"
    );
    std::process::exit(2);
}

/// Resolve an absolute path, returning (parent, leaf-name, leaf-ino-if-any).
fn resolve(
    client: &TankClient,
    path: &str,
) -> Result<(Ino, String, Option<Ino>), Box<dyn std::error::Error>> {
    let parts: Vec<&str> = path.split('/').filter(|p| !p.is_empty()).collect();
    let mut cur = client.root();
    for part in parts.iter().take(parts.len().saturating_sub(1)) {
        cur = client.lookup(cur, part)?.0;
    }
    let leaf = parts.last().map(|s| s.to_string()).unwrap_or_default();
    let leaf_ino = if leaf.is_empty() {
        Some(cur)
    } else {
        client.lookup(cur, &leaf).ok().map(|(i, _)| i)
    };
    Ok((cur, leaf, leaf_ino))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    let addr = &args[0];
    let cmd = args[1].as_str();
    let client = TankClient::connect(addr, LeaseConfig::default())?;

    match (cmd, args.get(2)) {
        ("ls", Some(path)) => {
            let (_, _, ino) = resolve(&client, path)?;
            let dir = ino.ok_or("no such directory")?;
            for (name, ino) in client.readdir(dir)? {
                println!("{ino}\t{name}");
            }
        }
        ("stat", Some(path)) => {
            let (_, _, ino) = resolve(&client, path)?;
            let ino = ino.ok_or("no such path")?;
            let attr = client.getattr(ino)?;
            println!(
                "{ino}: size={} version={} {}",
                attr.size,
                attr.version,
                if attr.is_dir { "dir" } else { "file" }
            );
        }
        ("create", Some(path)) => {
            let (parent, name, _) = resolve(&client, path)?;
            let ino = client.create(parent, &name)?;
            println!("created {ino}");
        }
        ("mkdir", Some(path)) => {
            let (parent, name, _) = resolve(&client, path)?;
            let ino = client.mkdir(parent, &name)?;
            println!("created {ino}");
        }
        ("rm", Some(path)) => {
            let (parent, name, _) = resolve(&client, path)?;
            client.unlink(parent, &name)?;
            println!("removed {path}");
        }
        ("lock", Some(path)) => {
            let (_, _, ino) = resolve(&client, path)?;
            let ino = ino.ok_or("no such path")?;
            let secs: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(30);
            let epoch = client.lock(ino, LockMode::Exclusive)?;
            println!("holding X lock on {ino} (epoch {epoch:?}) for {secs}s");
            println!(
                "(watch another tankcli lock the same path: this client auto-releases on demand)"
            );
            std::thread::sleep(std::time::Duration::from_secs(secs));
            let _ = client.release(ino, epoch);
        }
        ("bench", Some(n)) => {
            let n: u32 = n.parse()?;
            let start = std::time::Instant::now();
            for _ in 0..n {
                client.keep_alive()?;
            }
            let total = start.elapsed();
            println!(
                "{n} request round-trips in {total:?} ({:.1} µs/req); lease renewals: {}",
                total.as_micros() as f64 / n as f64,
                client.renewals()
            );
        }
        _ => usage(),
    }
    Ok(())
}
