//! `tankd` — a Storage Tank lease/lock/metadata server on UDP.
//!
//! ```sh
//! tankd [BIND_ADDR]          # default 127.0.0.1:4800
//! ```
//!
//! Serves the control-network protocol: sessions, metadata, data locks
//! with demand/revocation, and the paper's passive lease authority.
//! Ctrl-C to stop (prints final counters).

use tank_net::server::{LeaseServer, NetServerConfig};

#[tokio::main(flavor = "current_thread")]
async fn main() -> std::io::Result<()> {
    let addr = std::env::args().nth(1).unwrap_or_else(|| "127.0.0.1:4800".into());
    let handle = LeaseServer::spawn(&addr, NetServerConfig::default()).await?;
    eprintln!("tankd listening on {}", handle.addr);
    tokio::signal::ctrl_c().await?;
    let stats = handle.stop().await;
    eprintln!("tankd stopped: {stats:?}");
    Ok(())
}
