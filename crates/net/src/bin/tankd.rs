//! `tankd` — a Storage Tank lease/lock/metadata server on UDP.
//!
//! ```sh
//! tankd [BIND_ADDR] [--recover] [--incarnation N]
//! ```
//!
//! Defaults to `127.0.0.1:4800`, incarnation 1. Serves the
//! control-network protocol: sessions, metadata, data locks with
//! demand/revocation, and the paper's passive lease authority.
//!
//! `--recover` starts the server inside the fail-stop recovery grace
//! window: lock grants and metadata mutations are refused for `τ(1+ε)`
//! so every lease the previous incarnation might have granted has
//! expired on its holder's clock first. Pass it (with a bumped
//! `--incarnation`) whenever this address may have served before.

use tank_net::server::{LeaseServer, NetServerConfig};

fn main() -> std::io::Result<()> {
    let mut addr = "127.0.0.1:4800".to_string();
    let mut cfg = NetServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--recover" => cfg.recover = true,
            "--incarnation" => {
                let n = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--incarnation needs a number");
                    std::process::exit(2);
                });
                cfg.incarnation = n;
            }
            other => addr = other.to_string(),
        }
    }
    let handle = LeaseServer::spawn(&addr, cfg)?;
    eprintln!("tankd listening on {} (ctrl-c to stop)", handle.addr);
    // The server runs on its own thread; park forever (ctrl-c kills us).
    loop {
        std::thread::park();
    }
}
