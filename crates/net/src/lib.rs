//! Real-network binding of the Storage Tank lease protocol.
//!
//! The simulator proves the protocol's properties; this crate proves the
//! protocol is not simulator-bound. The *same* sans-io state machines —
//! [`tank_core::ClientLease`], [`tank_core::LeaseAuthority`], the lock
//! manager, session table and metadata store — are driven here by OS
//! threads, wall-clock timers and UDP datagrams instead of virtual time
//! and a virtual network:
//!
//! * [`LeaseServer`] — a metadata/lock/lease server on a UDP socket
//!   (`tankd` is its binary form), event-driven: a readiness reactor
//!   ([`poll`] + [`reactor`]) batch-drains every ready datagram per
//!   wakeup and feeds a fixed worker pool, with all protocol timers
//!   multiplexed into the poll timeout (DESIGN.md §15). No SAN exists
//!   here, so the data path is metadata + locks only and fencing is
//!   recorded rather than enforced; everything lease-related is the real
//!   protocol: opportunistic renewal, NACKs for suspect clients,
//!   `τ(1+ε)` timers, steal-on-expiry behind an optional harden grace,
//!   and the fail-stop recovery grace window (`--recover`): a restarted
//!   server refuses grants and mutations for `τ(1+ε)` so every lease
//!   that might have been outstanding at the crash has expired on its
//!   holder's clock.
//! * [`TankClient`] — a synchronous client: request/retry with stable
//!   sequence numbers (at-most-once at the server) under exponential
//!   backoff with jitter, implicit lease renewal on every acknowledged
//!   request, a keep-alive thread driven by the lease machine's own wakeup
//!   schedule, automatic demand handling, and server-restart detection via
//!   the incarnation number stamped on every response.
//! * [`FaultySocket`] — a seeded fault-injection shim (drop / duplicate /
//!   delay, per direction) both endpoints use as their transport, so the
//!   retry and dedup machinery is exercised against real datagram loss.
//!
//! Timestamps given to the sans-io cores are monotonic nanoseconds from a
//! process-local epoch ([`mono_now`]), which is exactly the "local clock"
//! the paper's rate-synchronization assumption speaks about.

pub mod client;
pub mod fault;
pub mod poll;
pub mod reactor;
pub mod server;

pub use client::TankClient;
pub use fault::{DirFaults, FaultConfig, FaultySocket};
pub use poll::Poller;
pub use server::{LeaseServer, ServerHandle};

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use tank_sim::LocalNs;

/// Monotonic local time in nanoseconds since the first call in this
/// process — the node's "local clock".
pub fn mono_now() -> LocalNs {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    LocalNs(epoch.elapsed().as_nanos() as u64)
}

/// Lock a mutex, recovering the data if a panicking thread poisoned it.
///
/// The net-layer mutexes guard plain state (counters, maps, RNGs) whose
/// invariants hold between statements; a panic elsewhere must degrade
/// into that thread's failure, not poison-propagate panics through every
/// socket path (tank-lint L3 bans `unwrap` there).
pub(crate) fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mono_now_is_monotone() {
        let a = mono_now();
        let b = mono_now();
        assert!(b >= a);
    }
}
