//! Real-network binding of the Storage Tank lease protocol.
//!
//! The simulator proves the protocol's properties; this crate proves the
//! protocol is not simulator-bound. The *same* sans-io state machines —
//! [`tank_core::ClientLease`], [`tank_core::LeaseAuthority`], the lock
//! manager, session table and metadata store — are driven here by tokio
//! timers and UDP datagrams instead of virtual time and a virtual network:
//!
//! * [`LeaseServer`] — a metadata/lock/lease server on a UDP socket
//!   (`tankd` is its binary form). No SAN exists here, so the data path is
//!   metadata + locks only and fencing is recorded rather than enforced;
//!   everything lease-related is the real protocol: opportunistic renewal,
//!   NACKs for suspect clients, `τ(1+ε)` timers, steal-on-expiry.
//! * [`TankClient`] — an async client: request/retry with stable sequence
//!   numbers (at-most-once at the server), implicit lease renewal on every
//!   acknowledged request, a keep-alive task driven by the lease machine's
//!   own wakeup schedule, and automatic demand handling.
//!
//! Timestamps given to the sans-io cores are monotonic nanoseconds from a
//! process-local epoch ([`mono_now`]), which is exactly the "local clock"
//! the paper's rate-synchronization assumption speaks about.

pub mod client;
pub mod server;

pub use client::TankClient;
pub use server::{LeaseServer, ServerHandle};

use std::sync::OnceLock;
use std::time::Instant;

use tank_sim::LocalNs;

/// Monotonic local time in nanoseconds since the first call in this
/// process — the node's "local clock".
pub fn mono_now() -> LocalNs {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    LocalNs(epoch.elapsed().as_nanos() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mono_now_is_monotone() {
        let a = mono_now();
        let b = mono_now();
        assert!(b >= a);
    }
}
