//! Building blocks of the event-driven server: a deadline heap that
//! multiplexes every timer into the poll timeout, a batch-drain of ready
//! datagrams with reusable scratch, and a fixed worker pool.
//!
//! The server composes them as one readiness loop (DESIGN.md §15): the
//! reactor thread waits on the socket with `timeout = next timer
//! deadline`, drains *every* ready datagram into an arena per wakeup,
//! and hands the batch to a worker; workers decode off the shared lock,
//! execute against the protocol state under it, and reply outside it
//! again. Timers — push retries, release waits, lease expiries, steal
//! grace, recovery — fire on the reactor thread between wakeups, so no
//! path ever sleeps per event.

use std::collections::{BinaryHeap, VecDeque};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use tank_proto::{CtlMsg, NetMsg, Request, WireDecode, MAX_DATAGRAM};

use crate::fault::FaultySocket;
use crate::locked;

// ------------------------------------------------------------- timers

/// Heap entry ordered so the earliest deadline pops first.
struct TimerEntry<E> {
    at: Instant,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for TimerEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for TimerEntry<E> {}
impl<E> PartialOrd for TimerEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for TimerEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// All of a server's timers in one deadline heap. The reactor asks for
/// [`next_deadline`](Self::next_deadline) to bound its poll timeout and
/// pops due events after every wakeup — timer multiplexing instead of a
/// sleeping thread per event.
pub struct TimerQueue<E> {
    heap: BinaryHeap<TimerEntry<E>>,
    next_seq: u64,
}

impl<E> Default for TimerQueue<E> {
    fn default() -> Self {
        TimerQueue::new()
    }
}

impl<E> TimerQueue<E> {
    /// Empty queue.
    pub fn new() -> TimerQueue<E> {
        TimerQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Arm `ev` to fire `after` from now. Ties fire in arm order.
    pub fn arm(&mut self, after: Duration, ev: E) {
        self.arm_at(Instant::now() + after, ev);
    }

    /// Arm `ev` at an absolute deadline.
    pub fn arm_at(&mut self, at: Instant, ev: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(TimerEntry { at, seq, ev });
    }

    /// The earliest pending deadline, if any.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.heap.peek().map(|t| t.at)
    }

    /// Pop the next event due at or before `now`.
    pub fn pop_due(&mut self, now: Instant) -> Option<E> {
        match self.heap.peek() {
            Some(t) if t.at <= now => self.heap.pop().map(|t| t.ev),
            _ => None,
        }
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

// -------------------------------------------------------------- drain

/// Everything one wakeup drained off the socket: raw datagram bytes
/// packed end-to-end in `arena`, framed by `(offset, len, peer)`. Both
/// vectors keep their capacity across wakeups (the `rotate_grants`
/// scratch pattern applied to the receive path), so a warm drain
/// allocates nothing.
pub struct WakeupBatch {
    /// Datagram payloads, packed contiguously.
    pub arena: Vec<u8>,
    /// One `(offset, len, peer)` frame per datagram, in arrival order.
    pub frames: Vec<(usize, usize, SocketAddr)>,
}

impl Default for WakeupBatch {
    fn default() -> Self {
        WakeupBatch::new()
    }
}

impl WakeupBatch {
    /// Empty batch.
    pub fn new() -> WakeupBatch {
        WakeupBatch {
            arena: Vec::new(),
            frames: Vec::new(),
        }
    }

    /// Forget the frames but keep the capacity.
    pub fn clear(&mut self) {
        self.arena.clear();
        self.frames.clear();
    }

    /// Number of datagrams in the batch.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the batch holds no datagrams.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// Drain every ready datagram (up to `max_frames`) from `sock` into
/// `batch`: recv until `WouldBlock`, the contract that makes one wakeup
/// observe the entire backlog. `scratch` is the fixed per-datagram
/// receive buffer (≥ [`MAX_DATAGRAM`]), reused across calls. Returns the
/// number of datagrams drained.
pub fn drain_ready(
    sock: &FaultySocket,
    scratch: &mut [u8],
    batch: &mut WakeupBatch,
    max_frames: usize,
) -> usize {
    batch.clear();
    while batch.frames.len() < max_frames {
        match sock.recv_from(scratch) {
            Ok((n, peer)) => {
                let off = batch.arena.len();
                batch.arena.extend_from_slice(&scratch[..n]);
                batch.frames.push((off, n, peer));
            }
            // WouldBlock = backlog empty; any transient error ends the
            // drain the same way and the next wakeup retries.
            Err(_) => break,
        }
    }
    batch.frames.len()
}

/// Decode a drained batch into requests, appending `(peer, request)` to
/// `out` in arrival order. One shared buffer backs every frame — a
/// single allocation per wakeup rather than one per datagram — and
/// undecodable datagrams (noise, truncation) are skipped, exactly as the
/// synchronous loop dropped them. Public (with [`WakeupBatch`]) so the
/// criterion suite can benchmark a full wakeup's drain-and-decode.
pub fn decode_batch(batch: &WakeupBatch, out: &mut Vec<(SocketAddr, Request)>) {
    let shared = Bytes::copy_from_slice(&batch.arena);
    for &(off, len, peer) in &batch.frames {
        let mut frame = shared.slice(off..off + len);
        if let Ok(NetMsg::Ctl(CtlMsg::Request(req))) = NetMsg::decode(&mut frame) {
            out.push((peer, req));
        }
    }
}

/// The fixed per-datagram receive buffer for [`drain_ready`].
pub fn recv_scratch() -> Vec<u8> {
    vec![0u8; MAX_DATAGRAM]
}

// -------------------------------------------------------------- pool

struct PoolShared {
    queue: Mutex<VecDeque<WakeupBatch>>,
    cv: Condvar,
    stop: AtomicBool,
    /// Spent batches returned for arena reuse.
    spares: Mutex<Vec<WakeupBatch>>,
}

/// How many spent batches the pool keeps for reuse. Beyond this the
/// allocator takes them back; under steady load the free list never
/// empties, so the drain path stops allocating after warm-up.
const MAX_SPARES: usize = 32;

/// A fixed pool of worker threads consuming [`WakeupBatch`]es. Each
/// worker runs its own handler instance (built by the factory passed to
/// [`spawn`](Self::spawn)) so handlers can keep per-thread scratch
/// without locking.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Start `workers` threads. `factory` is called once per worker to
    /// build its handler (it receives the pool's recycler so the handler
    /// can return spent batches); the handler is invoked once per batch.
    pub fn spawn<F, H>(workers: usize, factory: F) -> WorkerPool
    where
        F: Fn(PoolRecycler) -> H,
        H: FnMut(WakeupBatch) + Send + 'static,
    {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            spares: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(workers.max(1));
        for _ in 0..workers.max(1) {
            let sh = shared.clone();
            let mut handler = factory(PoolRecycler(shared.clone()));
            handles.push(std::thread::spawn(move || loop {
                let mut q = locked(&sh.queue);
                let batch = loop {
                    if let Some(b) = q.pop_front() {
                        break b;
                    }
                    if sh.stop.load(Ordering::Acquire) {
                        return;
                    }
                    q = sh
                        .cv
                        .wait(q)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                };
                drop(q);
                handler(batch);
            }));
        }
        WorkerPool { shared, handles }
    }

    /// Queue a batch for the next free worker; returns the queue depth
    /// right after the push (the reactor's backpressure signal).
    pub fn submit(&self, batch: WakeupBatch) -> usize {
        let depth = {
            let mut q = locked(&self.shared.queue);
            q.push_back(batch);
            q.len()
        };
        self.shared.cv.notify_one();
        depth
    }

    /// Take a spent batch for reuse, if one is available.
    pub fn take_spare(&self) -> WakeupBatch {
        locked(&self.shared.spares).pop().unwrap_or_default()
    }

    /// Return a spent batch to the free list. Handlers should call this
    /// once they are done with a batch's bytes.
    pub fn recycle(shared: &PoolRecycler, mut batch: WakeupBatch) {
        batch.clear();
        let mut spares = locked(&shared.0.spares);
        if spares.len() < MAX_SPARES {
            spares.push(batch);
        }
    }

    /// A handle handlers keep for [`recycle`](Self::recycle).
    pub fn recycler(&self) -> PoolRecycler {
        PoolRecycler(self.shared.clone())
    }

    /// Stop accepting work, finish the queue, and join every worker.
    /// Queued batches are still processed: stop is checked only when the
    /// queue is empty.
    pub fn shutdown(self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// Shared free-list handle for returning spent batches from handlers.
#[derive(Clone)]
pub struct PoolRecycler(Arc<PoolShared>);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn timer_queue_fires_in_deadline_order_with_stable_ties() {
        let mut q: TimerQueue<u32> = TimerQueue::new();
        let base = Instant::now();
        q.arm_at(base + Duration::from_millis(20), 2);
        q.arm_at(base + Duration::from_millis(10), 1);
        q.arm_at(base + Duration::from_millis(20), 3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.next_deadline(), Some(base + Duration::from_millis(10)));
        let late = base + Duration::from_millis(30);
        assert_eq!(q.pop_due(late), Some(1));
        assert_eq!(q.pop_due(late), Some(2), "tie fires in arm order");
        assert_eq!(q.pop_due(late), Some(3));
        assert!(q.pop_due(late).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn timer_queue_holds_future_events_back() {
        let mut q: TimerQueue<&'static str> = TimerQueue::new();
        q.arm(Duration::from_secs(60), "later");
        assert!(q.pop_due(Instant::now()).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drain_empties_the_entire_backlog_in_one_wakeup() {
        let rx = FaultySocket::bind("127.0.0.1:0", FaultConfig::none()).expect("bind rx");
        let tx = FaultySocket::bind("127.0.0.1:0", FaultConfig::none()).expect("bind tx");
        let addr = rx.local_addr().expect("addr");
        for i in 0..17u8 {
            tx.send_to(&[i; 3], addr).expect("send");
        }
        // Let the datagrams land in the kernel queue.
        std::thread::sleep(Duration::from_millis(100));
        rx.set_nonblocking(true).expect("nonblocking");
        let mut batch = WakeupBatch::new();
        let mut scratch = recv_scratch();
        let n = drain_ready(&rx, &mut scratch, &mut batch, 1024);
        assert_eq!(n, 17, "one wakeup drains everything queued");
        assert_eq!(batch.arena.len(), 17 * 3);
        // Drained dry: the next drain finds nothing (WouldBlock).
        let n = drain_ready(&rx, &mut scratch, &mut batch, 1024);
        assert_eq!(n, 0);
    }

    #[test]
    fn drain_respects_the_frame_cap() {
        let rx = FaultySocket::bind("127.0.0.1:0", FaultConfig::none()).expect("bind rx");
        let tx = FaultySocket::bind("127.0.0.1:0", FaultConfig::none()).expect("bind tx");
        let addr = rx.local_addr().expect("addr");
        for _ in 0..8 {
            tx.send_to(b"x", addr).expect("send");
        }
        std::thread::sleep(Duration::from_millis(100));
        rx.set_nonblocking(true).expect("nonblocking");
        let mut batch = WakeupBatch::new();
        let mut scratch = recv_scratch();
        assert_eq!(drain_ready(&rx, &mut scratch, &mut batch, 5), 5);
        assert_eq!(drain_ready(&rx, &mut scratch, &mut batch, 5), 3);
    }

    #[test]
    fn worker_pool_processes_everything_and_shutdown_joins_clean() {
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::spawn(4, |_recycler| {
            let c = counter.clone();
            move |b: WakeupBatch| {
                c.fetch_add(b.len(), Ordering::SeqCst);
            }
        });
        for _ in 0..50 {
            let mut b = WakeupBatch::new();
            b.arena.extend_from_slice(b"abc");
            b.frames.push((0, 3, "127.0.0.1:1".parse().expect("addr")));
            pool.submit(b);
        }
        // Shutdown drains the queue before joining.
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }
}
