//! Seeded fault injection for the real UDP transport.
//!
//! [`FaultySocket`] wraps a [`std::net::UdpSocket`] and applies
//! independently configured faults to each direction: datagrams may be
//! dropped, duplicated, or delayed on send; dropped or duplicated on
//! receive. Faults are drawn from a seeded [`ChaCha8Rng`], so a failing
//! run is reproducible by seed. A zero [`FaultConfig`] (the default) is
//! the identity: every datagram passes through untouched.
//!
//! The shim lives *under* the protocol code — the server and client use
//! it as their only socket type — so injected faults exercise the real
//! retransmission, dedup-window, and lease paths rather than mocks.

use std::collections::{BinaryHeap, VecDeque};
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tank_obs::{names, Counter, Registry};

use crate::locked;

/// Faults applied to one direction of the socket.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DirFaults {
    /// Probability a datagram is silently discarded.
    pub drop_prob: f64,
    /// Probability a datagram is delivered twice.
    pub dup_prob: f64,
    /// Probability a datagram is held back before delivery.
    pub delay_prob: f64,
    /// Uniform extra delay in `[delay_min, delay_max]` when delayed.
    pub delay_min: Duration,
    /// Upper bound of the extra delay.
    pub delay_max: Duration,
}

impl DirFaults {
    /// No faults in this direction.
    pub fn none() -> Self {
        DirFaults::default()
    }

    /// Drop datagrams with probability `p`.
    pub fn dropping(p: f64) -> Self {
        DirFaults {
            drop_prob: p,
            ..DirFaults::default()
        }
    }

    /// Duplicate datagrams with probability `p`.
    pub fn duplicating(p: f64) -> Self {
        DirFaults {
            dup_prob: p,
            ..DirFaults::default()
        }
    }

    /// Delay datagrams with probability `p` by `min..=max` extra.
    pub fn delaying(p: f64, min: Duration, max: Duration) -> Self {
        DirFaults {
            delay_prob: p,
            delay_min: min,
            delay_max: max,
            ..DirFaults::default()
        }
    }

    fn is_none(&self) -> bool {
        self.drop_prob == 0.0 && self.dup_prob == 0.0 && self.delay_prob == 0.0
    }
}

/// Full fault configuration for a socket.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultConfig {
    /// Seed for the fault stream (runs are reproducible by seed).
    pub seed: u64,
    /// Faults on outgoing datagrams.
    pub send: DirFaults,
    /// Faults on incoming datagrams (delay fields are ignored on this
    /// side; reordering is already covered by send-side delay).
    pub recv: DirFaults,
}

impl FaultConfig {
    /// The identity configuration: no faults.
    pub fn none() -> Self {
        FaultConfig::default()
    }
}

struct FaultState {
    rng: ChaCha8Rng,
    /// Receive-side duplicates waiting to be handed out.
    pending: VecDeque<(Vec<u8>, SocketAddr)>,
}

/// A send-side datagram held back by delay injection.
struct DelayedSend {
    due: Instant,
    /// Admission order; ties on `due` deliver in send order.
    seq: u64,
    data: Vec<u8>,
    addr: Option<SocketAddr>,
    copies: u32,
}

impl PartialEq for DelayedSend {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for DelayedSend {}
impl PartialOrd for DelayedSend {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DelayedSend {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest due.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct DelayQueueState {
    heap: BinaryHeap<DelayedSend>,
    next_seq: u64,
    stop: bool,
}

/// One timer queue per socket for every delayed delivery: the delivery
/// thread sleeps until the earliest deadline (or new work) instead of a
/// `thread::spawn` per delayed datagram — at 10k-client offered loads a
/// few percent of delay probability would otherwise mean thousands of
/// one-shot threads per second.
struct DelayQueue {
    state: Mutex<DelayQueueState>,
    cv: Condvar,
}

impl DelayQueue {
    fn new() -> DelayQueue {
        DelayQueue {
            state: Mutex::new(DelayQueueState {
                heap: BinaryHeap::new(),
                next_seq: 0,
                stop: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn push(&self, due: Instant, data: Vec<u8>, addr: Option<SocketAddr>, copies: u32) {
        let mut st = locked(&self.state);
        let seq = st.next_seq;
        st.next_seq += 1;
        st.heap.push(DelayedSend {
            due,
            seq,
            data,
            addr,
            copies,
        });
        self.cv.notify_one();
    }

    /// Deliver due datagrams until stopped. Undelivered entries at stop
    /// time are discarded — indistinguishable from datagrams lost in the
    /// network, which is the faulty contract anyway.
    fn run(&self, sock: &UdpSocket) {
        let mut st = locked(&self.state);
        loop {
            if st.stop {
                return;
            }
            let now = Instant::now();
            match st.heap.peek() {
                None => {
                    st = self
                        .cv
                        .wait(st)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
                Some(top) if top.due > now => {
                    let dur = top.due - now;
                    st = self
                        .cv
                        .wait_timeout(st, dur)
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .0;
                }
                Some(_) => {
                    if let Some(ds) = st.heap.pop() {
                        // Send outside the lock so a slow syscall never
                        // blocks producers.
                        drop(st);
                        for _ in 0..ds.copies {
                            let _ = match ds.addr {
                                Some(a) => sock.send_to(&ds.data, a),
                                None => sock.send(&ds.data),
                            };
                        }
                        st = locked(&self.state);
                    }
                }
            }
        }
    }

    fn stop(&self) {
        locked(&self.state).stop = true;
        self.cv.notify_all();
    }
}

/// Pre-resolved fault-injection counters (`net.fault.*`).
struct FaultObs {
    send_dropped: Arc<Counter>,
    send_dup: Arc<Counter>,
    send_delayed: Arc<Counter>,
    recv_dropped: Arc<Counter>,
    recv_dup: Arc<Counter>,
}

impl FaultObs {
    fn new(registry: &Registry) -> FaultObs {
        FaultObs {
            send_dropped: registry.counter_def(&names::NET_FAULT_SEND_DROPPED),
            send_dup: registry.counter_def(&names::NET_FAULT_SEND_DUP),
            send_delayed: registry.counter_def(&names::NET_FAULT_SEND_DELAYED),
            recv_dropped: registry.counter_def(&names::NET_FAULT_RECV_DROPPED),
            recv_dup: registry.counter_def(&names::NET_FAULT_RECV_DUP),
        }
    }
}

/// A UDP socket with seeded, per-direction fault injection.
pub struct FaultySocket {
    sock: Arc<UdpSocket>,
    cfg: FaultConfig,
    state: Mutex<FaultState>,
    obs: Option<FaultObs>,
    /// Timer queue for send-side delay injection; the delivery thread is
    /// spawned on the first delayed datagram and joined on drop.
    delay: Arc<DelayQueue>,
    delay_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Drop for FaultySocket {
    fn drop(&mut self) {
        self.delay.stop();
        if let Some(handle) = locked(&self.delay_thread).take() {
            let _ = handle.join();
        }
    }
}

impl FaultySocket {
    /// Bind `addr` with faults per `cfg`.
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: FaultConfig) -> std::io::Result<FaultySocket> {
        Ok(Self::wrap(UdpSocket::bind(addr)?, cfg))
    }

    /// Like [`bind`](Self::bind), with fault decisions counted into
    /// `registry` (`FaultConfig` is `Copy`, so the registry rides on the
    /// socket rather than the config).
    pub fn bind_observed<A: ToSocketAddrs>(
        addr: A,
        cfg: FaultConfig,
        registry: Option<&Arc<Registry>>,
    ) -> std::io::Result<FaultySocket> {
        Ok(Self::wrap_observed(UdpSocket::bind(addr)?, cfg, registry))
    }

    /// Wrap an already-bound socket.
    pub fn wrap(sock: UdpSocket, cfg: FaultConfig) -> FaultySocket {
        Self::wrap_observed(sock, cfg, None)
    }

    /// Wrap an already-bound socket, counting fault decisions into
    /// `registry` when given.
    pub fn wrap_observed(
        sock: UdpSocket,
        cfg: FaultConfig,
        registry: Option<&Arc<Registry>>,
    ) -> FaultySocket {
        FaultySocket {
            sock: Arc::new(sock),
            cfg,
            state: Mutex::new(FaultState {
                rng: ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xFA17_50CC),
                pending: VecDeque::new(),
            }),
            obs: registry.map(|r| FaultObs::new(r)),
            delay: Arc::new(DelayQueue::new()),
            delay_thread: Mutex::new(None),
        }
    }

    /// The bound local address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.sock.local_addr()
    }

    /// UDP-connect the underlying socket.
    pub fn connect<A: ToSocketAddrs>(&self, addr: A) -> std::io::Result<()> {
        self.sock.connect(addr)
    }

    /// Set the receive timeout (also bounds how long a receive-side
    /// drop can stall a caller: at most one extra timeout period).
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        self.sock.set_read_timeout(dur)
    }

    /// Switch the socket to nonblocking mode (the reactor's drain
    /// contract: recv until `WouldBlock`). Receive-side drop faults then
    /// surface as `WouldBlock` instead of stalling — the dropped datagram
    /// simply vanishes from the backlog.
    pub fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        self.sock.set_nonblocking(nonblocking)
    }

    /// Send to the connected peer, possibly dropping/duplicating/delaying.
    pub fn send(&self, buf: &[u8]) -> std::io::Result<usize> {
        self.faulty_send(buf, None)
    }

    /// Send to `addr`, possibly dropping/duplicating/delaying.
    pub fn send_to(&self, buf: &[u8], addr: SocketAddr) -> std::io::Result<usize> {
        self.faulty_send(buf, Some(addr))
    }

    fn faulty_send(&self, buf: &[u8], addr: Option<SocketAddr>) -> std::io::Result<usize> {
        let f = self.cfg.send;
        if f.is_none() {
            return match addr {
                Some(a) => self.sock.send_to(buf, a),
                None => self.sock.send(buf),
            };
        }
        let (dropped, copies, delay) = {
            let mut st = locked(&self.state);
            let dropped = st.rng.random_bool(f.drop_prob);
            let copies = if st.rng.random_bool(f.dup_prob) { 2 } else { 1 };
            let delay = if st.rng.random_bool(f.delay_prob) {
                let span = f.delay_max.saturating_sub(f.delay_min).as_nanos() as u64;
                let extra = if span == 0 {
                    0
                } else {
                    st.rng.random_range(0..=span)
                };
                Some(f.delay_min + Duration::from_nanos(extra))
            } else {
                None
            };
            (dropped, copies, delay)
        };
        if let Some(obs) = &self.obs {
            if dropped {
                obs.send_dropped.inc();
            }
            if copies > 1 {
                obs.send_dup.inc();
            }
            if delay.is_some() {
                obs.send_delayed.inc();
            }
        }
        if dropped {
            // The caller sees success: a dropped datagram is
            // indistinguishable from one lost in the network.
            return Ok(buf.len());
        }
        match delay {
            None => {
                for _ in 0..copies {
                    match addr {
                        Some(a) => self.sock.send_to(buf, a)?,
                        None => self.sock.send(buf)?,
                    };
                }
            }
            Some(d) => {
                self.ensure_delay_thread();
                self.delay
                    .push(Instant::now() + d, buf.to_vec(), addr, copies);
            }
        }
        Ok(buf.len())
    }

    /// Spawn the single delay-delivery thread if it is not running yet.
    fn ensure_delay_thread(&self) {
        let mut slot = locked(&self.delay_thread);
        if slot.is_none() {
            let queue = self.delay.clone();
            let sock = self.sock.clone();
            *slot = Some(std::thread::spawn(move || queue.run(&sock)));
        }
    }

    /// Receive one datagram (source address included), applying
    /// receive-side drop/duplicate faults.
    pub fn recv_from(&self, buf: &mut [u8]) -> std::io::Result<(usize, SocketAddr)> {
        let f = self.cfg.recv;
        if let Some((data, peer)) = locked(&self.state).pending.pop_front() {
            let n = data.len().min(buf.len());
            buf[..n].copy_from_slice(&data[..n]);
            return Ok((n, peer));
        }
        loop {
            let (n, peer) = self.sock.recv_from(buf)?;
            if f.is_none() {
                return Ok((n, peer));
            }
            let mut st = locked(&self.state);
            if st.rng.random_bool(f.drop_prob) {
                drop(st);
                if let Some(obs) = &self.obs {
                    obs.recv_dropped.inc();
                }
                continue; // discarded on arrival; wait for the next one
            }
            if st.rng.random_bool(f.dup_prob) {
                st.pending.push_back((buf[..n].to_vec(), peer));
                if let Some(obs) = &self.obs {
                    obs.recv_dup.inc();
                }
            }
            return Ok((n, peer));
        }
    }

    /// Receive from the connected peer.
    pub fn recv(&self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.recv_from(buf).map(|(n, _)| n)
    }
}

#[cfg(unix)]
impl std::os::fd::AsRawFd for FaultySocket {
    fn as_raw_fd(&self) -> std::os::fd::RawFd {
        self.sock.as_raw_fd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(cfg: FaultConfig) -> (FaultySocket, FaultySocket) {
        let a = FaultySocket::bind("127.0.0.1:0", cfg).unwrap();
        let b = FaultySocket::bind("127.0.0.1:0", FaultConfig::none()).unwrap();
        a.connect(b.local_addr().unwrap()).unwrap();
        b.connect(a.local_addr().unwrap()).unwrap();
        (a, b)
    }

    #[test]
    fn clean_config_is_identity() {
        let (a, b) = pair(FaultConfig::none());
        b.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        a.send(b"hello").unwrap();
        let mut buf = [0u8; 64];
        let n = b.recv(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");
    }

    #[test]
    fn send_drop_loses_every_datagram_at_p1() {
        let cfg = FaultConfig {
            seed: 1,
            send: DirFaults::dropping(1.0),
            ..FaultConfig::none()
        };
        let (a, b) = pair(cfg);
        b.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        for _ in 0..5 {
            a.send(b"x").unwrap();
        }
        let mut buf = [0u8; 8];
        assert!(b.recv(&mut buf).is_err(), "all datagrams dropped");
    }

    #[test]
    fn send_dup_doubles_every_datagram_at_p1() {
        let cfg = FaultConfig {
            seed: 2,
            send: DirFaults::duplicating(1.0),
            ..FaultConfig::none()
        };
        let (a, b) = pair(cfg);
        b.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        a.send(b"once").unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(b.recv(&mut buf).unwrap(), 4);
        assert_eq!(b.recv(&mut buf).unwrap(), 4, "the duplicate arrives too");
    }

    #[test]
    fn recv_dup_replays_the_datagram() {
        let recv = DirFaults::duplicating(1.0);
        let cfg = FaultConfig {
            seed: 3,
            recv,
            ..FaultConfig::none()
        };
        let b = FaultySocket::bind("127.0.0.1:0", cfg).unwrap();
        let a = FaultySocket::bind("127.0.0.1:0", FaultConfig::none()).unwrap();
        a.connect(b.local_addr().unwrap()).unwrap();
        b.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        a.send(b"pkt").unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(b.recv(&mut buf).unwrap(), 3);
        assert_eq!(b.recv(&mut buf).unwrap(), 3, "queued duplicate");
    }

    #[test]
    fn delayed_datagram_arrives_late() {
        let send = DirFaults::delaying(1.0, Duration::from_millis(80), Duration::from_millis(120));
        let cfg = FaultConfig {
            seed: 4,
            send,
            ..FaultConfig::none()
        };
        let (a, b) = pair(cfg);
        b.set_read_timeout(Some(Duration::from_millis(1000)))
            .unwrap();
        let t0 = std::time::Instant::now();
        a.send(b"slow").unwrap();
        let mut buf = [0u8; 8];
        let n = b.recv(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"slow");
        assert!(
            t0.elapsed() >= Duration::from_millis(60),
            "datagram was held back"
        );
    }

    #[test]
    fn delay_queue_delivers_every_datagram_through_one_thread() {
        // A burst of delayed datagrams all arrive (the single timer queue
        // loses nothing relative to the old thread-per-datagram scheme),
        // and each respects its lower delay bound.
        let send = DirFaults::delaying(1.0, Duration::from_millis(10), Duration::from_millis(60));
        let cfg = FaultConfig {
            seed: 7,
            send,
            ..FaultConfig::none()
        };
        let (a, b) = pair(cfg);
        b.set_read_timeout(Some(Duration::from_millis(1000)))
            .unwrap();
        let t0 = std::time::Instant::now();
        for i in 0..20u8 {
            a.send(&[i]).unwrap();
        }
        let mut buf = [0u8; 8];
        let mut got = Vec::new();
        for _ in 0..20 {
            let n = b.recv(&mut buf).unwrap();
            assert_eq!(n, 1);
            got.push(buf[0]);
        }
        assert!(t0.elapsed() >= Duration::from_millis(10));
        got.sort_unstable();
        assert_eq!(got, (0..20).collect::<Vec<u8>>());
    }

    #[test]
    fn dropping_the_socket_discards_pending_delays_without_panicking() {
        let send = DirFaults::delaying(1.0, Duration::from_secs(5), Duration::from_secs(5));
        let cfg = FaultConfig {
            seed: 8,
            send,
            ..FaultConfig::none()
        };
        let (a, b) = pair(cfg);
        a.send(b"never").unwrap();
        drop(a); // joins the delay thread; the 5s-out datagram dies with it
        b.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        let mut buf = [0u8; 8];
        assert!(b.recv(&mut buf).is_err(), "pending delayed send discarded");
    }

    #[test]
    fn same_seed_same_fault_stream() {
        let decide = |seed| {
            let cfg = FaultConfig {
                seed,
                send: DirFaults::dropping(0.5),
                ..FaultConfig::none()
            };
            let s = FaultySocket::bind("127.0.0.1:0", cfg).unwrap();
            // Send into the void; what matters is the drop pattern, which
            // we recover by observing the rng through a sibling socket.
            let peer = FaultySocket::bind("127.0.0.1:0", FaultConfig::none()).unwrap();
            peer.set_read_timeout(Some(Duration::from_millis(50)))
                .unwrap();
            s.connect(peer.local_addr().unwrap()).unwrap();
            let mut pattern = Vec::new();
            let mut buf = [0u8; 8];
            for _ in 0..16 {
                s.send(b"p").unwrap();
                pattern.push(peer.recv(&mut buf).is_ok());
            }
            pattern
        };
        assert_eq!(decide(9), decide(9));
    }
}
