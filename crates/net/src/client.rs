//! The synchronous UDP client.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use bytes::Bytes;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tank_core::{ClientLease, LeaseAction, LeaseConfig, Phase};
use tank_obs::{names, Counter, Histogram, Registry};
use tank_proto::message::{FileAttr, FsError, ReplyBody, RequestBody, ResponseOutcome};
use tank_proto::{
    CtlMsg, Ino, LockMode, NackReason, NetMsg, NodeId, PushBody, ReqSeq, Request, SessionId,
    WireDecode, WireEncode, MAX_DATAGRAM,
};

use crate::fault::{FaultConfig, FaultySocket};
use crate::{locked, mono_now};

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetClientError {
    /// The server NACKed the request.
    Nacked(NackReason),
    /// The operation failed at the file-system level.
    Fs(FsError),
    /// No response within the retry budget.
    Timeout,
    /// Unexpected reply shape; carries the reply's kind label.
    Protocol(&'static str),
    /// Socket trouble.
    Io(String),
}

impl std::fmt::Display for NetClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetClientError::Nacked(r) => write!(f, "nacked: {r:?}"),
            NetClientError::Fs(e) => write!(f, "fs error: {e:?}"),
            NetClientError::Timeout => write!(f, "request timed out"),
            NetClientError::Protocol(kind) => {
                write!(f, "protocol violation: unexpected `{kind}` reply")
            }
            NetClientError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for NetClientError {}

type Result<T> = std::result::Result<T, NetClientError>;

/// Pre-resolved handles for the net-client metrics (`net.client.*` in
/// `tank_obs::names`). Resolved once at connect time so the request hot
/// path touches only atomics.
struct NetClientObs {
    timeouts: Arc<Counter>,
    rtt_ns: Arc<Histogram>,
    retransmissions: Arc<Histogram>,
    decode_errors: Arc<Counter>,
}

impl NetClientObs {
    fn new(registry: &Registry) -> NetClientObs {
        names::register_all(registry);
        NetClientObs {
            timeouts: registry.counter_def(&names::NET_CLIENT_TIMEOUTS),
            rtt_ns: registry.histogram_def(&names::NET_CLIENT_RTT_NS),
            retransmissions: registry.histogram_def(&names::NET_CLIENT_RETRANSMISSIONS),
            decode_errors: registry.counter_def(&names::NET_CLIENT_DECODE_ERRORS),
        }
    }
}

struct ClientState {
    lease: ClientLease,
    session: Option<SessionId>,
    next_seq: u64,
    pending: HashMap<ReqSeq, mpsc::Sender<ResponseOutcome>>,
    seen_pushes: std::collections::HashSet<u64>,
    /// Locks currently held (demands auto-release them).
    held: std::collections::HashSet<Ino>,
    /// The server incarnation stamped on the last response seen. A
    /// change means the server restarted since we last heard from it.
    server_incarnation: Option<u64>,
}

/// A synchronous Storage Tank protocol client over UDP.
///
/// Every acknowledged request renews the lease from its *send* time; a
/// background thread mirrors the client lease machine's wakeup schedule
/// to send keep-alives while idle. Lock demands are answered
/// automatically (PushAck then release — this demo client holds no data
/// cache). Retransmissions reuse the request's sequence number (the
/// server's dedup window makes delivery at-most-once) under exponential
/// backoff with jitter; `Recovering` NACKs are retried after a delay,
/// and a stale session is transparently re-established with a fresh
/// Hello.
pub struct TankClient {
    sock: Arc<FaultySocket>,
    state: Arc<Mutex<ClientState>>,
    stop: Arc<AtomicBool>,
    rng: Mutex<ChaCha8Rng>,
    /// Request retry budget.
    retries: u32,
    /// Initial per-attempt timeout; doubles per retry up to `max_rto`.
    rto: Duration,
    /// Backoff ceiling.
    max_rto: Duration,
    /// Metric handles when connected through [`TankClient::connect_observed`].
    obs: Option<NetClientObs>,
}

impl Drop for TankClient {
    fn drop(&mut self) {
        // Background threads watch this flag and exit within one read
        // timeout / sleep chunk.
        self.stop.store(true, Ordering::SeqCst);
    }
}

impl TankClient {
    /// Connect (UDP-"connect") to a server and establish a session.
    pub fn connect(server: &str, lease: LeaseConfig) -> Result<TankClient> {
        Self::connect_with(server, lease, FaultConfig::none())
    }

    /// Connect through a fault-injecting socket (tests).
    pub fn connect_with(
        server: &str,
        lease: LeaseConfig,
        faults: FaultConfig,
    ) -> Result<TankClient> {
        Self::connect_observed(server, lease, faults, None)
    }

    /// Connect with metrics: per-request round-trip and retransmission
    /// histograms plus the socket's fault-injection counters land in
    /// `registry` (see OBSERVABILITY.md for the `net.*` metric names).
    pub fn connect_observed(
        server: &str,
        lease: LeaseConfig,
        faults: FaultConfig,
        registry: Option<&Arc<Registry>>,
    ) -> Result<TankClient> {
        let sock = FaultySocket::bind_observed("127.0.0.1:0", faults, registry)
            .map_err(|e| NetClientError::Io(e.to_string()))?;
        sock.connect(server)
            .map_err(|e| NetClientError::Io(e.to_string()))?;
        sock.set_read_timeout(Some(Duration::from_millis(50)))
            .map_err(|e| NetClientError::Io(e.to_string()))?;
        let sock = Arc::new(sock);
        let state = Arc::new(Mutex::new(ClientState {
            lease: ClientLease::new(lease),
            session: None,
            next_seq: 1,
            pending: HashMap::new(),
            seen_pushes: std::collections::HashSet::new(),
            held: std::collections::HashSet::new(),
            server_incarnation: None,
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let client = TankClient {
            sock: sock.clone(),
            state: state.clone(),
            stop: stop.clone(),
            rng: Mutex::new(ChaCha8Rng::seed_from_u64(faults.seed ^ 0xBAC0_FF5E)),
            retries: 8,
            rto: Duration::from_millis(150),
            max_rto: Duration::from_secs(2),
            obs: registry.map(|r| NetClientObs::new(r)),
        };
        {
            let (sock, state, stop) = (sock.clone(), state.clone(), stop.clone());
            let decode_errors = client.obs.as_ref().map(|o| o.decode_errors.clone());
            std::thread::spawn(move || {
                Self::recv_loop(&sock, &state, &stop, decode_errors.as_deref())
            });
        }
        std::thread::spawn(move || Self::lease_loop(&sock, &state, &stop));
        client.hello()?;
        Ok(client)
    }

    /// The receive loop: responses complete pending requests (and renew
    /// the lease); pushes are acknowledged and demands auto-released.
    /// Undecodable datagrams are counted (when observed) and dropped —
    /// the sender's retransmission path covers the loss.
    fn recv_loop(
        sock: &Arc<FaultySocket>,
        state: &Arc<Mutex<ClientState>>,
        stop: &AtomicBool,
        decode_errors: Option<&Counter>,
    ) {
        let mut buf = vec![0u8; MAX_DATAGRAM];
        while !stop.load(Ordering::SeqCst) {
            let Ok(n) = sock.recv(&mut buf) else { continue };
            // Re-check after the blocking recv: a dropped client must not
            // answer a demand that raced with its own shutdown.
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let mut bytes = Bytes::copy_from_slice(&buf[..n]);
            let Ok(msg) = NetMsg::decode(&mut bytes) else {
                if let Some(c) = decode_errors {
                    c.inc();
                }
                continue;
            };
            match msg {
                NetMsg::Ctl(CtlMsg::Response(resp)) => {
                    let waiter = {
                        let mut st = locked(state);
                        st.server_incarnation = Some(resp.incarnation.0);
                        if resp.is_ack() {
                            st.lease.on_ack(resp.seq, mono_now());
                        } else if !matches!(
                            resp.outcome,
                            ResponseOutcome::Nacked(NackReason::Recovering)
                        ) {
                            // A Recovering NACK does not condemn the
                            // lease — it only means "ask again later".
                            st.lease.on_nack(mono_now());
                        }
                        st.pending.remove(&resp.seq)
                    };
                    if let Some(w) = waiter {
                        let _ = w.send(resp.outcome);
                    }
                }
                NetMsg::Ctl(CtlMsg::Push(push)) => {
                    Self::on_push(sock, state, push);
                }
                // A client never receives requests, is not on the SAN, and
                // takes no part in server-to-server log replication; all
                // three are misdirected traffic to ignore.
                NetMsg::Ctl(CtlMsg::Request(_)) | NetMsg::San(_) | NetMsg::Repl(_) => {}
            }
        }
    }

    fn on_push(
        sock: &Arc<FaultySocket>,
        state: &Arc<Mutex<ClientState>>,
        push: tank_proto::ServerPush,
    ) {
        let (session, fresh) = {
            let mut st = locked(state);
            (
                st.session.unwrap_or(SessionId(0)),
                st.seen_pushes.insert(push.push_seq),
            )
        };
        // Always ack.
        let ack = Self::raw_request(
            state,
            session,
            RequestBody::PushAck {
                push_seq: push.push_seq,
            },
        );
        let _ = sock.send(&ack.1);
        if !fresh {
            return;
        }
        if let PushBody::Demand { ino, epoch, .. } = push.body {
            // No data cache to flush in this client: release immediately,
            // naming the demanded grant.
            let (seq, bytes) =
                Self::raw_request(state, session, RequestBody::LockRelease { ino, epoch });
            let _ = seq;
            let _ = sock.send(&bytes);
            locked(state).held.remove(&ino);
        }
    }

    /// The keep-alive loop: sleeps until the lease machine's next wakeup
    /// and sends keep-alives when it asks for them.
    fn lease_loop(sock: &Arc<FaultySocket>, state: &Arc<Mutex<ClientState>>, stop: &AtomicBool) {
        while !stop.load(Ordering::SeqCst) {
            let (sleep_for, keepalive) = {
                let mut st = locked(state);
                let now = mono_now();
                let mut ka = false;
                for action in st.lease.poll(now) {
                    if action == LeaseAction::SendKeepAlive {
                        ka = true;
                    }
                }
                let next = st
                    .lease
                    .next_wakeup(now)
                    .map(|at| Duration::from_nanos(at.0.saturating_sub(now.0)))
                    .unwrap_or(Duration::from_millis(200));
                (next.max(Duration::from_millis(10)), ka)
            };
            if keepalive {
                let session = locked(state).session.unwrap_or(SessionId(0));
                let (_, bytes) = Self::raw_request(state, session, RequestBody::KeepAlive);
                let _ = sock.send(&bytes);
            }
            // Sleep in short chunks so drop is responsive.
            let mut left = sleep_for;
            while left > Duration::ZERO && !stop.load(Ordering::SeqCst) {
                let chunk = left.min(Duration::from_millis(50));
                std::thread::sleep(chunk);
                left = left.saturating_sub(chunk);
            }
        }
    }

    /// Allocate a sequence number, register the send with the lease
    /// machine, and encode the datagram. (No pending entry: fire-and-forget
    /// sends like PushAck/KeepAlive use this directly.)
    fn raw_request(
        state: &Arc<Mutex<ClientState>>,
        session: SessionId,
        body: RequestBody,
    ) -> (ReqSeq, Vec<u8>) {
        let mut st = locked(state);
        let seq = ReqSeq(st.next_seq);
        st.next_seq += 1;
        st.lease.on_send(seq, mono_now());
        let req = Request {
            src: NodeId(0),
            session,
            seq,
            body,
        };
        (seq, NetMsg::Ctl(CtlMsg::Request(req)).encoded().to_vec())
    }

    /// Multiply a timeout by a jitter factor in `[0.75, 1.25]` so retry
    /// storms from concurrent clients decorrelate.
    fn jitter(&self, d: Duration) -> Duration {
        let f = locked(&self.rng).random_range(0.75f64..=1.25);
        Duration::from_nanos((d.as_nanos() as f64 * f) as u64)
    }

    /// One request attempt cycle: same sequence number across
    /// retransmissions, per-attempt timeout doubling up to the ceiling.
    fn attempt(&self, body: RequestBody) -> Result<ReplyBody> {
        let (seq, bytes) = {
            let mut st = locked(&self.state);
            let session = st.session.unwrap_or(SessionId(0));
            let seq = ReqSeq(st.next_seq);
            st.next_seq += 1;
            st.lease.on_send(seq, mono_now());
            let req = Request {
                src: NodeId(0),
                session,
                seq,
                body,
            };
            (seq, NetMsg::Ctl(CtlMsg::Request(req)).encoded().to_vec())
        };
        let mut rto = self.rto;
        let t0 = mono_now();
        for attempt in 0..=self.retries {
            let (tx, rx) = mpsc::channel();
            locked(&self.state).pending.insert(seq, tx);
            self.sock
                .send(&bytes)
                .map_err(|e| NetClientError::Io(e.to_string()))?;
            let outcome = rx.recv_timeout(self.jitter(rto));
            if outcome.is_ok() {
                // A response of any flavour completes the round trip;
                // `attempt` counts the retransmissions it took (0 = the
                // first send was answered).
                if let Some(obs) = &self.obs {
                    obs.rtt_ns.observe(mono_now().0.saturating_sub(t0.0));
                    obs.retransmissions.observe(u64::from(attempt));
                }
            }
            match outcome {
                Ok(ResponseOutcome::Acked(Ok(reply))) => return Ok(reply),
                Ok(ResponseOutcome::Acked(Err(e))) => return Err(NetClientError::Fs(e)),
                Ok(ResponseOutcome::Nacked(r)) => return Err(NetClientError::Nacked(r)),
                Err(_) => {
                    // Lost or timed out: retry with the SAME seq (the
                    // server's dedup window makes this at-most-once) and
                    // back off exponentially.
                    locked(&self.state).pending.remove(&seq);
                    rto = (rto * 2).min(self.max_rto);
                }
            }
        }
        if let Some(obs) = &self.obs {
            obs.timeouts.inc();
        }
        Err(NetClientError::Timeout)
    }

    /// Send a request, transparently riding out server recovery windows
    /// and stale sessions.
    fn request(&self, body: RequestBody) -> Result<ReplyBody> {
        // Recovering NACKs last at most one grace window τ(1+ε); the
        // wait budget here comfortably exceeds any test-scale window.
        let mut recovery_waits = 100u32;
        let mut rehellos = 2u32;
        loop {
            match self.attempt(body.clone()) {
                Err(NetClientError::Nacked(NackReason::Recovering)) if recovery_waits > 0 => {
                    recovery_waits -= 1;
                    std::thread::sleep(self.jitter(Duration::from_millis(100)));
                }
                Err(NetClientError::Nacked(
                    NackReason::StaleSession | NackReason::SessionExpired,
                )) if rehellos > 0 => {
                    rehellos -= 1;
                    self.hello()?;
                }
                other => return other,
            }
        }
    }

    fn hello(&self) -> Result<()> {
        let sent_at = mono_now();
        match self.attempt(RequestBody::Hello { map_epoch: 0 })? {
            ReplyBody::HelloOk { session, .. } => {
                let mut st = locked(&self.state);
                st.session = Some(session);
                st.lease.reset_session(sent_at, mono_now());
                st.held.clear();
                st.seen_pushes.clear();
                Ok(())
            }
            unexpected => Err(NetClientError::Protocol(unexpected.kind())),
        }
    }

    /// Re-establish a session after expiry (public for tests/tools).
    pub fn rehello(&self) -> Result<()> {
        self.hello()
    }

    /// Current lease phase on this client's clock.
    pub fn lease_phase(&self) -> Phase {
        let mut st = locked(&self.state);
        let now = mono_now();
        let _ = st.lease.poll(now);
        st.lease.phase(now)
    }

    /// Number of lease renewals observed.
    pub fn renewals(&self) -> u64 {
        locked(&self.state).lease.renewal_count()
    }

    /// Keep-alives the lease machine has requested.
    pub fn keepalives(&self) -> u64 {
        locked(&self.state).lease.keepalive_count()
    }

    /// The incarnation number stamped on the last response seen (a
    /// change between observations means the server restarted).
    pub fn server_incarnation(&self) -> Option<u64> {
        locked(&self.state).server_incarnation
    }

    /// Create a file under `parent`.
    pub fn create(&self, parent: Ino, name: &str) -> Result<Ino> {
        match self.request(RequestBody::Create {
            parent,
            name: name.into(),
        })? {
            ReplyBody::Created { ino } => Ok(ino),
            unexpected => Err(NetClientError::Protocol(unexpected.kind())),
        }
    }

    /// Make a directory.
    pub fn mkdir(&self, parent: Ino, name: &str) -> Result<Ino> {
        match self.request(RequestBody::Mkdir {
            parent,
            name: name.into(),
        })? {
            ReplyBody::Created { ino } => Ok(ino),
            unexpected => Err(NetClientError::Protocol(unexpected.kind())),
        }
    }

    /// Resolve a name.
    pub fn lookup(&self, parent: Ino, name: &str) -> Result<(Ino, FileAttr)> {
        match self.request(RequestBody::Lookup {
            parent,
            name: name.into(),
        })? {
            ReplyBody::Resolved { ino, attr } => Ok((ino, attr)),
            unexpected => Err(NetClientError::Protocol(unexpected.kind())),
        }
    }

    /// Fetch attributes.
    pub fn getattr(&self, ino: Ino) -> Result<FileAttr> {
        match self.request(RequestBody::GetAttr { ino })? {
            ReplyBody::Attr { attr } => Ok(attr),
            unexpected => Err(NetClientError::Protocol(unexpected.kind())),
        }
    }

    /// List a directory.
    pub fn readdir(&self, dir: Ino) -> Result<Vec<(String, Ino)>> {
        match self.request(RequestBody::ReadDir { dir })? {
            ReplyBody::Dir { entries } => Ok(entries),
            unexpected => Err(NetClientError::Protocol(unexpected.kind())),
        }
    }

    /// Remove a file.
    pub fn unlink(&self, parent: Ino, name: &str) -> Result<()> {
        match self.request(RequestBody::Unlink {
            parent,
            name: name.into(),
        })? {
            ReplyBody::Ok => Ok(()),
            unexpected => Err(NetClientError::Protocol(unexpected.kind())),
        }
    }

    /// Acquire a data lock; waits for the grant (the server answers when
    /// the lock becomes available).
    pub fn lock(&self, ino: Ino, mode: LockMode) -> Result<tank_proto::Epoch> {
        match self.request(RequestBody::LockAcquire { ino, mode })? {
            ReplyBody::LockGranted { epoch, .. } => {
                locked(&self.state).held.insert(ino);
                Ok(epoch)
            }
            unexpected => Err(NetClientError::Protocol(unexpected.kind())),
        }
    }

    /// Release a data lock (the grant to release is named by its epoch).
    pub fn release(&self, ino: Ino, epoch: tank_proto::Epoch) -> Result<()> {
        match self.request(RequestBody::LockRelease { ino, epoch })? {
            ReplyBody::Ok => {
                locked(&self.state).held.remove(&ino);
                Ok(())
            }
            unexpected => Err(NetClientError::Protocol(unexpected.kind())),
        }
    }

    /// Send one explicit keep-alive (normally the background thread does
    /// this when the lease machine asks).
    pub fn keep_alive(&self) -> Result<()> {
        match self.request(RequestBody::KeepAlive)? {
            ReplyBody::Ok => Ok(()),
            unexpected => Err(NetClientError::Protocol(unexpected.kind())),
        }
    }

    /// The root inode of the server's namespace.
    pub fn root(&self) -> Ino {
        Ino(1)
    }
}
