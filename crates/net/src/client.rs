//! The async UDP client.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use tank_core::{ClientLease, LeaseAction, LeaseConfig, Phase};
use tank_proto::message::{FileAttr, FsError, ReplyBody, RequestBody, ResponseOutcome};
use tank_proto::{
    CtlMsg, Ino, LockMode, NackReason, NetMsg, NodeId, PushBody, ReqSeq, Request, SessionId,
    WireDecode, WireEncode,
};
use tokio::net::UdpSocket;
use tokio::sync::oneshot;

use crate::mono_now;

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetClientError {
    /// The server NACKed the request.
    Nacked(NackReason),
    /// The operation failed at the file-system level.
    Fs(FsError),
    /// No response within the retry budget.
    Timeout,
    /// Unexpected reply shape.
    Protocol,
    /// Socket trouble.
    Io(String),
}

impl std::fmt::Display for NetClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetClientError::Nacked(r) => write!(f, "nacked: {r:?}"),
            NetClientError::Fs(e) => write!(f, "fs error: {e:?}"),
            NetClientError::Timeout => write!(f, "request timed out"),
            NetClientError::Protocol => write!(f, "protocol violation"),
            NetClientError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for NetClientError {}

type Result<T> = std::result::Result<T, NetClientError>;

struct ClientState {
    lease: ClientLease,
    session: Option<SessionId>,
    next_seq: u64,
    pending: HashMap<ReqSeq, oneshot::Sender<ResponseOutcome>>,
    seen_pushes: std::collections::HashSet<u64>,
    /// Locks currently held (demands auto-release them).
    held: std::collections::HashSet<Ino>,
}

/// An async Storage Tank protocol client over UDP.
///
/// Every acknowledged request renews the lease from its *send* time; a
/// background task mirrors the client lease machine's wakeup schedule to
/// send keep-alives while idle. Lock demands are answered automatically
/// (PushAck then release — this demo client holds no data cache).
pub struct TankClient {
    sock: Arc<UdpSocket>,
    state: Arc<Mutex<ClientState>>,
    /// Keep-alive task handle (aborted on drop).
    tasks: Vec<tokio::task::JoinHandle<()>>,
    /// Request retry budget.
    retries: u32,
    /// Per-attempt timeout.
    rto: std::time::Duration,
}

impl Drop for TankClient {
    fn drop(&mut self) {
        for t in &self.tasks {
            t.abort();
        }
    }
}

impl TankClient {
    /// Connect (UDP-"connect") to a server and establish a session.
    pub async fn connect(server: &str, lease: LeaseConfig) -> Result<TankClient> {
        let sock = UdpSocket::bind("127.0.0.1:0")
            .await
            .map_err(|e| NetClientError::Io(e.to_string()))?;
        sock.connect(server).await.map_err(|e| NetClientError::Io(e.to_string()))?;
        let sock = Arc::new(sock);
        let state = Arc::new(Mutex::new(ClientState {
            lease: ClientLease::new(lease),
            session: None,
            next_seq: 1,
            pending: HashMap::new(),
            seen_pushes: std::collections::HashSet::new(),
            held: std::collections::HashSet::new(),
        }));
        let mut client = TankClient {
            sock: sock.clone(),
            state: state.clone(),
            tasks: Vec::new(),
            retries: 8,
            rto: std::time::Duration::from_millis(150),
        };
        client.tasks.push(tokio::spawn(Self::recv_loop(sock.clone(), state.clone())));
        client.tasks.push(tokio::spawn(Self::lease_loop(sock.clone(), state.clone())));
        client.hello().await?;
        Ok(client)
    }

    /// The receive loop: responses complete pending requests (and renew
    /// the lease); pushes are acknowledged and demands auto-released.
    async fn recv_loop(sock: Arc<UdpSocket>, state: Arc<Mutex<ClientState>>) {
        let mut buf = vec![0u8; 64 * 1024];
        loop {
            let Ok(n) = sock.recv(&mut buf).await else { break };
            let mut bytes = Bytes::copy_from_slice(&buf[..n]);
            let Ok(msg) = NetMsg::decode(&mut bytes) else { continue };
            match msg {
                NetMsg::Ctl(CtlMsg::Response(resp)) => {
                    let waiter = {
                        let mut st = state.lock();
                        if resp.is_ack() {
                            st.lease.on_ack(resp.seq, mono_now());
                        } else {
                            st.lease.on_nack(mono_now());
                        }
                        st.pending.remove(&resp.seq)
                    };
                    if let Some(w) = waiter {
                        let _ = w.send(resp.outcome);
                    }
                }
                NetMsg::Ctl(CtlMsg::Push(push)) => {
                    Self::on_push(&sock, &state, push).await;
                }
                _ => {}
            }
        }
    }

    async fn on_push(
        sock: &Arc<UdpSocket>,
        state: &Arc<Mutex<ClientState>>,
        push: tank_proto::ServerPush,
    ) {
        let (session, fresh) = {
            let mut st = state.lock();
            (st.session.unwrap_or(SessionId(0)), st.seen_pushes.insert(push.push_seq))
        };
        // Always ack.
        let ack = Self::raw_request(state, session, RequestBody::PushAck { push_seq: push.push_seq });
        let _ = sock.send(&ack.1).await;
        if !fresh {
            return;
        }
        if let PushBody::Demand { ino, epoch, .. } = push.body {
            // No data cache to flush in this client: release immediately,
            // naming the demanded grant.
            let (seq, bytes) =
                Self::raw_request(state, session, RequestBody::LockRelease { ino, epoch });
            let _ = seq;
            let _ = sock.send(&bytes).await;
            state.lock().held.remove(&ino);
        }
    }

    /// The keep-alive loop: sleeps until the lease machine's next wakeup
    /// and sends keep-alives when it asks for them.
    async fn lease_loop(sock: Arc<UdpSocket>, state: Arc<Mutex<ClientState>>) {
        loop {
            let (sleep_for, keepalive) = {
                let mut st = state.lock();
                let now = mono_now();
                let mut ka = false;
                for action in st.lease.poll(now) {
                    if action == LeaseAction::SendKeepAlive {
                        ka = true;
                    }
                }
                let next = st
                    .lease
                    .next_wakeup(now)
                    .map(|at| std::time::Duration::from_nanos(at.0.saturating_sub(now.0)))
                    .unwrap_or(std::time::Duration::from_millis(200));
                (next.max(std::time::Duration::from_millis(10)), ka)
            };
            if keepalive {
                let session = state.lock().session.unwrap_or(SessionId(0));
                let (_, bytes) = Self::raw_request(&state, session, RequestBody::KeepAlive);
                let _ = sock.send(&bytes).await;
            }
            tokio::time::sleep(sleep_for).await;
        }
    }

    /// Allocate a sequence number, register the send with the lease
    /// machine, and encode the datagram. (No pending entry: fire-and-forget
    /// sends like PushAck/KeepAlive use this directly.)
    fn raw_request(
        state: &Arc<Mutex<ClientState>>,
        session: SessionId,
        body: RequestBody,
    ) -> (ReqSeq, Vec<u8>) {
        let mut st = state.lock();
        let seq = ReqSeq(st.next_seq);
        st.next_seq += 1;
        st.lease.on_send(seq, mono_now());
        let req = Request { src: NodeId(0), session, seq, body };
        (seq, NetMsg::Ctl(CtlMsg::Request(req)).encoded().to_vec())
    }

    /// Send a request with retries; returns the server's outcome.
    async fn request(&self, body: RequestBody) -> Result<ReplyBody> {
        let session = self.state.lock().session.unwrap_or(SessionId(0));
        let (seq, bytes) = {
            let mut st = self.state.lock();
            let seq = ReqSeq(st.next_seq);
            st.next_seq += 1;
            st.lease.on_send(seq, mono_now());
            let req = Request { src: NodeId(0), session, seq, body };
            (seq, NetMsg::Ctl(CtlMsg::Request(req)).encoded().to_vec())
        };
        for _attempt in 0..=self.retries {
            let (tx, rx) = oneshot::channel();
            self.state.lock().pending.insert(seq, tx);
            self.sock
                .send(&bytes)
                .await
                .map_err(|e| NetClientError::Io(e.to_string()))?;
            match tokio::time::timeout(self.rto, rx).await {
                Ok(Ok(ResponseOutcome::Acked(Ok(reply)))) => return Ok(reply),
                Ok(Ok(ResponseOutcome::Acked(Err(e)))) => return Err(NetClientError::Fs(e)),
                Ok(Ok(ResponseOutcome::Nacked(r))) => return Err(NetClientError::Nacked(r)),
                Ok(Err(_)) | Err(_) => {
                    // lost or timed out: retry with the SAME seq (the
                    // server's dedup window makes this at-most-once).
                    self.state.lock().pending.remove(&seq);
                }
            }
        }
        Err(NetClientError::Timeout)
    }

    async fn hello(&self) -> Result<()> {
        let sent_at = mono_now();
        match self.request(RequestBody::Hello).await? {
            ReplyBody::HelloOk { session } => {
                let mut st = self.state.lock();
                st.session = Some(session);
                st.lease.reset_session(sent_at, mono_now());
                st.held.clear();
                st.seen_pushes.clear();
                Ok(())
            }
            _ => Err(NetClientError::Protocol),
        }
    }

    /// Re-establish a session after expiry (public for tests/tools).
    pub async fn rehello(&self) -> Result<()> {
        self.hello().await
    }

    /// Current lease phase on this client's clock.
    pub fn lease_phase(&self) -> Phase {
        let mut st = self.state.lock();
        let now = mono_now();
        let _ = st.lease.poll(now);
        st.lease.phase(now)
    }

    /// Number of lease renewals observed.
    pub fn renewals(&self) -> u64 {
        self.state.lock().lease.renewal_count()
    }

    /// Keep-alives the lease machine has requested.
    pub fn keepalives(&self) -> u64 {
        self.state.lock().lease.keepalive_count()
    }

    /// Create a file under `parent`.
    pub async fn create(&self, parent: Ino, name: &str) -> Result<Ino> {
        match self.request(RequestBody::Create { parent, name: name.into() }).await? {
            ReplyBody::Created { ino } => Ok(ino),
            _ => Err(NetClientError::Protocol),
        }
    }

    /// Make a directory.
    pub async fn mkdir(&self, parent: Ino, name: &str) -> Result<Ino> {
        match self.request(RequestBody::Mkdir { parent, name: name.into() }).await? {
            ReplyBody::Created { ino } => Ok(ino),
            _ => Err(NetClientError::Protocol),
        }
    }

    /// Resolve a name.
    pub async fn lookup(&self, parent: Ino, name: &str) -> Result<(Ino, FileAttr)> {
        match self.request(RequestBody::Lookup { parent, name: name.into() }).await? {
            ReplyBody::Resolved { ino, attr } => Ok((ino, attr)),
            _ => Err(NetClientError::Protocol),
        }
    }

    /// Fetch attributes.
    pub async fn getattr(&self, ino: Ino) -> Result<FileAttr> {
        match self.request(RequestBody::GetAttr { ino }).await? {
            ReplyBody::Attr { attr } => Ok(attr),
            _ => Err(NetClientError::Protocol),
        }
    }

    /// List a directory.
    pub async fn readdir(&self, dir: Ino) -> Result<Vec<(String, Ino)>> {
        match self.request(RequestBody::ReadDir { dir }).await? {
            ReplyBody::Dir { entries } => Ok(entries),
            _ => Err(NetClientError::Protocol),
        }
    }

    /// Remove a file.
    pub async fn unlink(&self, parent: Ino, name: &str) -> Result<()> {
        match self.request(RequestBody::Unlink { parent, name: name.into() }).await? {
            ReplyBody::Ok => Ok(()),
            _ => Err(NetClientError::Protocol),
        }
    }

    /// Acquire a data lock; waits for the grant (the server answers when
    /// the lock becomes available).
    pub async fn lock(&self, ino: Ino, mode: LockMode) -> Result<tank_proto::Epoch> {
        match self.request(RequestBody::LockAcquire { ino, mode }).await? {
            ReplyBody::LockGranted { epoch, .. } => {
                self.state.lock().held.insert(ino);
                Ok(epoch)
            }
            _ => Err(NetClientError::Protocol),
        }
    }

    /// Release a data lock (the grant to release is named by its epoch).
    pub async fn release(&self, ino: Ino, epoch: tank_proto::Epoch) -> Result<()> {
        match self.request(RequestBody::LockRelease { ino, epoch }).await? {
            ReplyBody::Ok => {
                self.state.lock().held.remove(&ino);
                Ok(())
            }
            _ => Err(NetClientError::Protocol),
        }
    }

    /// Send one explicit keep-alive (normally the background task does
    /// this when the lease machine asks).
    pub async fn keep_alive(&self) -> Result<()> {
        match self.request(RequestBody::KeepAlive).await? {
            ReplyBody::Ok => Ok(()),
            _ => Err(NetClientError::Protocol),
        }
    }

    /// The root inode of the server's namespace.
    pub fn root(&self) -> Ino {
        Ino(1)
    }
}
