//! Real-network loopback tests: the sans-io protocol over actual UDP
//! sockets and OS threads.
//!
//! These use short leases (τ = 600ms) so lease expiry is observable in
//! test time; they are wall-clock tests and tolerate scheduling slop.

use std::time::{Duration, Instant};

use tank_core::{LeaseConfig, Phase};
use tank_net::client::NetClientError;
use tank_net::server::{LeaseServer, NetServerConfig};
use tank_net::{DirFaults, FaultConfig, TankClient};
use tank_proto::LockMode;
use tank_sim::LocalNs;

fn short_lease() -> LeaseConfig {
    let mut l = LeaseConfig::with_tau(LocalNs::from_millis(600));
    l.epsilon = 0.01;
    l
}

fn server_cfg() -> NetServerConfig {
    NetServerConfig {
        lease: short_lease(),
        push_retry: Duration::from_millis(50),
        push_retries: 2,
        release_timeout: Duration::from_millis(500),
        ..NetServerConfig::default()
    }
}

#[test]
fn metadata_roundtrip_over_udp() {
    let server = LeaseServer::spawn("127.0.0.1:0", server_cfg()).unwrap();
    let addr = server.addr.to_string();
    let client = TankClient::connect(&addr, short_lease()).unwrap();

    let root = client.root();
    let dir = client.mkdir(root, "docs").unwrap();
    let file = client.create(dir, "a.txt").unwrap();
    let (resolved, attr) = client.lookup(dir, "a.txt").unwrap();
    assert_eq!(resolved, file);
    assert!(!attr.is_dir);
    let listing = client.readdir(dir).unwrap();
    assert_eq!(listing.len(), 1);
    assert_eq!(listing[0].0, "a.txt");
    client.unlink(dir, "a.txt").unwrap();
    assert!(matches!(
        client.lookup(dir, "a.txt"),
        Err(NetClientError::Fs(tank_proto::message::FsError::NotFound))
    ));
    drop(client);
    let stats = server.stop();
    assert!(stats.requests >= 6);
    assert_eq!(stats.delivery_errors, 0);
}

#[test]
fn keepalives_maintain_the_lease_while_idle() {
    let server = LeaseServer::spawn("127.0.0.1:0", server_cfg()).unwrap();
    let client = TankClient::connect(&server.addr.to_string(), short_lease()).unwrap();
    // Idle for several lease periods (τ = 600ms): the background thread
    // must keep the lease out of Suspect/Expired the whole time.
    std::thread::sleep(Duration::from_millis(2_500));
    let phase = client.lease_phase();
    assert!(
        matches!(phase, Phase::Valid | Phase::Renewal),
        "idle client stayed leased, got {phase:?}"
    );
    assert!(client.keepalives() > 0, "keep-alives actually flowed");
    // And the client still works.
    client.create(client.root(), "later").unwrap();
    server.stop();
}

#[test]
fn lock_demand_moves_between_live_clients() {
    let server = LeaseServer::spawn("127.0.0.1:0", server_cfg()).unwrap();
    let addr = server.addr.to_string();
    let c1 = TankClient::connect(&addr, short_lease()).unwrap();
    let c2 = TankClient::connect(&addr, short_lease()).unwrap();

    let file = c1.create(c1.root(), "contested").unwrap();
    let e1 = c1.lock(file, LockMode::Exclusive).unwrap();
    // C2's acquire triggers a demand at C1, which auto-releases; the
    // server then grants C2 with a newer epoch.
    let e2 = c2.lock(file, LockMode::Exclusive).unwrap();
    assert!(e2 > e1, "epochs are monotone across the handover");
    let stats = server.stop();
    assert_eq!(
        stats.delivery_errors, 0,
        "live clients answered their demands"
    );
}

#[test]
fn dead_client_is_timed_out_and_its_lock_stolen() {
    let server = LeaseServer::spawn("127.0.0.1:0", server_cfg()).unwrap();
    let addr = server.addr.to_string();
    let c1 = TankClient::connect(&addr, short_lease()).unwrap();
    let file = c1.create(c1.root(), "orphan").unwrap();
    c1.lock(file, LockMode::Exclusive).unwrap();
    // Kill the client (its threads exit): demands go unanswered, the
    // server declares a delivery error and arms τ(1+ε).
    drop(c1);

    let c2 = TankClient::connect(&addr, short_lease()).unwrap();
    let t0 = Instant::now();
    // The grant arrives only after the lease expires (~600ms·1.01 past
    // the delivery error) — the client retries until then.
    let mut granted = None;
    for _ in 0..40 {
        match c2.lock(file, LockMode::Exclusive) {
            Ok(e) => {
                granted = Some(e);
                break;
            }
            Err(NetClientError::Timeout) => continue,
            Err(other) => panic!("unexpected: {other}"),
        }
    }
    granted.expect("lock eventually granted");
    let waited = t0.elapsed();
    assert!(
        waited >= Duration::from_millis(400),
        "grant cannot beat the lease timeout, got {waited:?}"
    );
    let stats = server.stop();
    assert!(stats.delivery_errors >= 1);
    assert!(stats.steals >= 1);
}

#[test]
fn suspect_client_is_nacked_and_recovers_with_hello() {
    let server = LeaseServer::spawn("127.0.0.1:0", server_cfg()).unwrap();
    let addr = server.addr.to_string();
    let c1 = TankClient::connect(&addr, short_lease()).unwrap();
    let file = c1.create(c1.root(), "f").unwrap();
    c1.lock(file, LockMode::Exclusive).unwrap();

    // Simulate C1 missing the demand: we cannot block UDP on loopback, so
    // emulate the § 3.3 window by dropping C1 entirely and verifying the
    // NACK-until-steal window from a *new* socket reusing nothing.
    drop(c1);
    let c2 = TankClient::connect(&addr, short_lease()).unwrap();
    // Force the delivery error (the lock call blocks until granted; we
    // only need the demand to fire, so run it on a scratch thread).
    {
        let c2addr = addr.clone();
        std::thread::spawn(move || {
            let c3 = TankClient::connect(&c2addr, short_lease()).unwrap();
            let _ = c3.lock(file, LockMode::Exclusive);
        });
    }
    // Eventually the steal frees it.
    std::thread::sleep(Duration::from_millis(900));
    let epoch = c2.lock(file, LockMode::Exclusive).unwrap();
    assert!(epoch.0 >= 2);
    let stats = server.stop();
    assert!(stats.steals >= 1);
}

#[test]
fn restarted_server_enforces_the_grace_window_then_serves() {
    let s1 = LeaseServer::spawn("127.0.0.1:0", server_cfg()).unwrap();
    let addr = s1.addr.to_string();
    let client = TankClient::connect(&addr, short_lease()).unwrap();
    client.create(client.root(), "pre").unwrap();
    assert_eq!(client.server_incarnation(), Some(1));

    // Fail-stop: the server vanishes with all its volatile state.
    let _ = s1.stop();
    // ... and restarts on the same address as the next incarnation,
    // inside the recovery grace window.
    let mut cfg = server_cfg();
    cfg.incarnation = 2;
    cfg.recover = true;
    let t0 = Instant::now();
    let s2 = LeaseServer::spawn(&addr, cfg).unwrap();

    // A mutation issued immediately is NACKed `Recovering` until the
    // grace window (τ(1+ε) ≈ 606ms) has passed; the client rides the
    // NACKs out, re-hellos its stale session, and then succeeds.
    client.create(client.root(), "post").unwrap();
    let waited = t0.elapsed();
    assert!(
        waited >= Duration::from_millis(500),
        "grace window held the mutation back, got {waited:?}"
    );
    assert_eq!(
        client.server_incarnation(),
        Some(2),
        "client saw the restart"
    );
    let stats = s2.stop();
    assert!(
        stats.recovery_nacks >= 1,
        "the mutation was refused during grace"
    );
}

#[test]
fn restart_without_grace_serves_immediately_negative_control() {
    let s1 = LeaseServer::spawn("127.0.0.1:0", server_cfg()).unwrap();
    let addr = s1.addr.to_string();
    let client = TankClient::connect(&addr, short_lease()).unwrap();
    client.create(client.root(), "pre").unwrap();
    let _ = s1.stop();

    // Restart WITHOUT the grace window: the unsafe configuration. The
    // mutation goes through (after a re-hello) well before τ(1+ε).
    let mut cfg = server_cfg();
    cfg.incarnation = 2;
    let t0 = Instant::now();
    let s2 = LeaseServer::spawn(&addr, cfg).unwrap();
    client.create(client.root(), "post").unwrap();
    assert!(
        t0.elapsed() < Duration::from_millis(500),
        "no grace window: served straight away (which is exactly the hazard)"
    );
    let stats = s2.stop();
    assert_eq!(stats.recovery_nacks, 0);
}

#[test]
fn duplicated_requests_execute_at_most_once() {
    // The server's socket duplicates every datagram it receives: each
    // request is admitted twice, and the second copy must be answered
    // from the replay cache, not re-executed.
    let mut cfg = server_cfg();
    cfg.faults = FaultConfig {
        seed: 7,
        recv: DirFaults::duplicating(1.0),
        ..FaultConfig::none()
    };
    let server = LeaseServer::spawn("127.0.0.1:0", cfg).unwrap();
    let client = TankClient::connect(&server.addr.to_string(), short_lease()).unwrap();

    let root = client.root();
    for i in 0..10 {
        client.create(root, &format!("f{i}")).unwrap();
    }
    // Re-creating any name fails with Exists — proof the duplicates did
    // not create doppelgänger files under the same name.
    assert!(matches!(
        client.create(root, "f0"),
        Err(NetClientError::Fs(tank_proto::message::FsError::Exists))
    ));
    assert_eq!(client.readdir(root).unwrap().len(), 10);
    drop(client);
    let stats = server.stop();
    assert!(
        stats.replays >= 10,
        "duplicates hit the replay cache: {}",
        stats.replays
    );
}

#[test]
fn lossy_client_socket_is_covered_by_retransmission() {
    let server = LeaseServer::spawn("127.0.0.1:0", server_cfg()).unwrap();
    // 30% of this client's datagrams (requests AND keep-alives) vanish;
    // the exponential-backoff retransmission still lands every request.
    let faults = FaultConfig {
        seed: 42,
        send: DirFaults::dropping(0.3),
        ..FaultConfig::none()
    };
    let client = TankClient::connect_with(&server.addr.to_string(), short_lease(), faults).unwrap();
    let root = client.root();
    for i in 0..10 {
        client.create(root, &format!("g{i}")).unwrap();
    }
    assert_eq!(client.readdir(root).unwrap().len(), 10);
    drop(client);
    server.stop();
}

#[test]
fn observed_client_records_rtt_and_fault_metrics() {
    let server = LeaseServer::spawn("127.0.0.1:0", server_cfg()).unwrap();
    let registry = std::sync::Arc::new(tank_obs::Registry::new());
    // A drop rate high enough that some request almost surely needs a
    // retransmission across the run, but low enough to always converge.
    let faults = FaultConfig {
        seed: 7,
        send: DirFaults::dropping(0.3),
        ..FaultConfig::none()
    };
    let client = TankClient::connect_observed(
        &server.addr.to_string(),
        short_lease(),
        faults,
        Some(&registry),
    )
    .unwrap();
    let root = client.root();
    for i in 0..10 {
        client.create(root, &format!("m{i}")).unwrap();
    }
    drop(client);
    server.stop();

    let snap = registry.snapshot();
    let rtt = snap.histogram("net.client.rtt_ns").unwrap();
    // Hello + 10 creates all completed, each stamping one round trip.
    assert!(rtt.count >= 11, "rtt count = {}", rtt.count);
    assert!(rtt.max > Some(0) && rtt.min <= rtt.max);
    let retx = snap.histogram("net.client.retransmissions").unwrap();
    assert_eq!(retx.count, rtt.count);
    // 30% send-drop over ~20+ datagrams: the fault layer must have
    // recorded drops, and every drop forces a retransmission eventually.
    assert!(snap.counter("net.fault.send_dropped").unwrap_or(0) > 0);
    assert_eq!(snap.counter("net.client.timeouts").unwrap_or(0), 0);
}
