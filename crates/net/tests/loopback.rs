//! Real-network loopback tests: the sans-io protocol over actual UDP
//! sockets and tokio timers.
//!
//! These use short leases (τ = 600ms) so lease expiry is observable in
//! test time; they are wall-clock tests and tolerate scheduling slop.

use std::time::Duration;

use tank_core::{LeaseConfig, Phase};
use tank_net::client::NetClientError;
use tank_net::server::{LeaseServer, NetServerConfig};
use tank_net::TankClient;
use tank_proto::LockMode;
use tank_sim::LocalNs;

fn short_lease() -> LeaseConfig {
    let mut l = LeaseConfig::with_tau(LocalNs::from_millis(600));
    l.epsilon = 0.01;
    l
}

fn server_cfg() -> NetServerConfig {
    NetServerConfig {
        lease: short_lease(),
        push_retry: Duration::from_millis(50),
        push_retries: 2,
        release_timeout: Duration::from_millis(500),
    }
}

#[tokio::test]
async fn metadata_roundtrip_over_udp() {
    let server = LeaseServer::spawn("127.0.0.1:0", server_cfg()).await.unwrap();
    let addr = server.addr.to_string();
    let client = TankClient::connect(&addr, short_lease()).await.unwrap();

    let root = client.root();
    let dir = client.mkdir(root, "docs").await.unwrap();
    let file = client.create(dir, "a.txt").await.unwrap();
    let (resolved, attr) = client.lookup(dir, "a.txt").await.unwrap();
    assert_eq!(resolved, file);
    assert!(!attr.is_dir);
    let listing = client.readdir(dir).await.unwrap();
    assert_eq!(listing.len(), 1);
    assert_eq!(listing[0].0, "a.txt");
    client.unlink(dir, "a.txt").await.unwrap();
    assert!(matches!(
        client.lookup(dir, "a.txt").await,
        Err(NetClientError::Fs(tank_proto::message::FsError::NotFound))
    ));
    drop(client);
    let stats = server.stop().await;
    assert!(stats.requests >= 6);
    assert_eq!(stats.delivery_errors, 0);
}

#[tokio::test]
async fn keepalives_maintain_the_lease_while_idle() {
    let server = LeaseServer::spawn("127.0.0.1:0", server_cfg()).await.unwrap();
    let client = TankClient::connect(&server.addr.to_string(), short_lease()).await.unwrap();
    // Idle for several lease periods (τ = 600ms): the background task
    // must keep the lease out of Suspect/Expired the whole time.
    tokio::time::sleep(Duration::from_millis(2_500)).await;
    let phase = client.lease_phase();
    assert!(
        matches!(phase, Phase::Valid | Phase::Renewal),
        "idle client stayed leased, got {phase:?}"
    );
    assert!(client.keepalives() > 0, "keep-alives actually flowed");
    // And the client still works.
    client.create(client.root(), "later").await.unwrap();
    server.stop().await;
}

#[tokio::test]
async fn lock_demand_moves_between_live_clients() {
    let server = LeaseServer::spawn("127.0.0.1:0", server_cfg()).await.unwrap();
    let addr = server.addr.to_string();
    let c1 = TankClient::connect(&addr, short_lease()).await.unwrap();
    let c2 = TankClient::connect(&addr, short_lease()).await.unwrap();

    let file = c1.create(c1.root(), "contested").await.unwrap();
    let e1 = c1.lock(file, LockMode::Exclusive).await.unwrap();
    // C2's acquire triggers a demand at C1, which auto-releases; the
    // server then grants C2 with a newer epoch.
    let e2 = c2.lock(file, LockMode::Exclusive).await.unwrap();
    assert!(e2 > e1, "epochs are monotone across the handover");
    let stats = server.stop().await;
    assert_eq!(stats.delivery_errors, 0, "live clients answered their demands");
}

#[tokio::test]
async fn dead_client_is_timed_out_and_its_lock_stolen() {
    let server = LeaseServer::spawn("127.0.0.1:0", server_cfg()).await.unwrap();
    let addr = server.addr.to_string();
    let c1 = TankClient::connect(&addr, short_lease()).await.unwrap();
    let file = c1.create(c1.root(), "orphan").await.unwrap();
    c1.lock(file, LockMode::Exclusive).await.unwrap();
    // Kill the client (socket closes; its tasks abort): demands go
    // unanswered, the server declares a delivery error and arms τ(1+ε).
    drop(c1);

    let c2 = TankClient::connect(&addr, short_lease()).await.unwrap();
    let t0 = std::time::Instant::now();
    // The grant arrives only after the lease expires (~600ms·1.01 past
    // the delivery error) — the client retries until then.
    let mut granted = None;
    for _ in 0..40 {
        match c2.lock(file, LockMode::Exclusive).await {
            Ok(e) => {
                granted = Some(e);
                break;
            }
            Err(NetClientError::Timeout) => continue,
            Err(other) => panic!("unexpected: {other}"),
        }
    }
    granted.expect("lock eventually granted");
    let waited = t0.elapsed();
    assert!(
        waited >= Duration::from_millis(400),
        "grant cannot beat the lease timeout, got {waited:?}"
    );
    let stats = server.stop().await;
    assert!(stats.delivery_errors >= 1);
    assert!(stats.steals >= 1);
}

#[tokio::test]
async fn suspect_client_is_nacked_and_recovers_with_hello() {
    let server = LeaseServer::spawn("127.0.0.1:0", server_cfg()).await.unwrap();
    let addr = server.addr.to_string();
    let c1 = TankClient::connect(&addr, short_lease()).await.unwrap();
    let file = c1.create(c1.root(), "f").await.unwrap();
    c1.lock(file, LockMode::Exclusive).await.unwrap();

    // Simulate C1 missing the demand: we cannot block UDP on loopback, so
    // emulate the § 3.3 window by a second client forcing the demand while
    // C1 is "slow" — here we instead drop C1 entirely and verify the
    // NACK-until-steal window from a *new* socket reusing nothing.
    drop(c1);
    let c2 = TankClient::connect(&addr, short_lease()).await.unwrap();
    // Force the delivery error.
    let _ = tokio::time::timeout(Duration::from_millis(300), c2.lock(file, LockMode::Exclusive)).await;
    // Eventually the steal frees it.
    tokio::time::sleep(Duration::from_millis(900)).await;
    let epoch = c2.lock(file, LockMode::Exclusive).await.unwrap();
    assert!(epoch.0 >= 2);
    let stats = server.stop().await;
    assert!(stats.steals >= 1);
}
