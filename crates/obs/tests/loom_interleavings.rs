//! Exhaustive interleaving checks for the instrument CAS loops.
//!
//! `tank_obs::algo` is generic over [`AtomicWord`], so the *same*
//! functions `Counter::add` and `Histogram::observe` execute in
//! production are model-checked here over the loom shim's `AtomicU64`,
//! whose every access is a scheduling point. Each `loom::model` call
//! explores every interleaving of its threads (see `stubs/loom`), so
//! these tests are proofs over the schedule space, not samples of it.
//!
//! This test runs in the default suite: the shim's schedule counts for
//! two threads of a few atomic ops each are tens to hundreds, not the
//! exponential blowups real loom budgets for.

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::Arc;
use loom::thread;
use tank_obs::algo::{self, AtomicWord};

/// The loom-shim atomic satisfies the same word contract as std's; the
/// orderings requested match the production impl in `tank_obs::algo`.
struct ModelWord(AtomicU64);

impl AtomicWord for ModelWord {
    fn load_relaxed(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn compare_exchange_weak_relaxed(&self, current: u64, new: u64) -> Result<u64, u64> {
        self.0
            .compare_exchange_weak(current, new, Ordering::Relaxed, Ordering::Relaxed)
    }
}

/// `Counter::add`'s loop never loses a concurrent update: two racing
/// adds always both land.
#[test]
fn counter_add_never_loses_updates() {
    loom::model(|| {
        let cell = Arc::new(ModelWord(AtomicU64::new(0)));
        let c = cell.clone();
        let h = thread::spawn(move || algo::saturating_add(&*c, 1));
        algo::saturating_add(&*cell, 2);
        h.join().unwrap();
        assert_eq!(cell.load_relaxed(), 3);
    });
}

/// Saturation holds under every schedule: once a racing add pins the
/// counter at `u64::MAX`, no interleaving of the other add can wrap it.
#[test]
fn counter_add_saturates_under_races() {
    loom::model(|| {
        let cell = Arc::new(ModelWord(AtomicU64::new(u64::MAX - 1)));
        let c = cell.clone();
        let h = thread::spawn(move || algo::saturating_add(&*c, 5));
        algo::saturating_add(&*cell, 7);
        h.join().unwrap();
        assert_eq!(cell.load_relaxed(), u64::MAX, "pinned, not wrapped");
    });
}

/// `Histogram::observe`'s min/max CAS loops converge to the true extrema
/// regardless of which recording wins each race.
#[test]
fn histogram_min_max_cas_races() {
    loom::model(|| {
        let min = Arc::new(ModelWord(AtomicU64::new(u64::MAX)));
        let max = Arc::new(ModelWord(AtomicU64::new(0)));
        let (min2, max2) = (min.clone(), max.clone());
        // Two concurrent Histogram::observe calls recording 5 and 9.
        let h = thread::spawn(move || {
            algo::cas_min(&*min2, 5);
            algo::cas_max(&*max2, 5);
        });
        algo::cas_min(&*min, 9);
        algo::cas_max(&*max, 9);
        h.join().unwrap();
        assert_eq!(min.load_relaxed(), 5);
        assert_eq!(max.load_relaxed(), 9);
    });
}

/// The histogram's saturating sum loop: concurrent observations near the
/// ceiling pin the sum at `u64::MAX` in every schedule.
#[test]
fn histogram_sum_saturates_under_races() {
    loom::model(|| {
        let sum = Arc::new(ModelWord(AtomicU64::new(u64::MAX - 3)));
        let s = sum.clone();
        let h = thread::spawn(move || algo::saturating_add(&*s, 2));
        algo::saturating_add(&*sum, 2);
        h.join().unwrap();
        assert_eq!(sum.load_relaxed(), u64::MAX);
    });
}
