//! OBSERVABILITY.md is a contract: its metric table must list exactly
//! the instruments the code registers — same names, same kinds, same
//! units. This test diffs the doc against `names::ALL` and against a
//! freshly populated registry so neither can drift from the other.

use std::collections::BTreeMap;

use tank_obs::names::{self, MetricKind};
use tank_obs::Registry;

/// Parse the metric-contract table: rows shaped
/// `| `name` | C/H | unit | emitted by | meaning |`.
/// (The trace-kind table also backticks its first cell, but its second
/// cell is never a bare `C`/`H`.)
fn doc_metrics() -> BTreeMap<String, (MetricKind, String)> {
    let doc = include_str!("../../../OBSERVABILITY.md");
    let mut out = BTreeMap::new();
    for line in doc.lines() {
        let cells: Vec<&str> = line
            .trim()
            .trim_start_matches('|')
            .trim_end_matches('|')
            .split('|')
            .map(str::trim)
            .collect();
        if cells.len() != 5 {
            continue;
        }
        let kind = match cells[1] {
            "C" => MetricKind::Counter,
            "H" => MetricKind::Histogram,
            _ => continue,
        };
        let name = cells[0].trim_matches('`').to_string();
        let unit = cells[2].trim_matches('`').to_string();
        assert!(
            out.insert(name.clone(), (kind, unit)).is_none(),
            "OBSERVABILITY.md lists {name} twice"
        );
    }
    out
}

#[test]
fn doc_table_matches_declared_contract() {
    let doc = doc_metrics();
    assert!(
        !doc.is_empty(),
        "no metric rows parsed from OBSERVABILITY.md"
    );
    for def in names::ALL {
        let Some((kind, unit)) = doc.get(def.name) else {
            panic!(
                "{} is registered but missing from OBSERVABILITY.md",
                def.name
            );
        };
        assert_eq!(*kind, def.kind, "{}: kind differs from doc", def.name);
        assert_eq!(unit, def.unit, "{}: unit differs from doc", def.name);
    }
    for name in doc.keys() {
        assert!(
            names::ALL.iter().any(|d| d.name == name),
            "OBSERVABILITY.md documents {name}, which no code registers"
        );
    }
}

#[test]
fn doc_table_matches_live_registry() {
    let registry = Registry::new();
    names::register_all(&registry);
    let snapshot = registry.snapshot();
    let doc = doc_metrics();
    let registered = snapshot.names();
    let documented: Vec<String> = doc.keys().cloned().collect();
    assert_eq!(
        registered, documented,
        "registry contents differ from the OBSERVABILITY.md table"
    );
}
