//! The lock-free update algorithms behind [`Counter`](crate::Counter) and
//! [`Histogram`](crate::Histogram), written against an atomic-word trait
//! so the *same* code paths run in production (over
//! `std::sync::atomic::AtomicU64`) and under the exhaustive interleaving
//! checker (over the `loom` shim's `AtomicU64`, see
//! `crates/obs/tests/loom_interleavings.rs`). The model checker then
//! vouches for exactly the loops the hot path executes, not a copy.

use std::sync::atomic::{AtomicU64, Ordering};

/// The slice of the atomic-`u64` API the instrument algorithms need.
///
/// All operations are `Relaxed`: each instrument cell is an independent
/// statistic, so only the per-cell total modification order matters, never
/// cross-cell ordering.
pub trait AtomicWord {
    /// Relaxed load.
    fn load_relaxed(&self) -> u64;
    /// Relaxed weak compare-exchange; `Err` carries the observed value.
    fn compare_exchange_weak_relaxed(&self, current: u64, new: u64) -> Result<u64, u64>;
}

impl AtomicWord for AtomicU64 {
    fn load_relaxed(&self) -> u64 {
        self.load(Ordering::Relaxed)
    }

    fn compare_exchange_weak_relaxed(&self, current: u64, new: u64) -> Result<u64, u64> {
        self.compare_exchange_weak(current, new, Ordering::Relaxed, Ordering::Relaxed)
    }
}

/// Add `n` to `cell`, saturating at `u64::MAX`.
///
/// The CAS loop makes the read-modify-write atomic (no lost updates), and
/// saturation keeps an overflowed statistic pinned at the maximum instead
/// of wrapping back to a small value.
pub fn saturating_add(cell: &impl AtomicWord, n: u64) {
    let mut cur = cell.load_relaxed();
    loop {
        let next = cur.saturating_add(n);
        match cell.compare_exchange_weak_relaxed(cur, next) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Lower `cell` to `v` if `v` is smaller (a running minimum).
pub fn cas_min(cell: &impl AtomicWord, v: u64) {
    let mut cur = cell.load_relaxed();
    while v < cur {
        match cell.compare_exchange_weak_relaxed(cur, v) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Raise `cell` to `v` if `v` is larger (a running maximum).
pub fn cas_max(cell: &impl AtomicWord, v: u64) {
    let mut cur = cell.load_relaxed();
    while v > cur {
        match cell.compare_exchange_weak_relaxed(cur, v) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}
