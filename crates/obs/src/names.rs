//! The metric contract: every counter and histogram the repo registers.
//!
//! Each instrument is declared once here as a [`MetricDef`] and listed in
//! [`ALL`]. `OBSERVABILITY.md` at the repository root documents the same
//! table for humans; a unit test diffs the two so neither can drift.
//! Emitting crates resolve handles from these constants
//! (`registry.counter_def(&names::CLIENT_RENEWALS)`), never from ad-hoc
//! string literals, so a typo becomes a compile error instead of a
//! silently separate metric.

use crate::Registry;

/// Which instrument a [`MetricDef`] declares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic saturating counter.
    Counter,
    /// Fixed-bucket histogram.
    Histogram,
}

/// Declaration of one metric: name, kind, unit, bounds (histograms only),
/// and a one-line description mirrored in `OBSERVABILITY.md`.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// Dotted registry name, e.g. `"client.renewals"`.
    pub name: &'static str,
    /// Counter or histogram.
    pub kind: MetricKind,
    /// Unit label: `"events"` for counters, `"ns"`/`"attempts"` for
    /// histograms.
    pub unit: &'static str,
    /// Inclusive upper bucket bounds; empty for counters.
    pub bounds: &'static [u64],
    /// One-line description (kept in sync with `OBSERVABILITY.md`).
    pub help: &'static str,
}

const fn counter(name: &'static str, help: &'static str) -> MetricDef {
    MetricDef {
        name,
        kind: MetricKind::Counter,
        unit: "events",
        bounds: &[],
        help,
    }
}

const fn histogram(
    name: &'static str,
    unit: &'static str,
    bounds: &'static [u64],
    help: &'static str,
) -> MetricDef {
    MetricDef {
        name,
        kind: MetricKind::Histogram,
        unit,
        bounds,
        help,
    }
}

const MS: u64 = 1_000_000;
const S: u64 = 1_000_000_000;

/// Duration buckets (ns) spanning sub-millisecond sim latencies up to the
/// multi-second lease horizons of the net stack: 1ms–20s.
pub const DURATION_BOUNDS_NS: &[u64] = &[
    MS,
    2 * MS,
    5 * MS,
    10 * MS,
    20 * MS,
    50 * MS,
    100 * MS,
    200 * MS,
    500 * MS,
    S,
    2 * S,
    3 * S,
    4 * S,
    5 * S,
    7 * S,
    10 * S,
    15 * S,
    20 * S,
];

/// Small-count buckets for per-request retransmission counts.
pub const SMALL_COUNT_BOUNDS: &[u64] = &[0, 1, 2, 3, 4, 6, 8, 12, 16];

/// Power-of-two batch-size buckets for the reactor's per-wakeup drain
/// counts (0 = spurious wakeup, cap at the reactor's max batch).
pub const BATCH_SIZE_BOUNDS: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// Client-observed latency buckets (ns) for the open-loop harness:
/// finer than [`DURATION_BOUNDS_NS`] below 1ms because an unsaturated
/// loopback round trip lands in the tens of microseconds.
pub const LATENCY_BOUNDS_NS: &[u64] = &[
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    MS,
    2 * MS,
    5 * MS,
    10 * MS,
    20 * MS,
    50 * MS,
    100 * MS,
    200 * MS,
    500 * MS,
    S,
    2 * S,
    5 * S,
    10 * S,
];

/// Offered-rate buckets (requests/s) for the open-loop sweep: one bucket
/// per decade step from light load to well past the 1-CPU knee.
pub const OFFERED_RATE_BOUNDS: &[u64] = &[
    100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000,
];

// ------------------------------------------------------------- client

/// Successful opportunistic lease renewals (ACK arrived in time).
pub const CLIENT_RENEWALS: MetricDef =
    counter("client.renewals", "successful opportunistic lease renewals");
/// Entries into the Quiescing phase (lease past soft margin, serving stops).
pub const CLIENT_PHASE_QUIESCE: MetricDef = counter(
    "client.phase.quiesce",
    "transitions into the Quiescing phase",
);
/// Entries into the Flushing phase (dirty data pushed while time remains).
pub const CLIENT_PHASE_FLUSH: MetricDef =
    counter("client.phase.flush", "transitions into the Flushing phase");
/// Local lease expiries (cache invalidated, client goes Invalid).
pub const CLIENT_PHASE_INVALID: MetricDef = counter(
    "client.phase.invalid",
    "local lease expiries (cache invalidated)",
);
/// Resumptions of service (new session or renewal after quiesce).
pub const CLIENT_PHASE_RESUME: MetricDef = counter("client.phase.resume", "resumptions of service");
/// Dirty blocks discarded at local expiry (unsynced data lost locally).
pub const CLIENT_EXPIRY_DISCARDED_DIRTY: MetricDef = counter(
    "client.expiry.discarded_dirty",
    "dirty blocks discarded at local expiry",
);
/// Client message retransmissions in the sim stack.
pub const CLIENT_RETRANSMITS: MetricDef =
    counter("client.retransmits", "client message retransmissions (sim)");
/// Messages the client could not interpret (protocol anomalies).
pub const CLIENT_UNEXPECTED_MSGS: MetricDef = counter(
    "client.unexpected_msgs",
    "messages the client could not interpret",
);
/// Per-server lease lanes that expired locally (one shard's cache
/// condemned while the other lanes kept serving).
pub const CLIENT_LANE_EXPIRIES: MetricDef = counter(
    "client.lane.expiries",
    "per-server lease lanes that expired locally",
);
/// Cross-shard renames abandoned before completion (a shard's lane
/// quiesced or a lock acquire failed mid-rename).
pub const CLIENT_RENAME_ABORTS: MetricDef = counter(
    "client.rename.aborts",
    "cross-shard renames abandoned before completion",
);
/// Lease headroom remaining at each successful renewal: old expiry minus
/// ACK arrival, in client-local ns. Negative headroom is impossible — a
/// renewal past expiry is rejected by the lease machine.
pub const CLIENT_RENEWAL_HEADROOM_NS: MetricDef = histogram(
    "client.renewal_headroom_ns",
    "ns",
    DURATION_BOUNDS_NS,
    "lease headroom remaining at each successful renewal",
);
/// Ops per flushed batch (1 = the coalescing queue found nothing to fold).
pub const CLIENT_BATCH_SIZE: MetricDef = histogram(
    "client.batch.size",
    "ops",
    SMALL_COUNT_BOUNDS,
    "ops per flushed control-path batch",
);
/// Why each batch left the queue: 0 = hit the size cap, 1 = the δt flush
/// timer fired, 2 = a sync-point op (lock acquire, rename, SAN round
/// trip...) forced everything queued ahead of it out.
pub const CLIENT_BATCH_FLUSH_REASON: MetricDef = histogram(
    "client.batch.flush_reason",
    "reason",
    SMALL_COUNT_BOUNDS,
    "batch flush trigger (0=size cap, 1=delay, 2=sync point)",
);
/// Read blocks served from the local block cache without a SAN trip
/// (phases 1–2 of the lease lifecycle; CACHING.md has the admission
/// table).
pub const CLIENT_CACHE_HITS: MetricDef = counter(
    "client.cache.hits",
    "read blocks served from the local cache",
);
/// Read blocks that missed the cache and paid a SAN round trip.
pub const CLIENT_CACHE_MISSES: MetricDef = counter(
    "client.cache.misses",
    "read blocks fetched from the SAN on a cache miss",
);
/// Clean blocks evicted to hold the cache at its configured capacity
/// (dirty blocks are never evicted — they drain through write-back).
pub const CLIENT_CACHE_EVICTIONS: MetricDef = counter(
    "client.cache.evictions",
    "clean blocks evicted by the capacity limit",
);
/// Dirty write-back blocks hardened to the SAN (periodic flush, demand
/// flush, or the phase-4 flush-everything campaign).
pub const CLIENT_CACHE_WRITEBACK_FLUSHES: MetricDef = counter(
    "client.cache.writeback_flushes",
    "dirty write-back blocks hardened to the SAN",
);
/// Server demands that revoked a held data lock (flush-then-release on
/// the client; the shared-read → exclusive coherence path).
pub const CLIENT_CACHE_REVOKES: MetricDef = counter(
    "client.cache.revokes",
    "held data locks revoked by a server demand",
);

// ------------------------------------------------------------- server

/// Data locks granted to clients.
pub const SERVER_LOCK_GRANTED: MetricDef = counter("server.lock.granted", "data locks granted");
/// Data locks voluntarily released by clients.
pub const SERVER_LOCK_RELEASED: MetricDef =
    counter("server.lock.released", "data locks voluntarily released");
/// Data locks stolen after lease condemnation.
pub const SERVER_LOCK_STOLEN: MetricDef =
    counter("server.lock.stolen", "data locks stolen after condemnation");
/// Steal sweeps executed (one per condemned client, may steal many locks).
pub const SERVER_STEALS: MetricDef =
    counter("server.steals", "steal sweeps over condemned clients");
/// Demand (push) messages sent asking clients to downgrade/release.
pub const SERVER_DEMANDS_SENT: MetricDef =
    counter("server.demands_sent", "demand/push messages sent");
/// NACKs by reason: the server's lease was timing out.
pub const SERVER_NACK_LEASE_TIMING_OUT: MetricDef = counter(
    "server.nack.lease_timing_out",
    "NACKs with reason LeaseTimingOut",
);
/// NACKs by reason: the client's session had expired.
pub const SERVER_NACK_SESSION_EXPIRED: MetricDef = counter(
    "server.nack.session_expired",
    "NACKs with reason SessionExpired",
);
/// NACKs by reason: the request carried a stale session id.
pub const SERVER_NACK_STALE_SESSION: MetricDef = counter(
    "server.nack.stale_session",
    "NACKs with reason StaleSession",
);
/// NACKs by reason: the server was replaying its log after restart.
pub const SERVER_NACK_RECOVERING: MetricDef =
    counter("server.nack.recovering", "NACKs with reason Recovering");
/// NACKs by reason: the request's governing inode belongs to another
/// shard, or the client's shard map epoch was stale.
pub const SERVER_NACK_MISROUTED: MetricDef =
    counter("server.nack.misrouted", "NACKs with reason Misrouted");
/// Message delivery errors reported by the transport.
pub const SERVER_DELIVERY_ERRORS: MetricDef =
    counter("server.delivery_errors", "transport delivery errors");
/// Condemnation timers armed after a delivery error.
pub const SERVER_CONDEMN_ARMED: MetricDef = counter(
    "server.condemn.armed",
    "condemnation timers armed after delivery errors",
);
/// Condemnation timers that fired (client lease declared dead).
pub const SERVER_CONDEMN_FIRED: MetricDef =
    counter("server.condemn.fired", "condemnation timers that fired");
/// Fence operations completed against the SAN.
pub const SERVER_FENCES: MetricDef = counter("server.fences", "SAN fence operations completed");
/// New client sessions established via HELLO.
pub const SERVER_SESSIONS: MetricDef =
    counter("server.sessions", "new client sessions established");
/// Server recovery windows begun (restart detected).
pub const SERVER_RECOVERY_BEGAN: MetricDef =
    counter("server.recovery.began", "server recovery windows begun");
/// Server recovery windows completed (grace period elapsed).
pub const SERVER_RECOVERY_ENDED: MetricDef =
    counter("server.recovery.ended", "server recovery windows completed");
/// Messages the server could not interpret (protocol anomalies).
pub const SERVER_UNEXPECTED_MSGS: MetricDef = counter(
    "server.unexpected_msgs",
    "messages the server could not interpret",
);
/// Time from arming a condemnation timer to its firing, server-local ns.
/// Theorem 3.1 requires every value ≤ `τ_s(1+ε)`.
pub const SERVER_STEAL_LATENCY_NS: MetricDef = histogram(
    "server.steal_latency_ns",
    "ns",
    DURATION_BOUNDS_NS,
    "condemnation-timer arm-to-fire latency",
);
/// Wall-clock time executing one batch's elements (net stack only — the
/// sim server executes in zero virtual time).
pub const SERVER_BATCH_EXEC_NS: MetricDef = histogram(
    "server.batch.exec_ns",
    "ns",
    DURATION_BOUNDS_NS,
    "wall-clock vectored batch execution time",
);
/// Standby takeovers via the diskless-lease election (τ(1+ε) of
/// replication silence on the standby's own clock).
pub const SERVER_FAILOVER_ELECTIONS: MetricDef = counter(
    "server.failover.elections",
    "standby takeovers via diskless-lease election",
);
/// Modeled log-replay cost per recovery (1µs per replayed WAL record;
/// the sim itself replays in zero virtual time).
pub const SERVER_WAL_REPLAY_LATENCY_NS: MetricDef = histogram(
    "server.wal.replay_latency_ns",
    "ns",
    DURATION_BOUNDS_NS,
    "modeled WAL replay cost per recovery",
);
/// Data locks granted in `SharedRead` mode (N concurrent reader caches).
pub const SERVER_DATALOCK_SHARED_GRANTS: MetricDef = counter(
    "server.datalock.shared_grants",
    "data locks granted in SharedRead mode",
);
/// Data locks granted in `Exclusive` mode (single writer).
pub const SERVER_DATALOCK_EXCLUSIVE_GRANTS: MetricDef = counter(
    "server.datalock.exclusive_grants",
    "data locks granted in Exclusive mode",
);
/// Revocation demands sent against held data locks (a waiter needs an
/// incompatible mode — the revoke-to-exclusive coherence storm path).
pub const SERVER_DATALOCK_REVOKES: MetricDef = counter(
    "server.datalock.revokes",
    "revocation demands sent against held data locks",
);

// --------------------------------------------------------------- meta

/// Redo records appended to the metadata write-ahead log.
pub const META_WAL_APPENDS: MetricDef =
    counter("meta.wal.appends", "redo records appended to the WAL");
/// Group-commit fsyncs that advanced the durable watermark (one per
/// acknowledgment point with new records, not one per record).
pub const META_WAL_FSYNCS: MetricDef = counter(
    "meta.wal.fsyncs",
    "group-commit fsyncs that advanced the durable watermark",
);
/// Snapshot compactions (log folded into a fresh snapshot generation).
pub const META_SNAPSHOT_COMPACTIONS: MetricDef = counter(
    "meta.snapshot.compactions",
    "WAL compactions into a fresh snapshot generation",
);

// -------------------------------------------------------- consistency

/// Causal records the happens-before auditor consumed.
pub const CONSISTENCY_HB_EVENTS: MetricDef = counter(
    "consistency.hb.events",
    "causal records consumed by the happens-before auditor",
);
/// Happens-before edges the auditor built over those records.
pub const CONSISTENCY_HB_EDGES: MetricDef = counter(
    "consistency.hb.edges",
    "happens-before edges built by the auditor",
);
/// Conflicting block-access pairs left unordered by happens-before.
pub const CONSISTENCY_HB_RACY_PAIRS: MetricDef = counter(
    "consistency.hb.racy_pairs",
    "conflicting access pairs left unordered by happens-before",
);

// ---------------------------------------------------------------- sim

/// Messages submitted to the simulated network.
pub const SIM_MSG_SENT: MetricDef = counter(
    "sim.msg.sent",
    "messages submitted to the simulated network",
);
/// Messages delivered to a live destination actor.
pub const SIM_MSG_DELIVERED: MetricDef =
    counter("sim.msg.delivered", "messages delivered to live actors");
/// Messages dropped by loss injection.
pub const SIM_MSG_DROPPED: MetricDef =
    counter("sim.msg.dropped", "messages dropped by loss injection");
/// Messages dropped by a partition (link blocked).
pub const SIM_MSG_BLOCKED: MetricDef =
    counter("sim.msg.blocked", "messages dropped by a partition");
/// Messages discarded because the destination was dead at delivery.
pub const SIM_MSG_TO_DEAD: MetricDef = counter(
    "sim.msg.to_dead",
    "messages discarded at a dead destination",
);

// ---------------------------------------------------------------- net

/// UDP datagrams dropped on send by fault injection.
pub const NET_FAULT_SEND_DROPPED: MetricDef = counter(
    "net.fault.send_dropped",
    "datagrams dropped on send by fault injection",
);
/// UDP datagrams duplicated on send by fault injection.
pub const NET_FAULT_SEND_DUP: MetricDef = counter(
    "net.fault.send_dup",
    "datagrams duplicated on send by fault injection",
);
/// UDP datagrams delayed on send by fault injection.
pub const NET_FAULT_SEND_DELAYED: MetricDef = counter(
    "net.fault.send_delayed",
    "datagrams delayed on send by fault injection",
);
/// UDP datagrams dropped on receive by fault injection.
pub const NET_FAULT_RECV_DROPPED: MetricDef = counter(
    "net.fault.recv_dropped",
    "datagrams dropped on receive by fault injection",
);
/// UDP datagrams duplicated on receive by fault injection.
pub const NET_FAULT_RECV_DUP: MetricDef = counter(
    "net.fault.recv_dup",
    "datagrams duplicated on receive by fault injection",
);
/// Requests that exhausted all retries without any reply.
pub const NET_CLIENT_TIMEOUTS: MetricDef =
    counter("net.client.timeouts", "requests that exhausted all retries");
/// Wall-clock round-trip time per completed request (first send to final
/// reply), in ns.
pub const NET_CLIENT_RTT_NS: MetricDef = histogram(
    "net.client.rtt_ns",
    "ns",
    DURATION_BOUNDS_NS,
    "round-trip time per completed request",
);
/// Retransmissions needed per completed request (0 = first try).
pub const NET_CLIENT_RETRANSMISSIONS: MetricDef = histogram(
    "net.client.retransmissions",
    "attempts",
    SMALL_COUNT_BOUNDS,
    "retransmissions needed per completed request",
);
/// Datagrams that failed to decode in the client's receive loop.
pub const NET_CLIENT_DECODE_ERRORS: MetricDef = counter(
    "net.client.decode_errors",
    "datagrams that failed to decode in the client recv loop",
);
/// Reactor wakeups (poll returns with ≥1 ready event or a due timer).
pub const NET_REACTOR_WAKEUPS: MetricDef = counter("net.reactor.wakeups", "reactor poll wakeups");
/// Datagrams drained from the socket per reactor wakeup.
pub const NET_REACTOR_DATAGRAMS_PER_WAKEUP: MetricDef = histogram(
    "net.reactor.datagrams_per_wakeup",
    "datagrams",
    BATCH_SIZE_BOUNDS,
    "datagrams drained per reactor wakeup",
);
/// Worker-pool queue depth observed after each batch submission.
pub const NET_REACTOR_WORKER_QUEUE_DEPTH: MetricDef = histogram(
    "net.reactor.worker_queue_depth",
    "batches",
    SMALL_COUNT_BOUNDS,
    "worker-pool queue depth after each batch submission",
);

// -------------------------------------------------------------- bench

/// Offered request rate of each open-loop run (one observation per run).
pub const BENCH_OFFERED_RATE: MetricDef = histogram(
    "bench.offered_rate",
    "req/s",
    OFFERED_RATE_BOUNDS,
    "offered request rate per open-loop run",
);
/// Client-observed request latency under open load (send to reply), ns.
pub const BENCH_LATENCY_NS: MetricDef = histogram(
    "bench.latency_ns",
    "ns",
    LATENCY_BOUNDS_NS,
    "client-observed request latency under open load",
);

/// Every metric the repo registers, grouped by layer. `OBSERVABILITY.md`
/// mirrors this list; `register_all` materialises it.
pub const ALL: &[MetricDef] = &[
    // client
    CLIENT_RENEWALS,
    CLIENT_PHASE_QUIESCE,
    CLIENT_PHASE_FLUSH,
    CLIENT_PHASE_INVALID,
    CLIENT_PHASE_RESUME,
    CLIENT_EXPIRY_DISCARDED_DIRTY,
    CLIENT_RETRANSMITS,
    CLIENT_UNEXPECTED_MSGS,
    CLIENT_LANE_EXPIRIES,
    CLIENT_RENAME_ABORTS,
    CLIENT_RENEWAL_HEADROOM_NS,
    CLIENT_BATCH_SIZE,
    CLIENT_BATCH_FLUSH_REASON,
    CLIENT_CACHE_HITS,
    CLIENT_CACHE_MISSES,
    CLIENT_CACHE_EVICTIONS,
    CLIENT_CACHE_WRITEBACK_FLUSHES,
    CLIENT_CACHE_REVOKES,
    // server
    SERVER_LOCK_GRANTED,
    SERVER_LOCK_RELEASED,
    SERVER_LOCK_STOLEN,
    SERVER_STEALS,
    SERVER_DEMANDS_SENT,
    SERVER_NACK_LEASE_TIMING_OUT,
    SERVER_NACK_SESSION_EXPIRED,
    SERVER_NACK_STALE_SESSION,
    SERVER_NACK_RECOVERING,
    SERVER_NACK_MISROUTED,
    SERVER_DELIVERY_ERRORS,
    SERVER_CONDEMN_ARMED,
    SERVER_CONDEMN_FIRED,
    SERVER_FENCES,
    SERVER_SESSIONS,
    SERVER_RECOVERY_BEGAN,
    SERVER_RECOVERY_ENDED,
    SERVER_UNEXPECTED_MSGS,
    SERVER_STEAL_LATENCY_NS,
    SERVER_BATCH_EXEC_NS,
    SERVER_FAILOVER_ELECTIONS,
    SERVER_WAL_REPLAY_LATENCY_NS,
    SERVER_DATALOCK_SHARED_GRANTS,
    SERVER_DATALOCK_EXCLUSIVE_GRANTS,
    SERVER_DATALOCK_REVOKES,
    // meta
    META_WAL_APPENDS,
    META_WAL_FSYNCS,
    META_SNAPSHOT_COMPACTIONS,
    // consistency
    CONSISTENCY_HB_EVENTS,
    CONSISTENCY_HB_EDGES,
    CONSISTENCY_HB_RACY_PAIRS,
    // sim
    SIM_MSG_SENT,
    SIM_MSG_DELIVERED,
    SIM_MSG_DROPPED,
    SIM_MSG_BLOCKED,
    SIM_MSG_TO_DEAD,
    // net
    NET_FAULT_SEND_DROPPED,
    NET_FAULT_SEND_DUP,
    NET_FAULT_SEND_DELAYED,
    NET_FAULT_RECV_DROPPED,
    NET_FAULT_RECV_DUP,
    NET_CLIENT_TIMEOUTS,
    NET_CLIENT_RTT_NS,
    NET_CLIENT_RETRANSMISSIONS,
    NET_CLIENT_DECODE_ERRORS,
    NET_REACTOR_WAKEUPS,
    NET_REACTOR_DATAGRAMS_PER_WAKEUP,
    NET_REACTOR_WORKER_QUEUE_DEPTH,
    // bench
    BENCH_OFFERED_RATE,
    BENCH_LATENCY_NS,
];

/// Register every declared metric so zero-valued instruments appear in
/// snapshots (absence of events is itself a signal).
pub fn register_all(registry: &Registry) {
    for def in ALL {
        registry.register(def);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_dotted() {
        let mut seen = std::collections::BTreeSet::new();
        for def in ALL {
            assert!(seen.insert(def.name), "duplicate metric {}", def.name);
            assert!(def.name.contains('.'), "{} lacks a layer prefix", def.name);
        }
    }

    #[test]
    fn histograms_have_bounds_counters_do_not() {
        for def in ALL {
            match def.kind {
                MetricKind::Counter => assert!(def.bounds.is_empty(), "{}", def.name),
                MetricKind::Histogram => assert!(!def.bounds.is_empty(), "{}", def.name),
            }
        }
    }
}
