//! Observability substrate for the Storage Tank reproduction.
//!
//! The paper's whole argument rests on the *timing* of events that are
//! invisible from the outside — opportunistic renewals, the four-phase
//! client expiry walk, the server's `τ(1+ε)` condemnation timer. This
//! crate is the measurement layer every other crate reports into:
//!
//! * **Counters** ([`Counter`]): lock-free, monotonically increasing,
//!   saturating at `u64::MAX` (an overflowed counter stays pinned rather
//!   than wrapping back to small values).
//! * **Histograms** ([`Histogram`]): fixed-bucket latency/duration
//!   distributions with inclusive upper bounds, plus running count, sum,
//!   min and max. Observation is lock-free.
//! * **Trace events** ([`TraceEvent`]): a structured, timestamped event
//!   stream (`{t, actor, kind, detail}`) recorded when tracing is enabled
//!   on the [`Registry`], exportable as JSONL or human-readable text.
//!
//! Registration (name → instrument) takes a lock and is expected on cold
//! paths only; emitting code holds `Arc` handles and touches atomics.
//!
//! The full metric contract — every name, unit, and emitting site — is
//! declared in [`names`] and documented in the repository's
//! `OBSERVABILITY.md`; a unit test diffs the two so the doc cannot drift
//! from the code.

pub mod algo;
pub mod names;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing, lock-free counter.
///
/// Increments saturate at `u64::MAX`: a counter that somehow overflows
/// pins at the maximum instead of wrapping, so rate computations degrade
/// to "huge" rather than "tiny".
#[derive(Debug)]
pub struct Counter {
    name: String,
    value: AtomicU64,
}

impl Counter {
    fn new(name: &str) -> Counter {
        Counter {
            name: name.to_owned(),
            value: AtomicU64::new(0),
        }
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`, saturating at `u64::MAX`.
    pub fn add(&self, n: u64) {
        algo::saturating_add(&self.value, n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram with inclusive upper bounds.
///
/// A value `v` lands in the first bucket whose bound satisfies `v <=
/// bound`; values above the last bound land in the overflow bucket.
/// Count, sum (saturating), min and max are tracked alongside.
#[derive(Debug)]
pub struct Histogram {
    name: String,
    unit: &'static str,
    bounds: Vec<u64>,
    /// `bounds.len() + 1` cells; the last is the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` while empty.
    min: AtomicU64,
    /// `0` while empty (disambiguated by `count`).
    max: AtomicU64,
}

impl Histogram {
    fn new(name: &str, unit: &'static str, bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram {name} needs bounds");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram {name} bounds must be strictly increasing"
        );
        Histogram {
            name: name.to_owned(),
            unit,
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The unit label (e.g. `"ns"`).
    pub fn unit(&self) -> &'static str {
        self.unit
    }

    /// The configured inclusive upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        // First bucket whose (inclusive) bound covers v; all bounds
        // smaller than v are skipped.
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        algo::saturating_add(&self.sum, v);
        algo::cas_min(&self.min, v);
        algo::cas_max(&self.max, v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.max.load(Ordering::Relaxed))
        }
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.min.load(Ordering::Relaxed))
        }
    }
}

/// One structured trace event.
///
/// `t` is in nanoseconds on the emitter's timeline: simulated nodes stamp
/// *true* (global) simulation time so a merged stream totally orders the
/// run; the real-network stack stamps the process-wide monotonic clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Timestamp in nanoseconds (see type docs for which clock).
    pub t: u64,
    /// Emitting actor, e.g. `"n3"` (sim node) or `"netclient"`.
    pub actor: String,
    /// Event class — the stable vocabulary documented in OBSERVABILITY.md
    /// (e.g. `"phase"`, `"renewal"`, `"nack"`, `"condemned"`).
    pub kind: &'static str,
    /// Free-form detail for the kind (still machine-splittable).
    pub detail: String,
}

/// Cap on retained trace events; past it, events are counted as dropped
/// instead of growing memory without bound.
pub const MAX_TRACE_EVENTS: usize = 1 << 20;

/// The registry: a cheap, shareable home for counters, histograms, and
/// the trace sink.
///
/// Registration (`counter`/`histogram`) is get-or-create by name, so
/// independent emitters naturally share one instrument. Handles are
/// `Arc`s; the hot path never takes the registry lock.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    tracing: AtomicBool,
    trace: Mutex<Vec<TraceEvent>>,
    trace_dropped: AtomicU64,
}

impl Registry {
    /// An empty registry with tracing disabled.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        map.entry(name.to_owned())
            .or_insert_with(|| Arc::new(Counter::new(name)))
            .clone()
    }

    /// Get or create the histogram `name` with the given inclusive upper
    /// `bounds` (ignored if the histogram already exists).
    pub fn histogram(&self, name: &str, unit: &'static str, bounds: &[u64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        map.entry(name.to_owned())
            .or_insert_with(|| Arc::new(Histogram::new(name, unit, bounds)))
            .clone()
    }

    /// Register a metric from its [`names`] declaration.
    pub fn register(&self, def: &names::MetricDef) {
        match def.kind {
            names::MetricKind::Counter => {
                self.counter(def.name);
            }
            names::MetricKind::Histogram => {
                self.histogram(def.name, def.unit, def.bounds);
            }
        }
    }

    /// Counter handle for a declared metric (panics on a histogram def —
    /// that is a programming error at the wiring site).
    pub fn counter_def(&self, def: &names::MetricDef) -> Arc<Counter> {
        assert!(
            matches!(def.kind, names::MetricKind::Counter),
            "{} is not a counter",
            def.name
        );
        self.counter(def.name)
    }

    /// Histogram handle for a declared metric (panics on a counter def).
    pub fn histogram_def(&self, def: &names::MetricDef) -> Arc<Histogram> {
        assert!(
            matches!(def.kind, names::MetricKind::Histogram),
            "{} is not a histogram",
            def.name
        );
        self.histogram(def.name, def.unit, def.bounds)
    }

    /// Enable or disable trace-event recording.
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, Ordering::Relaxed);
    }

    /// Whether trace events are currently recorded. Emitters with
    /// expensive detail formatting should check this first (or use
    /// [`trace_with`](Self::trace_with)).
    pub fn tracing(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    /// Record a trace event (no-op unless tracing is enabled).
    pub fn trace(&self, t: u64, actor: impl Into<String>, kind: &'static str, detail: String) {
        if !self.tracing() {
            return;
        }
        self.push_event(TraceEvent {
            t,
            actor: actor.into(),
            kind,
            detail,
        });
    }

    /// Record a trace event with lazily formatted detail; the closure runs
    /// only when tracing is enabled.
    pub fn trace_with(
        &self,
        t: u64,
        actor: impl Into<String>,
        kind: &'static str,
        detail: impl FnOnce() -> String,
    ) {
        if !self.tracing() {
            return;
        }
        self.push_event(TraceEvent {
            t,
            actor: actor.into(),
            kind,
            detail: detail(),
        });
    }

    fn push_event(&self, ev: TraceEvent) {
        let mut buf = self.trace.lock().unwrap();
        if buf.len() >= MAX_TRACE_EVENTS {
            self.trace_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        buf.push(ev);
    }

    /// Events dropped after the [`MAX_TRACE_EVENTS`] cap was reached.
    pub fn trace_dropped(&self) -> u64 {
        self.trace_dropped.load(Ordering::Relaxed)
    }

    /// A copy of the recorded trace events, in emission order.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.lock().unwrap().clone()
    }

    /// Drain the recorded trace events.
    pub fn take_trace_events(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.trace.lock().unwrap())
    }

    /// Immutable snapshot of every registered instrument, names sorted.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .unwrap()
            .values()
            .map(|c| CounterSnap {
                name: c.name.clone(),
                value: c.get(),
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap()
            .values()
            .map(|h| HistogramSnap {
                name: h.name.clone(),
                unit: h.unit,
                bounds: h.bounds.clone(),
                counts: h
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect(),
                count: h.count(),
                sum: h.sum.load(Ordering::Relaxed),
                min: h.min(),
                max: h.max(),
            })
            .collect();
        Snapshot {
            counters,
            histograms,
        }
    }

    // ---------------------------------------------------------- exporters

    /// The trace as JSON Lines, one event per line:
    /// `{"t":12000,"actor":"n3","kind":"phase","detail":"active->quiescing"}`.
    pub fn export_trace_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.trace.lock().unwrap().iter() {
            out.push_str(&format!(
                "{{\"t\":{},\"actor\":\"{}\",\"kind\":\"{}\",\"detail\":\"{}\"}}\n",
                ev.t,
                json_escape(&ev.actor),
                json_escape(ev.kind),
                json_escape(&ev.detail)
            ));
        }
        out
    }

    /// The trace as aligned human-readable text:
    /// `[   12.000ms] n3           phase        active->quiescing`.
    pub fn export_trace_text(&self) -> String {
        let mut out = String::new();
        for ev in self.trace.lock().unwrap().iter() {
            out.push_str(&format!(
                "[{:>12}] {:<12} {:<16} {}\n",
                format_ns(ev.t),
                ev.actor,
                ev.kind,
                ev.detail
            ));
        }
        out
    }

    /// Render every registered counter and histogram as text (names
    /// sorted; zero-valued instruments included so absence is visible).
    pub fn render_metrics(&self) -> String {
        self.snapshot().render()
    }
}

/// Snapshot of one counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnap {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnap {
    /// Registered name.
    pub name: String,
    /// Unit label.
    pub unit: &'static str,
    /// Inclusive upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one longer than `bounds` (overflow last).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Smallest observation, if any.
    pub min: Option<u64>,
    /// Largest observation, if any.
    pub max: Option<u64>,
}

impl HistogramSnap {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate of the `q`-quantile (`0.0..=1.0`), or `None` when empty.
    ///
    /// Resolution is the bucket grid: the estimate is the inclusive
    /// upper bound of the bucket the quantile rank falls in, clamped to
    /// the observed `max` (so the overflow bucket answers with a real
    /// observation instead of infinity, and a coarse ladder never
    /// reports a value above anything seen). The open-loop harness reads
    /// p50/p99/p999 through this.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let bound = self.bounds.get(i).copied().unwrap_or(u64::MAX);
                return Some(bound.min(self.max.unwrap_or(bound)));
            }
        }
        self.max
    }
}

/// A full registry snapshot (both instrument kinds, names sorted).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// All counters.
    pub counters: Vec<CounterSnap>,
    /// All histograms.
    pub histograms: Vec<HistogramSnap>,
}

impl Snapshot {
    /// Value of the counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnap> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Every registered metric name, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .counters
            .iter()
            .map(|c| c.name.clone())
            .chain(self.histograms.iter().map(|h| h.name.clone()))
            .collect();
        v.sort();
        v
    }

    /// Render as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .iter()
            .map(|c| c.name.len())
            .chain(self.histograms.iter().map(|h| h.name.len()))
            .max()
            .unwrap_or(0);
        for c in &self.counters {
            out.push_str(&format!("{:<width$}  {}\n", c.name, c.value));
        }
        for h in &self.histograms {
            out.push_str(&format!(
                "{:<width$}  n={} min={} mean={:.0} max={} {}\n",
                h.name,
                h.count,
                h.min.map_or("-".into(), |v| v.to_string()),
                h.mean(),
                h.max.map_or("-".into(), |v| v.to_string()),
                h.unit,
            ));
        }
        out
    }
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render nanoseconds tersely (`950ns`, `12.000ms`, `3.400s`).
pub fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_registry_dedups() {
        let reg = Registry::new();
        let a = reg.counter("x.hits");
        let b = reg.counter("x.hits");
        a.inc();
        b.add(2);
        assert_eq!(reg.snapshot().counter("x.hits"), Some(3));
        assert!(Arc::ptr_eq(&a, &b), "same name, same instrument");
    }

    #[test]
    fn counter_overflow_saturates() {
        let reg = Registry::new();
        let c = reg.counter("near.max");
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX, "saturates instead of wrapping");
        c.inc();
        assert_eq!(c.get(), u64::MAX, "stays pinned at the max");
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive() {
        let reg = Registry::new();
        let h = reg.histogram("lat", "ns", &[10, 100, 1000]);
        // Exactly on a bound → that bucket (inclusive upper bound).
        h.observe(10);
        h.observe(100);
        h.observe(1000);
        // One past a bound → the next bucket.
        h.observe(11);
        h.observe(101);
        // Past the last bound → overflow.
        h.observe(1001);
        // Zero → the first bucket.
        h.observe(0);
        let snap = reg.snapshot();
        let s = snap.histogram("lat").unwrap();
        assert_eq!(s.counts, vec![2, 2, 2, 1]);
        assert_eq!(s.count, 7);
        assert_eq!(s.min, Some(0));
        assert_eq!(s.max, Some(1001));
    }

    #[test]
    fn histogram_sum_saturates() {
        let reg = Registry::new();
        let h = reg.histogram("big", "ns", &[1]);
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("big").unwrap().sum, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        let reg = Registry::new();
        let _ = reg.histogram("bad", "ns", &[10, 10]);
    }

    #[test]
    fn tracing_is_gated_and_capped_detail_is_lazy() {
        let reg = Registry::new();
        reg.trace(1, "a", "k", "dropped while disabled".into());
        reg.trace_with(2, "a", "k", || unreachable!("must not format"));
        assert!(reg.trace_events().is_empty());
        reg.set_tracing(true);
        reg.trace(3, "a", "k", "recorded".into());
        let evs = reg.trace_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].t, 3);
        assert_eq!(evs[0].kind, "k");
    }

    #[test]
    fn jsonl_export_escapes_and_frames() {
        let reg = Registry::new();
        reg.set_tracing(true);
        reg.trace(42, "n1", "nack", "reason=\"x\"\nline2".into());
        let out = reg.export_trace_jsonl();
        assert_eq!(
            out,
            "{\"t\":42,\"actor\":\"n1\",\"kind\":\"nack\",\"detail\":\"reason=\\\"x\\\"\\nline2\"}\n"
        );
    }

    #[test]
    fn text_export_mentions_actor_and_kind() {
        let reg = Registry::new();
        reg.set_tracing(true);
        reg.trace(12_000_000, "n3", "phase", "active->quiescing".into());
        let out = reg.export_trace_text();
        assert!(out.contains("n3"));
        assert!(out.contains("phase"));
        assert!(out.contains("active->quiescing"));
        assert!(out.contains("12.000ms"));
    }

    #[test]
    fn register_all_matches_declared_names() {
        let reg = Registry::new();
        names::register_all(&reg);
        let snap = reg.snapshot();
        let mut declared: Vec<String> = names::ALL.iter().map(|d| d.name.to_owned()).collect();
        declared.sort();
        assert_eq!(snap.names(), declared);
    }
}
