//! Property tests for the wire codec and the at-most-once window.

use proptest::prelude::*;
use tank_proto::message::{
    FileAttr, FsError, NackReason, ReplyBody, RequestBody, ResponseOutcome, RouteError,
};
use tank_proto::seqwin::SeqVerdict;
use tank_proto::{
    BlockId, CtlMsg, DedupWindow, Epoch, Incarnation, Ino, LockMode, NetMsg, NodeId, PushBody,
    ReqSeq, Request, Response, SanError, SanMsg, SanReadOk, ServerPush, SessionId, WireDecode,
    WireEncode, WriteTag,
};

// ------------------------------------------------------------ strategies

fn arb_mode() -> impl Strategy<Value = LockMode> {
    prop_oneof![Just(LockMode::SharedRead), Just(LockMode::Exclusive)]
}

fn arb_tag() -> impl Strategy<Value = WriteTag> {
    (any::<u32>(), any::<u64>(), any::<u64>()).prop_map(|(w, e, s)| WriteTag {
        writer: NodeId(w),
        epoch: Epoch(e),
        wseq: s,
    })
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_.-]{0,32}"
}

fn arb_attr() -> impl Strategy<Value = FileAttr> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()).prop_map(
        |(size, mtime, version, is_dir)| FileAttr {
            size,
            mtime,
            version,
            is_dir,
        },
    )
}

fn arb_request_body() -> impl Strategy<Value = RequestBody> {
    prop_oneof![
        any::<u64>().prop_map(|e| RequestBody::Hello { map_epoch: e }),
        Just(RequestBody::KeepAlive),
        (any::<u64>(), arb_name()).prop_map(|(p, name)| RequestBody::Create {
            parent: Ino(p),
            name
        }),
        (any::<u64>(), arb_name()).prop_map(|(p, name)| RequestBody::Lookup {
            parent: Ino(p),
            name
        }),
        (any::<u64>(), arb_name()).prop_map(|(p, name)| RequestBody::Mkdir {
            parent: Ino(p),
            name
        }),
        any::<u64>().prop_map(|d| RequestBody::ReadDir { dir: Ino(d) }),
        (any::<u64>(), arb_name()).prop_map(|(p, name)| RequestBody::Unlink {
            parent: Ino(p),
            name
        }),
        any::<u64>().prop_map(|i| RequestBody::GetAttr { ino: Ino(i) }),
        (any::<u64>(), proptest::option::of(any::<u64>()))
            .prop_map(|(i, size)| RequestBody::SetAttr { ino: Ino(i), size }),
        (any::<u64>(), arb_mode())
            .prop_map(|(i, mode)| RequestBody::LockAcquire { ino: Ino(i), mode }),
        (any::<u64>(), any::<u64>()).prop_map(|(i, e)| RequestBody::LockRelease {
            ino: Ino(i),
            epoch: Epoch(e)
        }),
        any::<u64>().prop_map(|p| RequestBody::PushAck { push_seq: p }),
        (any::<u64>(), any::<u32>()).prop_map(|(i, c)| RequestBody::AllocBlocks {
            ino: Ino(i),
            count: c
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(i, s)| RequestBody::CommitWrite {
            ino: Ino(i),
            new_size: s
        }),
        (any::<u64>(), any::<u64>(), any::<u32>()).prop_map(|(i, o, l)| RequestBody::ReadData {
            ino: Ino(i),
            offset: o,
            len: l
        }),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..512)
        )
            .prop_map(|(i, o, data)| RequestBody::WriteData {
                ino: Ino(i),
                offset: o,
                data
            }),
        (any::<u64>(), arb_name(), any::<u64>()).prop_map(|(d, name, i)| {
            RequestBody::RenameLink {
                dir: Ino(d),
                name,
                ino: Ino(i),
            }
        }),
        (any::<u64>(), arb_name())
            .prop_map(|(d, name)| RequestBody::RenameUnlink { dir: Ino(d), name }),
    ]
}

fn arb_reply_body() -> impl Strategy<Value = ReplyBody> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(s, e)| ReplyBody::HelloOk {
            session: SessionId(s),
            map_epoch: e,
        }),
        Just(ReplyBody::Ok),
        any::<u64>().prop_map(|i| ReplyBody::Created { ino: Ino(i) }),
        (any::<u64>(), arb_attr()).prop_map(|(i, attr)| ReplyBody::Resolved { ino: Ino(i), attr }),
        arb_attr().prop_map(|attr| ReplyBody::Attr { attr }),
        proptest::collection::vec((arb_name(), any::<u64>()), 0..8).prop_map(|v| ReplyBody::Dir {
            entries: v.into_iter().map(|(n, i)| (n, Ino(i))).collect()
        }),
        (
            any::<u64>(),
            arb_mode(),
            any::<u64>(),
            proptest::collection::vec(any::<u64>(), 0..32),
            any::<u64>()
        )
            .prop_map(|(i, mode, e, blocks, size)| ReplyBody::LockGranted {
                ino: Ino(i),
                mode,
                epoch: Epoch(e),
                blocks: blocks.into_iter().map(BlockId).collect(),
                size,
            }),
        proptest::collection::vec(any::<u64>(), 0..32).prop_map(|b| ReplyBody::Allocated {
            blocks: b.into_iter().map(BlockId).collect()
        }),
        proptest::collection::vec(any::<u8>(), 0..512).prop_map(|data| ReplyBody::Data { data }),
    ]
}

fn arb_outcome() -> impl Strategy<Value = ResponseOutcome> {
    prop_oneof![
        arb_reply_body().prop_map(|b| ResponseOutcome::Acked(Ok(b))),
        prop_oneof![
            Just(FsError::NotFound),
            Just(FsError::Exists),
            Just(FsError::NoSpace),
            Just(FsError::NotLocked),
            Just(FsError::Invalid),
            Just(FsError::Unavailable),
        ]
        .prop_map(|e| ResponseOutcome::Acked(Err(e))),
        prop_oneof![
            Just(NackReason::LeaseTimingOut),
            Just(NackReason::SessionExpired),
            Just(NackReason::StaleSession),
            Just(NackReason::Recovering),
            Just(NackReason::Misrouted(RouteError::NotOwner)),
            Just(NackReason::Misrouted(RouteError::StaleMap)),
        ]
        .prop_map(ResponseOutcome::Nacked),
    ]
}

fn arb_netmsg() -> impl Strategy<Value = NetMsg> {
    prop_oneof![
        (any::<u32>(), any::<u64>(), any::<u64>(), arb_request_body()).prop_map(
            |(src, sess, seq, body)| {
                NetMsg::Ctl(CtlMsg::Request(Request {
                    src: NodeId(src),
                    session: SessionId(sess),
                    seq: ReqSeq(seq),
                    body,
                }))
            }
        ),
        (
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            arb_outcome()
        )
            .prop_map(|(dst, sess, seq, inc, outcome)| {
                NetMsg::Ctl(CtlMsg::Response(Response {
                    dst: NodeId(dst),
                    session: SessionId(sess),
                    seq: ReqSeq(seq),
                    incarnation: Incarnation(inc),
                    outcome,
                }))
            }),
        (
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            arb_mode(),
            any::<u64>(),
            any::<bool>()
        )
            .prop_map(|(dst, sess, ps, ino, mode, epoch, inval)| {
                let body = if inval {
                    PushBody::Invalidate { ino: Ino(ino) }
                } else {
                    PushBody::Demand {
                        ino: Ino(ino),
                        mode_needed: mode,
                        epoch: Epoch(epoch),
                    }
                };
                NetMsg::Ctl(CtlMsg::Push(ServerPush {
                    dst: NodeId(dst),
                    session: SessionId(sess),
                    push_seq: ps,
                    body,
                }))
            }),
        (any::<u64>(), any::<u64>()).prop_map(|(r, b)| NetMsg::San(SanMsg::ReadBlock {
            req_id: r,
            block: BlockId(b)
        })),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..256),
            arb_tag()
        )
            .prop_map(|(r, b, data, tag)| NetMsg::San(SanMsg::WriteBlock {
                req_id: r,
                block: BlockId(b),
                data,
                tag
            })),
        (
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..256),
            arb_tag()
        )
            .prop_map(|(r, data, tag)| NetMsg::San(SanMsg::ReadResp {
                req_id: r,
                result: Ok(SanReadOk { data, tag })
            })),
        any::<u64>().prop_map(|r| NetMsg::San(SanMsg::WriteResp {
            req_id: r,
            result: Err(SanError::Fenced)
        })),
    ]
}

proptest! {
    /// Every message round-trips the wire codec exactly, with no bytes
    /// left over.
    #[test]
    fn wire_roundtrip(msg in arb_netmsg()) {
        let mut enc = msg.encoded();
        let dec = NetMsg::decode(&mut enc).expect("decode");
        prop_assert_eq!(dec, msg);
        prop_assert_eq!(enc.len(), 0);
    }

    /// Arbitrary byte soup never panics the decoder.
    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut buf = bytes::Bytes::from(bytes);
        let _ = NetMsg::decode(&mut buf);
    }

    /// The dedup window admits each sequence number as Fresh at most once,
    /// regardless of duplication and reordering.
    #[test]
    fn dedup_window_at_most_once(
        seqs in proptest::collection::vec(1u64..200, 1..400),
    ) {
        let mut win = DedupWindow::with_span(4096);
        let mut fresh_seen = std::collections::HashSet::new();
        for s in seqs {
            if win.observe(ReqSeq(s)) == SeqVerdict::Fresh {
                prop_assert!(fresh_seen.insert(s), "seq {} admitted twice", s);
            }
        }
    }
}
