//! Compact binary wire codec for the protocol messages.
//!
//! The simulator passes messages as in-memory values, but the real-network
//! binding (`tank-net`) and the codec benchmarks need a byte format. The
//! encoding is a hand-rolled tag/length scheme over [`bytes`]: fixed-width
//! little-endian integers, `u8` enum discriminants, `u16`-prefixed strings,
//! and `u32`-prefixed byte/array payloads. No self-description, no schema
//! evolution — both ends are this crate.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::ids::{BlockId, Epoch, Incarnation, Ino, NodeId, ReqSeq, SessionId, WriteTag};
use crate::lock::LockMode;
use crate::message::{
    CtlMsg, FileAttr, FsError, NackReason, PushBody, ReplyBody, Request, RequestBody, Response,
    ResponseOutcome, RouteError, ServerPush, MAX_BATCH_ELEMS,
};
use crate::repl::ReplMsg;
use crate::san::{BlockRange, FenceOp, SanError, SanMsg, SanReadOk};
use crate::NetMsg;

/// Upper bound on one encoded [`NetMsg`] datagram, and therefore the
/// receive-buffer size every transport endpoint needs: the codec's
/// length prefixes are sanity-bounded well below this, and UDP itself
/// cannot carry more. The net layer's drain path sizes its per-datagram
/// scratch with it.
pub const MAX_DATAGRAM: usize = 64 * 1024;

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of bytes mid-message.
    Truncated,
    /// Unknown enum discriminant.
    BadTag {
        /// Which enum was being decoded.
        what: &'static str,
        /// The offending discriminant.
        tag: u8,
    },
    /// String payload was not UTF-8.
    BadUtf8,
    /// Length prefix exceeded sanity bounds.
    TooLong,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadTag { what, tag } => write!(f, "bad tag {tag} for {what}"),
            WireError::BadUtf8 => write!(f, "invalid utf-8 in string"),
            WireError::TooLong => write!(f, "length prefix exceeds bound"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum accepted byte-payload length (defensive bound for the UDP path).
const MAX_BYTES: usize = 1 << 22;
/// Maximum accepted array element count.
const MAX_ELEMS: usize = 1 << 20;

/// Types encodable to the wire format.
pub trait WireEncode {
    /// Append the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Encode into a fresh buffer.
    fn encoded(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        self.encode(&mut buf);
        buf.freeze()
    }
}

/// Types decodable from the wire format.
pub trait WireDecode: Sized {
    /// Decode one value, consuming from `buf`.
    fn decode(buf: &mut Bytes) -> Result<Self, WireError>;
}

// ---------------------------------------------------------------- helpers

fn need(buf: &Bytes, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

fn get_u8(buf: &mut Bytes) -> Result<u8, WireError> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

fn get_u16(buf: &mut Bytes) -> Result<u16, WireError> {
    need(buf, 2)?;
    Ok(buf.get_u16_le())
}

fn get_u32(buf: &mut Bytes) -> Result<u32, WireError> {
    need(buf, 4)?;
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut Bytes) -> Result<u64, WireError> {
    need(buf, 8)?;
    Ok(buf.get_u64_le())
}

fn put_str(buf: &mut BytesMut, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, WireError> {
    let len = get_u16(buf)? as usize;
    need(buf, len)?;
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadUtf8)
}

fn put_bytes(buf: &mut BytesMut, b: &[u8]) {
    buf.put_u32_le(b.len() as u32);
    buf.put_slice(b);
}

fn get_bytes(buf: &mut Bytes) -> Result<Vec<u8>, WireError> {
    let len = get_u32(buf)? as usize;
    if len > MAX_BYTES {
        return Err(WireError::TooLong);
    }
    need(buf, len)?;
    Ok(buf.split_to(len).to_vec())
}

fn put_blocks(buf: &mut BytesMut, blocks: &[BlockId]) {
    buf.put_u32_le(blocks.len() as u32);
    for b in blocks {
        buf.put_u64_le(b.0);
    }
}

fn get_blocks(buf: &mut Bytes) -> Result<Vec<BlockId>, WireError> {
    let n = get_u32(buf)? as usize;
    if n > MAX_ELEMS {
        return Err(WireError::TooLong);
    }
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(BlockId(get_u64(buf)?));
    }
    Ok(v)
}

fn put_tag(buf: &mut BytesMut, tag: &WriteTag) {
    buf.put_u32_le(tag.writer.0);
    buf.put_u64_le(tag.epoch.0);
    buf.put_u64_le(tag.wseq);
}

fn get_tag(buf: &mut Bytes) -> Result<WriteTag, WireError> {
    Ok(WriteTag {
        writer: NodeId(get_u32(buf)?),
        epoch: Epoch(get_u64(buf)?),
        wseq: get_u64(buf)?,
    })
}

fn put_mode(buf: &mut BytesMut, m: LockMode) {
    buf.put_u8(match m {
        LockMode::SharedRead => 0,
        LockMode::Exclusive => 1,
    });
}

fn get_mode(buf: &mut Bytes) -> Result<LockMode, WireError> {
    match get_u8(buf)? {
        0 => Ok(LockMode::SharedRead),
        1 => Ok(LockMode::Exclusive),
        t => Err(WireError::BadTag {
            what: "LockMode",
            tag: t,
        }),
    }
}

fn put_attr(buf: &mut BytesMut, a: &FileAttr) {
    buf.put_u64_le(a.size);
    buf.put_u64_le(a.mtime);
    buf.put_u64_le(a.version);
    buf.put_u8(a.is_dir as u8);
}

fn get_attr(buf: &mut Bytes) -> Result<FileAttr, WireError> {
    Ok(FileAttr {
        size: get_u64(buf)?,
        mtime: get_u64(buf)?,
        version: get_u64(buf)?,
        is_dir: get_u8(buf)? != 0,
    })
}

// ----------------------------------------------------------- RequestBody

impl WireEncode for RequestBody {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            RequestBody::Hello { map_epoch } => {
                buf.put_u8(0);
                buf.put_u64_le(*map_epoch);
            }
            RequestBody::KeepAlive => buf.put_u8(1),
            RequestBody::Create { parent, name } => {
                buf.put_u8(2);
                buf.put_u64_le(parent.0);
                put_str(buf, name);
            }
            RequestBody::Lookup { parent, name } => {
                buf.put_u8(3);
                buf.put_u64_le(parent.0);
                put_str(buf, name);
            }
            RequestBody::Mkdir { parent, name } => {
                buf.put_u8(4);
                buf.put_u64_le(parent.0);
                put_str(buf, name);
            }
            RequestBody::ReadDir { dir } => {
                buf.put_u8(5);
                buf.put_u64_le(dir.0);
            }
            RequestBody::Unlink { parent, name } => {
                buf.put_u8(6);
                buf.put_u64_le(parent.0);
                put_str(buf, name);
            }
            RequestBody::GetAttr { ino } => {
                buf.put_u8(7);
                buf.put_u64_le(ino.0);
            }
            RequestBody::SetAttr { ino, size } => {
                buf.put_u8(8);
                buf.put_u64_le(ino.0);
                match size {
                    Some(s) => {
                        buf.put_u8(1);
                        buf.put_u64_le(*s);
                    }
                    None => buf.put_u8(0),
                }
            }
            RequestBody::LockAcquire { ino, mode } => {
                buf.put_u8(9);
                buf.put_u64_le(ino.0);
                put_mode(buf, *mode);
            }
            RequestBody::LockRelease { ino, epoch } => {
                buf.put_u8(10);
                buf.put_u64_le(ino.0);
                buf.put_u64_le(epoch.0);
            }
            RequestBody::PushAck { push_seq } => {
                buf.put_u8(11);
                buf.put_u64_le(*push_seq);
            }
            RequestBody::AllocBlocks { ino, count } => {
                buf.put_u8(12);
                buf.put_u64_le(ino.0);
                buf.put_u32_le(*count);
            }
            RequestBody::CommitWrite { ino, new_size } => {
                buf.put_u8(13);
                buf.put_u64_le(ino.0);
                buf.put_u64_le(*new_size);
            }
            RequestBody::ReadData { ino, offset, len } => {
                buf.put_u8(14);
                buf.put_u64_le(ino.0);
                buf.put_u64_le(*offset);
                buf.put_u32_le(*len);
            }
            RequestBody::WriteData { ino, offset, data } => {
                buf.put_u8(15);
                buf.put_u64_le(ino.0);
                buf.put_u64_le(*offset);
                put_bytes(buf, data);
            }
            RequestBody::RenameLink { dir, name, ino } => {
                buf.put_u8(16);
                buf.put_u64_le(dir.0);
                put_str(buf, name);
                buf.put_u64_le(ino.0);
            }
            RequestBody::RenameUnlink { dir, name } => {
                buf.put_u8(17);
                buf.put_u64_le(dir.0);
                put_str(buf, name);
            }
            RequestBody::Batch(elems) => {
                debug_assert!(elems.len() <= MAX_BATCH_ELEMS, "batch over element cap");
                debug_assert!(
                    elems.iter().all(|e| !matches!(e, RequestBody::Batch(_))),
                    "nested batch"
                );
                buf.put_u8(18);
                buf.put_u32_le(elems.len() as u32);
                for e in elems {
                    e.encode(buf);
                }
            }
        }
    }
}

impl WireDecode for RequestBody {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(match get_u8(buf)? {
            0 => RequestBody::Hello {
                map_epoch: get_u64(buf)?,
            },
            1 => RequestBody::KeepAlive,
            2 => RequestBody::Create {
                parent: Ino(get_u64(buf)?),
                name: get_str(buf)?,
            },
            3 => RequestBody::Lookup {
                parent: Ino(get_u64(buf)?),
                name: get_str(buf)?,
            },
            4 => RequestBody::Mkdir {
                parent: Ino(get_u64(buf)?),
                name: get_str(buf)?,
            },
            5 => RequestBody::ReadDir {
                dir: Ino(get_u64(buf)?),
            },
            6 => RequestBody::Unlink {
                parent: Ino(get_u64(buf)?),
                name: get_str(buf)?,
            },
            7 => RequestBody::GetAttr {
                ino: Ino(get_u64(buf)?),
            },
            8 => {
                let ino = Ino(get_u64(buf)?);
                let size = if get_u8(buf)? != 0 {
                    Some(get_u64(buf)?)
                } else {
                    None
                };
                RequestBody::SetAttr { ino, size }
            }
            9 => RequestBody::LockAcquire {
                ino: Ino(get_u64(buf)?),
                mode: get_mode(buf)?,
            },
            10 => RequestBody::LockRelease {
                ino: Ino(get_u64(buf)?),
                epoch: Epoch(get_u64(buf)?),
            },
            11 => RequestBody::PushAck {
                push_seq: get_u64(buf)?,
            },
            12 => RequestBody::AllocBlocks {
                ino: Ino(get_u64(buf)?),
                count: get_u32(buf)?,
            },
            13 => RequestBody::CommitWrite {
                ino: Ino(get_u64(buf)?),
                new_size: get_u64(buf)?,
            },
            14 => RequestBody::ReadData {
                ino: Ino(get_u64(buf)?),
                offset: get_u64(buf)?,
                len: get_u32(buf)?,
            },
            15 => RequestBody::WriteData {
                ino: Ino(get_u64(buf)?),
                offset: get_u64(buf)?,
                data: get_bytes(buf)?,
            },
            16 => RequestBody::RenameLink {
                dir: Ino(get_u64(buf)?),
                name: get_str(buf)?,
                ino: Ino(get_u64(buf)?),
            },
            17 => RequestBody::RenameUnlink {
                dir: Ino(get_u64(buf)?),
                name: get_str(buf)?,
            },
            18 => {
                let n = get_u32(buf)? as usize;
                if n > MAX_BATCH_ELEMS {
                    return Err(WireError::TooLong);
                }
                let mut elems = Vec::with_capacity(n);
                for _ in 0..n {
                    let e = RequestBody::decode(buf)?;
                    if matches!(e, RequestBody::Batch(_)) {
                        // Nesting is structurally forbidden: one batch is
                        // one message, and recursion would let a datagram
                        // amplify its own decode cost.
                        return Err(WireError::BadTag {
                            what: "RequestBody (nested batch)",
                            tag: 18,
                        });
                    }
                    elems.push(e);
                }
                RequestBody::Batch(elems)
            }
            t => {
                return Err(WireError::BadTag {
                    what: "RequestBody",
                    tag: t,
                })
            }
        })
    }
}

// ------------------------------------------------------------- ReplyBody

impl WireEncode for ReplyBody {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ReplyBody::HelloOk { session, map_epoch } => {
                buf.put_u8(0);
                buf.put_u64_le(session.0);
                buf.put_u64_le(*map_epoch);
            }
            ReplyBody::Ok => buf.put_u8(1),
            ReplyBody::Created { ino } => {
                buf.put_u8(2);
                buf.put_u64_le(ino.0);
            }
            ReplyBody::Resolved { ino, attr } => {
                buf.put_u8(3);
                buf.put_u64_le(ino.0);
                put_attr(buf, attr);
            }
            ReplyBody::Attr { attr } => {
                buf.put_u8(4);
                put_attr(buf, attr);
            }
            ReplyBody::Dir { entries } => {
                buf.put_u8(5);
                buf.put_u32_le(entries.len() as u32);
                for (name, ino) in entries {
                    put_str(buf, name);
                    buf.put_u64_le(ino.0);
                }
            }
            ReplyBody::LockGranted {
                ino,
                mode,
                epoch,
                blocks,
                size,
            } => {
                buf.put_u8(6);
                buf.put_u64_le(ino.0);
                put_mode(buf, *mode);
                buf.put_u64_le(epoch.0);
                put_blocks(buf, blocks);
                buf.put_u64_le(*size);
            }
            ReplyBody::Allocated { blocks } => {
                buf.put_u8(7);
                put_blocks(buf, blocks);
            }
            ReplyBody::Data { data } => {
                buf.put_u8(8);
                put_bytes(buf, data);
            }
            ReplyBody::Batch(outcomes) => {
                debug_assert!(outcomes.len() <= MAX_BATCH_ELEMS, "batch over element cap");
                buf.put_u8(9);
                buf.put_u32_le(outcomes.len() as u32);
                for o in outcomes {
                    match o {
                        Ok(body) => {
                            debug_assert!(
                                !matches!(body, ReplyBody::Batch(_)),
                                "nested batch reply"
                            );
                            buf.put_u8(0);
                            body.encode(buf);
                        }
                        Err(e) => {
                            buf.put_u8(1);
                            buf.put_u8(fs_error_tag(*e));
                        }
                    }
                }
            }
        }
    }
}

impl WireDecode for ReplyBody {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(match get_u8(buf)? {
            0 => ReplyBody::HelloOk {
                session: SessionId(get_u64(buf)?),
                map_epoch: get_u64(buf)?,
            },
            1 => ReplyBody::Ok,
            2 => ReplyBody::Created {
                ino: Ino(get_u64(buf)?),
            },
            3 => ReplyBody::Resolved {
                ino: Ino(get_u64(buf)?),
                attr: get_attr(buf)?,
            },
            4 => ReplyBody::Attr {
                attr: get_attr(buf)?,
            },
            5 => {
                let n = get_u32(buf)? as usize;
                if n > MAX_ELEMS {
                    return Err(WireError::TooLong);
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = get_str(buf)?;
                    entries.push((name, Ino(get_u64(buf)?)));
                }
                ReplyBody::Dir { entries }
            }
            6 => ReplyBody::LockGranted {
                ino: Ino(get_u64(buf)?),
                mode: get_mode(buf)?,
                epoch: Epoch(get_u64(buf)?),
                blocks: get_blocks(buf)?,
                size: get_u64(buf)?,
            },
            7 => ReplyBody::Allocated {
                blocks: get_blocks(buf)?,
            },
            8 => ReplyBody::Data {
                data: get_bytes(buf)?,
            },
            9 => {
                let n = get_u32(buf)? as usize;
                if n > MAX_BATCH_ELEMS {
                    return Err(WireError::TooLong);
                }
                let mut outcomes = Vec::with_capacity(n);
                for _ in 0..n {
                    match get_u8(buf)? {
                        0 => {
                            let body = ReplyBody::decode(buf)?;
                            if matches!(body, ReplyBody::Batch(_)) {
                                return Err(WireError::BadTag {
                                    what: "ReplyBody (nested batch)",
                                    tag: 9,
                                });
                            }
                            outcomes.push(Ok(body));
                        }
                        1 => outcomes.push(Err(fs_error_from(get_u8(buf)?)?)),
                        t => {
                            return Err(WireError::BadTag {
                                what: "BatchOutcome",
                                tag: t,
                            })
                        }
                    }
                }
                ReplyBody::Batch(outcomes)
            }
            t => {
                return Err(WireError::BadTag {
                    what: "ReplyBody",
                    tag: t,
                })
            }
        })
    }
}

// -------------------------------------------------------- errors/outcomes

fn fs_error_tag(e: FsError) -> u8 {
    match e {
        FsError::NotFound => 0,
        FsError::Exists => 1,
        FsError::NoSpace => 2,
        FsError::NotLocked => 3,
        FsError::Invalid => 4,
        FsError::Unavailable => 5,
    }
}

fn fs_error_from(tag: u8) -> Result<FsError, WireError> {
    Ok(match tag {
        0 => FsError::NotFound,
        1 => FsError::Exists,
        2 => FsError::NoSpace,
        3 => FsError::NotLocked,
        4 => FsError::Invalid,
        5 => FsError::Unavailable,
        t => {
            return Err(WireError::BadTag {
                what: "FsError",
                tag: t,
            })
        }
    })
}

fn nack_tag(n: NackReason) -> u8 {
    match n {
        NackReason::LeaseTimingOut => 0,
        NackReason::SessionExpired => 1,
        NackReason::StaleSession => 2,
        NackReason::Recovering => 3,
        NackReason::Misrouted(RouteError::NotOwner) => 4,
        NackReason::Misrouted(RouteError::StaleMap) => 5,
        NackReason::Misrouted(RouteError::NotPrimary) => 6,
    }
}

fn nack_from(tag: u8) -> Result<NackReason, WireError> {
    Ok(match tag {
        0 => NackReason::LeaseTimingOut,
        1 => NackReason::SessionExpired,
        2 => NackReason::StaleSession,
        3 => NackReason::Recovering,
        4 => NackReason::Misrouted(RouteError::NotOwner),
        5 => NackReason::Misrouted(RouteError::StaleMap),
        6 => NackReason::Misrouted(RouteError::NotPrimary),
        t => {
            return Err(WireError::BadTag {
                what: "NackReason",
                tag: t,
            })
        }
    })
}

// --------------------------------------------------------------- CtlMsg

impl WireEncode for CtlMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            CtlMsg::Request(r) => {
                buf.put_u8(0);
                buf.put_u32_le(r.src.0);
                buf.put_u64_le(r.session.0);
                buf.put_u64_le(r.seq.0);
                r.body.encode(buf);
            }
            CtlMsg::Response(r) => {
                buf.put_u8(1);
                buf.put_u32_le(r.dst.0);
                buf.put_u64_le(r.session.0);
                buf.put_u64_le(r.seq.0);
                buf.put_u64_le(r.incarnation.0);
                match &r.outcome {
                    ResponseOutcome::Acked(Ok(body)) => {
                        buf.put_u8(0);
                        body.encode(buf);
                    }
                    ResponseOutcome::Acked(Err(e)) => {
                        buf.put_u8(1);
                        buf.put_u8(fs_error_tag(*e));
                    }
                    ResponseOutcome::Nacked(n) => {
                        buf.put_u8(2);
                        buf.put_u8(nack_tag(*n));
                    }
                }
            }
            CtlMsg::Push(p) => {
                buf.put_u8(2);
                buf.put_u32_le(p.dst.0);
                buf.put_u64_le(p.session.0);
                buf.put_u64_le(p.push_seq);
                match &p.body {
                    PushBody::Demand {
                        ino,
                        mode_needed,
                        epoch,
                    } => {
                        buf.put_u8(0);
                        buf.put_u64_le(ino.0);
                        put_mode(buf, *mode_needed);
                        buf.put_u64_le(epoch.0);
                    }
                    PushBody::Invalidate { ino } => {
                        buf.put_u8(1);
                        buf.put_u64_le(ino.0);
                    }
                }
            }
        }
    }
}

impl WireDecode for CtlMsg {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(match get_u8(buf)? {
            0 => CtlMsg::Request(Request {
                src: NodeId(get_u32(buf)?),
                session: SessionId(get_u64(buf)?),
                seq: ReqSeq(get_u64(buf)?),
                body: RequestBody::decode(buf)?,
            }),
            1 => {
                let dst = NodeId(get_u32(buf)?);
                let session = SessionId(get_u64(buf)?);
                let seq = ReqSeq(get_u64(buf)?);
                let incarnation = Incarnation(get_u64(buf)?);
                let outcome = match get_u8(buf)? {
                    0 => ResponseOutcome::Acked(Ok(ReplyBody::decode(buf)?)),
                    1 => ResponseOutcome::Acked(Err(fs_error_from(get_u8(buf)?)?)),
                    2 => ResponseOutcome::Nacked(nack_from(get_u8(buf)?)?),
                    t => {
                        return Err(WireError::BadTag {
                            what: "ResponseOutcome",
                            tag: t,
                        })
                    }
                };
                CtlMsg::Response(Response {
                    dst,
                    session,
                    seq,
                    incarnation,
                    outcome,
                })
            }
            2 => {
                let dst = NodeId(get_u32(buf)?);
                let session = SessionId(get_u64(buf)?);
                let push_seq = get_u64(buf)?;
                let body = match get_u8(buf)? {
                    0 => PushBody::Demand {
                        ino: Ino(get_u64(buf)?),
                        mode_needed: get_mode(buf)?,
                        epoch: Epoch(get_u64(buf)?),
                    },
                    1 => PushBody::Invalidate {
                        ino: Ino(get_u64(buf)?),
                    },
                    t => {
                        return Err(WireError::BadTag {
                            what: "PushBody",
                            tag: t,
                        })
                    }
                };
                CtlMsg::Push(ServerPush {
                    dst,
                    session,
                    push_seq,
                    body,
                })
            }
            t => {
                return Err(WireError::BadTag {
                    what: "CtlMsg",
                    tag: t,
                })
            }
        })
    }
}

// ---------------------------------------------------------------- SanMsg

impl WireEncode for SanMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            SanMsg::ReadBlock { req_id, block } => {
                buf.put_u8(0);
                buf.put_u64_le(*req_id);
                buf.put_u64_le(block.0);
            }
            SanMsg::WriteBlock {
                req_id,
                block,
                data,
                tag,
            } => {
                buf.put_u8(1);
                buf.put_u64_le(*req_id);
                buf.put_u64_le(block.0);
                put_bytes(buf, data);
                put_tag(buf, tag);
            }
            SanMsg::ReadResp { req_id, result } => {
                buf.put_u8(2);
                buf.put_u64_le(*req_id);
                match result {
                    Ok(ok) => {
                        buf.put_u8(0);
                        put_bytes(buf, &ok.data);
                        put_tag(buf, &ok.tag);
                    }
                    Err(e) => {
                        buf.put_u8(1);
                        buf.put_u8(san_error_tag(*e));
                    }
                }
            }
            SanMsg::WriteResp { req_id, result } => {
                buf.put_u8(3);
                buf.put_u64_le(*req_id);
                match result {
                    Ok(()) => buf.put_u8(0),
                    Err(e) => {
                        buf.put_u8(1);
                        buf.put_u8(san_error_tag(*e));
                    }
                }
            }
            SanMsg::FenceCmd {
                req_id,
                target,
                op,
                range,
            } => {
                buf.put_u8(4);
                buf.put_u64_le(*req_id);
                buf.put_u32_le(target.0);
                buf.put_u8(matches!(op, FenceOp::Unfence) as u8);
                buf.put_u64_le(range.start);
                buf.put_u64_le(range.end);
            }
            SanMsg::FenceResp { req_id } => {
                buf.put_u8(5);
                buf.put_u64_le(*req_id);
            }
        }
    }
}

fn san_error_tag(e: SanError) -> u8 {
    match e {
        SanError::Fenced => 0,
        SanError::BadAddress => 1,
        SanError::DeviceError => 2,
    }
}

fn san_error_from(tag: u8) -> Result<SanError, WireError> {
    Ok(match tag {
        0 => SanError::Fenced,
        1 => SanError::BadAddress,
        2 => SanError::DeviceError,
        t => {
            return Err(WireError::BadTag {
                what: "SanError",
                tag: t,
            })
        }
    })
}

impl WireDecode for SanMsg {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(match get_u8(buf)? {
            0 => SanMsg::ReadBlock {
                req_id: get_u64(buf)?,
                block: BlockId(get_u64(buf)?),
            },
            1 => SanMsg::WriteBlock {
                req_id: get_u64(buf)?,
                block: BlockId(get_u64(buf)?),
                data: get_bytes(buf)?,
                tag: get_tag(buf)?,
            },
            2 => {
                let req_id = get_u64(buf)?;
                let result = match get_u8(buf)? {
                    0 => Ok(SanReadOk {
                        data: get_bytes(buf)?,
                        tag: get_tag(buf)?,
                    }),
                    1 => Err(san_error_from(get_u8(buf)?)?),
                    t => {
                        return Err(WireError::BadTag {
                            what: "ReadResp",
                            tag: t,
                        })
                    }
                };
                SanMsg::ReadResp { req_id, result }
            }
            3 => {
                let req_id = get_u64(buf)?;
                let result = match get_u8(buf)? {
                    0 => Ok(()),
                    1 => Err(san_error_from(get_u8(buf)?)?),
                    t => {
                        return Err(WireError::BadTag {
                            what: "WriteResp",
                            tag: t,
                        })
                    }
                };
                SanMsg::WriteResp { req_id, result }
            }
            4 => SanMsg::FenceCmd {
                req_id: get_u64(buf)?,
                target: NodeId(get_u32(buf)?),
                op: if get_u8(buf)? != 0 {
                    FenceOp::Unfence
                } else {
                    FenceOp::Fence
                },
                range: BlockRange {
                    start: get_u64(buf)?,
                    end: get_u64(buf)?,
                },
            },
            5 => SanMsg::FenceResp {
                req_id: get_u64(buf)?,
            },
            t => {
                return Err(WireError::BadTag {
                    what: "SanMsg",
                    tag: t,
                })
            }
        })
    }
}

// ---------------------------------------------------------------- ReplMsg

impl WireEncode for ReplMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ReplMsg::Append {
                snap_gen,
                snapshot,
                offset,
                bytes,
                durable,
            } => {
                buf.put_u8(0);
                buf.put_u64_le(*snap_gen);
                match snapshot {
                    Some(s) => {
                        buf.put_u8(1);
                        put_bytes(buf, s);
                    }
                    None => buf.put_u8(0),
                }
                buf.put_u64_le(*offset);
                put_bytes(buf, bytes);
                buf.put_u64_le(*durable);
            }
            ReplMsg::AppendAck { snap_gen, durable } => {
                buf.put_u8(1);
                buf.put_u64_le(*snap_gen);
                buf.put_u64_le(*durable);
            }
            ReplMsg::Heartbeat { incarnation } => {
                buf.put_u8(2);
                buf.put_u64_le(incarnation.0);
            }
        }
    }
}

impl WireDecode for ReplMsg {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(match get_u8(buf)? {
            0 => {
                let snap_gen = get_u64(buf)?;
                let snapshot = match get_u8(buf)? {
                    0 => None,
                    1 => Some(get_bytes(buf)?),
                    t => {
                        return Err(WireError::BadTag {
                            what: "ReplMsg snapshot flag",
                            tag: t,
                        })
                    }
                };
                ReplMsg::Append {
                    snap_gen,
                    snapshot,
                    offset: get_u64(buf)?,
                    bytes: get_bytes(buf)?,
                    durable: get_u64(buf)?,
                }
            }
            1 => ReplMsg::AppendAck {
                snap_gen: get_u64(buf)?,
                durable: get_u64(buf)?,
            },
            2 => ReplMsg::Heartbeat {
                incarnation: Incarnation(get_u64(buf)?),
            },
            t => {
                return Err(WireError::BadTag {
                    what: "ReplMsg",
                    tag: t,
                })
            }
        })
    }
}

// ---------------------------------------------------------------- NetMsg

impl WireEncode for NetMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            NetMsg::Ctl(m) => {
                buf.put_u8(0);
                m.encode(buf);
            }
            NetMsg::San(m) => {
                buf.put_u8(1);
                m.encode(buf);
            }
            NetMsg::Repl(m) => {
                buf.put_u8(2);
                m.encode(buf);
            }
        }
    }
}

impl WireDecode for NetMsg {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(match get_u8(buf)? {
            0 => NetMsg::Ctl(CtlMsg::decode(buf)?),
            1 => NetMsg::San(SanMsg::decode(buf)?),
            2 => NetMsg::Repl(ReplMsg::decode(buf)?),
            t => {
                return Err(WireError::BadTag {
                    what: "NetMsg",
                    tag: t,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: NetMsg) {
        let mut enc = msg.encoded();
        let dec = NetMsg::decode(&mut enc).expect("decode");
        assert_eq!(dec, msg);
        assert_eq!(enc.remaining(), 0, "no trailing bytes");
    }

    #[test]
    fn roundtrip_requests() {
        let bodies = vec![
            RequestBody::Hello { map_epoch: 3 },
            RequestBody::KeepAlive,
            RequestBody::Create {
                parent: Ino(1),
                name: "a.txt".into(),
            },
            RequestBody::Lookup {
                parent: Ino(1),
                name: "b".into(),
            },
            RequestBody::Mkdir {
                parent: Ino(1),
                name: "d".into(),
            },
            RequestBody::ReadDir { dir: Ino(1) },
            RequestBody::Unlink {
                parent: Ino(1),
                name: "a.txt".into(),
            },
            RequestBody::GetAttr { ino: Ino(2) },
            RequestBody::SetAttr {
                ino: Ino(2),
                size: Some(100),
            },
            RequestBody::SetAttr {
                ino: Ino(2),
                size: None,
            },
            RequestBody::LockAcquire {
                ino: Ino(2),
                mode: LockMode::Exclusive,
            },
            RequestBody::LockRelease {
                ino: Ino(2),
                epoch: Epoch(4),
            },
            RequestBody::PushAck { push_seq: 77 },
            RequestBody::AllocBlocks {
                ino: Ino(2),
                count: 8,
            },
            RequestBody::CommitWrite {
                ino: Ino(2),
                new_size: 4096,
            },
            RequestBody::ReadData {
                ino: Ino(2),
                offset: 512,
                len: 128,
            },
            RequestBody::WriteData {
                ino: Ino(2),
                offset: 0,
                data: vec![1, 2, 3],
            },
            RequestBody::RenameLink {
                dir: Ino(1),
                name: "moved".into(),
                ino: Ino(9),
            },
            RequestBody::RenameUnlink {
                dir: Ino(1),
                name: "old".into(),
            },
            RequestBody::Batch(vec![]),
            RequestBody::Batch(vec![
                RequestBody::Lookup {
                    parent: Ino(1),
                    name: "b".into(),
                },
                RequestBody::GetAttr { ino: Ino(2) },
                RequestBody::LockRelease {
                    ino: Ino(2),
                    epoch: Epoch(4),
                },
                RequestBody::CommitWrite {
                    ino: Ino(2),
                    new_size: 4096,
                },
            ]),
        ];
        for body in bodies {
            roundtrip(NetMsg::Ctl(CtlMsg::Request(Request {
                src: NodeId(5),
                session: SessionId(2),
                seq: ReqSeq(42),
                body,
            })));
        }
    }

    #[test]
    fn roundtrip_responses() {
        let outcomes = vec![
            ResponseOutcome::Acked(Ok(ReplyBody::HelloOk {
                session: SessionId(3),
                map_epoch: 1,
            })),
            ResponseOutcome::Acked(Ok(ReplyBody::Ok)),
            ResponseOutcome::Acked(Ok(ReplyBody::Created { ino: Ino(9) })),
            ResponseOutcome::Acked(Ok(ReplyBody::Resolved {
                ino: Ino(9),
                attr: FileAttr {
                    size: 1,
                    mtime: 2,
                    version: 3,
                    is_dir: false,
                },
            })),
            ResponseOutcome::Acked(Ok(ReplyBody::Attr {
                attr: FileAttr {
                    size: 0,
                    mtime: 0,
                    version: 1,
                    is_dir: true,
                },
            })),
            ResponseOutcome::Acked(Ok(ReplyBody::Dir {
                entries: vec![("x".into(), Ino(1)), ("y".into(), Ino(2))],
            })),
            ResponseOutcome::Acked(Ok(ReplyBody::LockGranted {
                ino: Ino(9),
                mode: LockMode::SharedRead,
                epoch: Epoch(12),
                blocks: vec![BlockId(3), BlockId(4)],
                size: 8192,
            })),
            ResponseOutcome::Acked(Ok(ReplyBody::Allocated {
                blocks: vec![BlockId(5)],
            })),
            ResponseOutcome::Acked(Ok(ReplyBody::Data { data: vec![9; 100] })),
            ResponseOutcome::Acked(Ok(ReplyBody::Batch(vec![]))),
            ResponseOutcome::Acked(Ok(ReplyBody::Batch(vec![
                Ok(ReplyBody::Resolved {
                    ino: Ino(9),
                    attr: FileAttr {
                        size: 1,
                        mtime: 2,
                        version: 3,
                        is_dir: false,
                    },
                }),
                Ok(ReplyBody::Ok),
                Err(FsError::NotFound),
            ]))),
            ResponseOutcome::Acked(Err(FsError::NotFound)),
            ResponseOutcome::Acked(Err(FsError::Unavailable)),
            ResponseOutcome::Nacked(NackReason::LeaseTimingOut),
            ResponseOutcome::Nacked(NackReason::SessionExpired),
            ResponseOutcome::Nacked(NackReason::StaleSession),
            ResponseOutcome::Nacked(NackReason::Recovering),
            ResponseOutcome::Nacked(NackReason::Misrouted(RouteError::NotOwner)),
            ResponseOutcome::Nacked(NackReason::Misrouted(RouteError::StaleMap)),
            ResponseOutcome::Nacked(NackReason::Misrouted(RouteError::NotPrimary)),
        ];
        for outcome in outcomes {
            roundtrip(NetMsg::Ctl(CtlMsg::Response(Response {
                dst: NodeId(5),
                session: SessionId(2),
                seq: ReqSeq(42),
                incarnation: Incarnation(7),
                outcome,
            })));
        }
    }

    #[test]
    fn roundtrip_pushes() {
        for body in [
            PushBody::Demand {
                ino: Ino(7),
                mode_needed: LockMode::Exclusive,
                epoch: Epoch(3),
            },
            PushBody::Invalidate { ino: Ino(7) },
        ] {
            roundtrip(NetMsg::Ctl(CtlMsg::Push(ServerPush {
                dst: NodeId(1),
                session: SessionId(4),
                push_seq: 10,
                body,
            })));
        }
    }

    #[test]
    fn roundtrip_san() {
        let tag = WriteTag {
            writer: NodeId(3),
            epoch: Epoch(8),
            wseq: 2,
        };
        let msgs = vec![
            SanMsg::ReadBlock {
                req_id: 1,
                block: BlockId(2),
            },
            SanMsg::WriteBlock {
                req_id: 2,
                block: BlockId(2),
                data: vec![1; 512],
                tag,
            },
            SanMsg::ReadResp {
                req_id: 1,
                result: Ok(SanReadOk {
                    data: vec![1; 512],
                    tag,
                }),
            },
            SanMsg::ReadResp {
                req_id: 1,
                result: Err(SanError::Fenced),
            },
            SanMsg::WriteResp {
                req_id: 2,
                result: Ok(()),
            },
            SanMsg::WriteResp {
                req_id: 2,
                result: Err(SanError::DeviceError),
            },
            SanMsg::FenceCmd {
                req_id: 3,
                target: NodeId(7),
                op: FenceOp::Fence,
                range: BlockRange::ALL,
            },
            SanMsg::FenceCmd {
                req_id: 3,
                target: NodeId(7),
                op: FenceOp::Unfence,
                range: BlockRange {
                    start: 64,
                    end: 128,
                },
            },
            SanMsg::FenceResp { req_id: 3 },
        ];
        for m in msgs {
            roundtrip(NetMsg::San(m));
        }
    }

    #[test]
    fn roundtrip_repl() {
        let msgs = vec![
            ReplMsg::Append {
                snap_gen: 0,
                snapshot: None,
                offset: 128,
                bytes: vec![7; 96],
                durable: 224,
            },
            ReplMsg::Append {
                snap_gen: 3,
                snapshot: Some(vec![9; 256]),
                offset: 0,
                bytes: Vec::new(),
                durable: 0,
            },
            ReplMsg::AppendAck {
                snap_gen: 3,
                durable: 224,
            },
            ReplMsg::Heartbeat {
                incarnation: Incarnation(5),
            },
        ];
        for m in msgs {
            roundtrip(NetMsg::Repl(m));
        }
    }

    #[test]
    fn truncated_repl_is_an_error_not_a_panic() {
        let msg = NetMsg::Repl(ReplMsg::Append {
            snap_gen: 2,
            snapshot: Some(vec![1, 2, 3]),
            offset: 4,
            bytes: vec![5, 6],
            durable: 6,
        });
        let mut enc = BytesMut::new();
        msg.encode(&mut enc);
        let full = enc.freeze();
        for cut in 0..full.len() {
            let mut trunc = full.slice(0..cut);
            assert!(
                NetMsg::decode(&mut trunc).is_err(),
                "decoded from a {cut}-byte prefix"
            );
        }
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let msg = NetMsg::Ctl(CtlMsg::Request(Request {
            src: NodeId(5),
            session: SessionId(2),
            seq: ReqSeq(42),
            body: RequestBody::Create {
                parent: Ino(1),
                name: "hello".into(),
            },
        }));
        let full = msg.encoded();
        for cut in 0..full.len() {
            let mut trunc = full.slice(0..cut);
            assert!(
                NetMsg::decode(&mut trunc).is_err(),
                "decoding {cut}/{} bytes must fail",
                full.len()
            );
        }
    }

    #[test]
    fn truncated_batch_is_an_error_not_a_panic() {
        let msg = NetMsg::Ctl(CtlMsg::Request(Request {
            src: NodeId(5),
            session: SessionId(2),
            seq: ReqSeq(42),
            body: RequestBody::Batch(vec![
                RequestBody::GetAttr { ino: Ino(1) },
                RequestBody::Lookup {
                    parent: Ino(1),
                    name: "hello".into(),
                },
                RequestBody::LockRelease {
                    ino: Ino(1),
                    epoch: Epoch(3),
                },
            ]),
        }));
        let full = msg.encoded();
        for cut in 0..full.len() {
            let mut trunc = full.slice(0..cut);
            assert!(
                NetMsg::decode(&mut trunc).is_err(),
                "decoding {cut}/{} bytes must fail",
                full.len()
            );
        }
    }

    #[test]
    fn nested_batch_is_rejected_on_decode() {
        // Hand-craft a batch whose single element is itself a batch; the
        // encoder debug-asserts against this, so build the bytes directly.
        let mut buf = BytesMut::new();
        buf.put_u8(18); // outer Batch
        buf.put_u32_le(1);
        buf.put_u8(18); // inner Batch
        buf.put_u32_le(0);
        let mut bytes = buf.freeze();
        match RequestBody::decode(&mut bytes) {
            Err(WireError::BadTag { what, tag: 18 }) => {
                assert!(what.contains("nested"), "got {what}");
            }
            other => panic!("expected nested-batch BadTag, got {other:?}"),
        }

        let mut buf = BytesMut::new();
        buf.put_u8(9); // outer reply Batch
        buf.put_u32_le(1);
        buf.put_u8(0); // Ok element...
        buf.put_u8(9); // ...that is itself a batch
        buf.put_u32_le(0);
        let mut bytes = buf.freeze();
        match ReplyBody::decode(&mut bytes) {
            Err(WireError::BadTag { what, tag: 9 }) => {
                assert!(what.contains("nested"), "got {what}");
            }
            other => panic!("expected nested-batch BadTag, got {other:?}"),
        }
    }

    #[test]
    fn oversized_batch_count_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(18);
        buf.put_u32_le((MAX_BATCH_ELEMS + 1) as u32);
        let mut bytes = buf.freeze();
        assert_eq!(RequestBody::decode(&mut bytes), Err(WireError::TooLong));

        let mut buf = BytesMut::new();
        buf.put_u8(9);
        buf.put_u32_le(u32::MAX);
        let mut bytes = buf.freeze();
        assert_eq!(ReplyBody::decode(&mut bytes), Err(WireError::TooLong));
    }

    #[test]
    fn bad_tag_reports_enum() {
        let mut buf = Bytes::from_static(&[9u8]);
        match NetMsg::decode(&mut buf) {
            Err(WireError::BadTag { what, tag }) => {
                assert_eq!(what, "NetMsg");
                assert_eq!(tag, 9);
            }
            other => panic!("expected BadTag, got {other:?}"),
        }
    }

    mod batch_props {
        use super::*;
        use proptest::collection::vec as pvec;
        use proptest::prelude::*;

        /// Arbitrary batchable request elements (all fixed-size and
        /// string-carrying shapes the coalescing queue actually folds).
        fn elem() -> impl Strategy<Value = RequestBody> {
            prop_oneof![
                Just(RequestBody::KeepAlive),
                (any::<u64>(), "[a-z0-9._-]{1,12}").prop_map(|(p, name)| {
                    RequestBody::Create {
                        parent: Ino(p),
                        name,
                    }
                }),
                (any::<u64>(), "[a-z0-9._-]{1,12}").prop_map(|(p, name)| {
                    RequestBody::Lookup {
                        parent: Ino(p),
                        name,
                    }
                }),
                (any::<u64>(), "[a-z0-9._-]{1,12}").prop_map(|(p, name)| {
                    RequestBody::Unlink {
                        parent: Ino(p),
                        name,
                    }
                }),
                any::<u64>().prop_map(|i| RequestBody::GetAttr { ino: Ino(i) }),
                any::<u64>().prop_map(|d| RequestBody::ReadDir { dir: Ino(d) }),
                (any::<u64>(), any::<u64>()).prop_map(|(i, e)| RequestBody::LockRelease {
                    ino: Ino(i),
                    epoch: Epoch(e),
                }),
                (any::<u64>(), any::<u64>()).prop_map(|(i, s)| RequestBody::CommitWrite {
                    ino: Ino(i),
                    new_size: s,
                }),
                (any::<u64>(), any::<u32>()).prop_map(|(i, c)| RequestBody::AllocBlocks {
                    ino: Ino(i),
                    count: c,
                }),
                any::<u64>().prop_map(|s| RequestBody::PushAck { push_seq: s }),
            ]
        }

        /// Arbitrary per-element batch outcomes, Ok and Err alike.
        fn outcome() -> impl Strategy<Value = Result<ReplyBody, FsError>> {
            prop_oneof![
                Just(Ok(ReplyBody::Ok)),
                any::<u64>().prop_map(|i| Ok(ReplyBody::Created { ino: Ino(i) })),
                (any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()).prop_map(
                    |(size, mtime, version, is_dir)| {
                        Ok(ReplyBody::Attr {
                            attr: FileAttr {
                                size,
                                mtime,
                                version,
                                is_dir,
                            },
                        })
                    }
                ),
                (any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()).prop_map(
                    |(ino, size, version, is_dir)| {
                        Ok(ReplyBody::Resolved {
                            ino: Ino(ino),
                            attr: FileAttr {
                                size,
                                mtime: 0,
                                version,
                                is_dir,
                            },
                        })
                    }
                ),
                Just(Err(FsError::NotFound)),
                Just(Err(FsError::Exists)),
                Just(Err(FsError::NotLocked)),
                Just(Err(FsError::Unavailable)),
            ]
        }

        proptest! {
            #[test]
            fn request_batch_roundtrips(elems in pvec(elem(), 0..48)) {
                let msg = NetMsg::Ctl(CtlMsg::Request(Request {
                    src: NodeId(5),
                    session: SessionId(2),
                    seq: ReqSeq(42),
                    body: RequestBody::Batch(elems),
                }));
                let mut enc = msg.encoded();
                let dec = NetMsg::decode(&mut enc);
                prop_assert_eq!(dec, Ok(msg));
                prop_assert_eq!(enc.remaining(), 0, "trailing bytes after batch");
            }

            #[test]
            fn reply_batch_roundtrips(outcomes in pvec(outcome(), 0..48)) {
                let msg = NetMsg::Ctl(CtlMsg::Response(Response {
                    dst: NodeId(5),
                    session: SessionId(2),
                    seq: ReqSeq(42),
                    incarnation: Incarnation(7),
                    outcome: ResponseOutcome::Acked(Ok(ReplyBody::Batch(outcomes))),
                }));
                let mut enc = msg.encoded();
                let dec = NetMsg::decode(&mut enc);
                prop_assert_eq!(dec, Ok(msg));
                prop_assert_eq!(enc.remaining(), 0, "trailing bytes after batch reply");
            }
        }
    }
}
