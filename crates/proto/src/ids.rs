//! Strongly-typed identifiers used across the system.
//!
//! Every identifier is a transparent newtype over a small integer so that
//! protocol state stays compact (see the type-size guidance in the Rust
//! perf-book) and so the compiler prevents cross-wiring, e.g. passing an
//! inode number where a block number is expected.

use serde::{Deserialize, Serialize};

/// Identifies a node (client, server, or disk). Defined by the simulator
/// substrate and re-exported here so protocol messages and the execution
/// substrate agree on one identifier type.
pub use tank_sim::NodeId;

/// An inode number: the unit of metadata and of logical locking.
///
/// The paper contrasts Storage Tank's *logical* locks on distributed data
/// structures with GFS's physical `dlock` on disk-address ranges (§5); we
/// lock inodes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Ino(pub u64);

impl std::fmt::Display for Ino {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ino{}", self.0)
    }
}

/// A block address on the shared SAN store.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct BlockId(pub u64);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blk{}", self.0)
    }
}

/// Client-side handle for an open file instance.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct FileHandle(pub u64);

/// Per-(client, session) request sequence number, the basis of at-most-once
/// delivery (§3: messages "include version numbers for 'at most once'
/// delivery semantics").
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct ReqSeq(pub u64);

impl ReqSeq {
    /// The next sequence number.
    #[inline]
    pub fn next(self) -> ReqSeq {
        ReqSeq(self.0 + 1)
    }
}

/// Identifies one metadata shard server in a multi-server cluster.
///
/// The paper's client "maintains a single lease *per server*" (§3); a
/// `ServerId` names the server a given lease, session, and lock grant
/// belong to. Shard ids are dense (`0..n`) so topologies can index by
/// them; the shard map (`tank-shard`) translates between `ServerId` and
/// the owned slice of the inode namespace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct ServerId(pub u16);

impl std::fmt::Display for ServerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A client⟷server session incarnation.
///
/// After a lease expires and the server steals a client's locks, the client
/// must establish a new session (`Hello`) before it is served again; stale
/// traffic from the dead session is rejected by session id mismatch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct SessionId(pub u64);

impl SessionId {
    /// The next session incarnation.
    #[inline]
    pub fn next(self) -> SessionId {
        SessionId(self.0 + 1)
    }
}

/// A server incarnation number, bumped each time the metadata server
/// restarts after a fail-stop crash.
///
/// The server stamps its incarnation on every [`crate::Response`], so a
/// client can detect a restart (the incarnation it sees changes) even
/// though the server keeps no durable session state: the client then
/// discards its dead session, flushes what its still-valid lease lets it
/// flush, and re-registers with `Hello`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Incarnation(pub u64);

impl Incarnation {
    /// The next incarnation (used by a restarting server).
    #[inline]
    pub fn next(self) -> Incarnation {
        Incarnation(self.0 + 1)
    }
}

impl std::fmt::Display for Incarnation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "inc{}", self.0)
    }
}

/// A lock epoch: a server-issued, per-inode monotonically increasing counter
/// stamped on every lock grant.
///
/// Epochs give the consistency checker a total order of conflicting lock
/// ownership per inode: writes tagged with an older epoch that land on disk
/// after a newer epoch's writes are exactly the "late commands" fencing is
/// meant to stop (§6).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Epoch(pub u64);

impl Epoch {
    /// The next epoch.
    #[inline]
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }
}

/// Identifier of a single file-system operation submitted by a local
/// process, used to correlate history events in the consistency checker.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct OpId(pub u64);

/// Provenance tag carried by every SAN block write.
///
/// `(epoch, wseq)` orders writes: epochs order conflicting lock owners,
/// `wseq` orders a single owner's writes to the block. The tag exists purely
/// for the checker and the experiments; the protocol itself never inspects
/// it (real disks store bytes, not tags).
///
/// **Uniqueness contract.** Whole tags are unique system-wide, not just
/// ordered per block — the happens-before auditor resolves a disk-side
/// harden back to its `(ino, block)` through the tag alone, and epochs are
/// per-shard counters that collide across shards. The two tag minters split
/// the `wseq` space to guarantee it: client-minted tags draw odd values
/// from a per-client global counter; server-stamped tags (function-shipped
/// writes, minted under the *client's* writer id) use the even value
/// `2 × shard id`, unique per stamped write because every stamp takes a
/// fresh epoch from its shard.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct WriteTag {
    /// The writing node.
    pub writer: NodeId,
    /// Lock epoch under which the write was issued.
    pub epoch: Epoch,
    /// Writer-local sequence for this block within the epoch.
    pub wseq: u64,
}

impl WriteTag {
    /// Total order used by the checker: epoch first, then writer sequence.
    #[inline]
    pub fn order_key(&self) -> (u64, u64) {
        (self.epoch.0, self.wseq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_and_session_advance() {
        assert_eq!(ReqSeq(3).next(), ReqSeq(4));
        assert_eq!(SessionId(0).next(), SessionId(1));
        assert_eq!(Epoch(9).next(), Epoch(10));
    }

    #[test]
    fn write_tag_ordering_prefers_epoch() {
        let a = WriteTag {
            writer: NodeId(1),
            epoch: Epoch(1),
            wseq: 99,
        };
        let b = WriteTag {
            writer: NodeId(2),
            epoch: Epoch(2),
            wseq: 0,
        };
        assert!(a.order_key() < b.order_key());
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert_eq!(Ino(7).to_string(), "ino7");
        assert_eq!(BlockId(1).to_string(), "blk1");
        assert_eq!(ServerId(2).to_string(), "s2");
    }

    #[test]
    fn ids_stay_small() {
        // These types sit inside every message; keep them word-sized.
        assert!(std::mem::size_of::<NodeId>() <= 4);
        assert!(std::mem::size_of::<WriteTag>() <= 24);
    }
}
