//! Control-network message set (client ⟷ server).
//!
//! Three top-level shapes exist, mirroring §3 of the paper:
//!
//! * [`Request`] — always client-initiated, carries a sequence number, and
//!   is answered by exactly one [`Response`]. A client implicitly renews its
//!   lease whenever a request it initiated is *acknowledged* (§3.1).
//! * [`Response`] — the server's answer. An acknowledged response (ACK)
//!   renews the lease even if the file-system operation inside failed (e.g.
//!   `NotFound`): receipt was acknowledged, which is all leasing needs. A
//!   negatively-acknowledged response (NACK) is the §3.3 signal: the request
//!   was valid but the server has begun timing out the client's lease, so
//!   the client must treat its cache as invalid and enter phase 3 directly.
//! * [`ServerPush`] — server-initiated (lock demands, cache invalidations).
//!   Pushes never renew leases (§3.1: "Clients are not granted leases when
//!   servers initiate communication") and are retried until the client
//!   responds; persistent failure to respond is the delivery error that arms
//!   the lease authority.

use serde::{Deserialize, Serialize};

use crate::ids::{BlockId, Epoch, Incarnation, Ino, NodeId, ReqSeq, SessionId};
use crate::lock::LockMode;

/// Maximum elements in one [`RequestBody::Batch`] / [`ReplyBody::Batch`].
/// Enforced on decode (defensive bound for the UDP path) and respected by
/// the client's coalescing queue, whose flush cap is far below it.
pub const MAX_BATCH_ELEMS: usize = 1024;

/// A message on the control network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CtlMsg {
    /// Client-initiated request.
    Request(Request),
    /// Server's answer to a request.
    Response(Response),
    /// Server-initiated push (demand/invalidate).
    Push(ServerPush),
}

/// A client-initiated request datagram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// The sending client (redundant with the network envelope, but kept in
    /// the message so the wire format is self-contained).
    pub src: NodeId,
    /// Session incarnation this request belongs to.
    pub session: SessionId,
    /// Per-session sequence number for at-most-once delivery.
    pub seq: ReqSeq,
    /// The operation.
    pub body: RequestBody,
}

/// Operations a client can request from the metadata server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RequestBody {
    /// Establish (or, after lease expiry, re-establish) a session.
    ///
    /// `map_epoch` is the epoch of the shard map the client routes by; a
    /// server holding a different epoch answers with
    /// [`NackReason::Misrouted`]`(`[`RouteError::StaleMap`]`)` so the
    /// client refreshes its map instead of caching against the wrong
    /// partition of the namespace.
    Hello { map_epoch: u64 },
    /// NULL message whose only purpose is to be ACKed, renewing the lease
    /// (§3.1: "we do provide an extra protocol message, with no metadata or
    /// lock function, for the sole purpose of renewing a lease").
    KeepAlive,
    /// Create a file under a directory.
    Create { parent: Ino, name: String },
    /// Resolve a name under a directory.
    Lookup { parent: Ino, name: String },
    /// Create a directory.
    Mkdir { parent: Ino, name: String },
    /// List a directory.
    ReadDir { dir: Ino },
    /// Remove a file.
    Unlink { parent: Ino, name: String },
    /// Fetch attributes.
    GetAttr { ino: Ino },
    /// Truncate / touch metadata.
    SetAttr { ino: Ino, size: Option<u64> },
    /// Acquire (or upgrade) a data lock on an inode. The grant carries the
    /// block map so the client can perform SAN I/O directly.
    LockAcquire { ino: Ino, mode: LockMode },
    /// Release a data lock (voluntarily or in answer to a demand). The
    /// epoch names the grant being released: the server ignores a release
    /// whose epoch does not match the current holding, so a stale or
    /// blind release (one that raced a newer grant) cannot tear down a
    /// grant the client doesn't know it owns.
    LockRelease { ino: Ino, epoch: Epoch },
    /// Immediate acknowledgement of a server push; stops push retries while
    /// the client is still flushing prior to release.
    PushAck { push_seq: u64 },
    /// Ask the server to allocate additional blocks to a file (data
    /// allocation is a server responsibility, §1.1).
    AllocBlocks { ino: Ino, count: u32 },
    /// Commit new file size/mtime after the client hardened data to the SAN.
    CommitWrite { ino: Ino, new_size: u64 },
    /// Function-shipped read (baseline data path: server performs the I/O).
    ReadData { ino: Ino, offset: u64, len: u32 },
    /// Function-shipped write.
    WriteData {
        ino: Ino,
        offset: u64,
        data: Vec<u8>,
    },
    /// First half of a (possibly cross-shard) rename: link `name → ino`
    /// into directory `dir` on the shard owning `dir`. The client holds
    /// exclusive locks on both parent directories (acquired in global
    /// `(ServerId, Ino)` order, so two renames can never deadlock) and
    /// performs link-before-unlink: a failure between the halves leaves
    /// the file reachable under both names, never under none.
    RenameLink { dir: Ino, name: String, ino: Ino },
    /// Second half of a rename: remove the directory *entry* `name` from
    /// `dir`. Unlike [`RequestBody::Unlink`] this never frees the inode or
    /// its blocks — the inode lives on (possibly on another shard) under
    /// its new name.
    RenameUnlink { dir: Ino, name: String },
    /// Several operations folded into one datagram. One batch is one
    /// [`Request`] — one sequence number, one ACK, one opportunistic lease
    /// renewal (§3.1: leasing reasons about *messages*, so Theorem 3.1 is
    /// untouched by how many ops ride inside). The server executes the
    /// elements in order and stops at the first file-system error
    /// (first-error-stops); the reply is [`ReplyBody::Batch`] with one
    /// per-element outcome. Elements must be [`RequestBody::batchable`]:
    /// nesting and ops that answer asynchronously (lock acquires, SAN
    /// round trips) are rejected at the wire layer and by the server.
    Batch(Vec<RequestBody>),
}

impl RequestBody {
    /// Short static label for metrics.
    ///
    /// The observability layer (`tank-obs`) uses these labels as stable
    /// trace-event and counter keys; renaming one is a contract change
    /// (see `OBSERVABILITY.md`), not a cosmetic edit.
    pub fn kind(&self) -> &'static str {
        match self {
            RequestBody::Hello { .. } => "hello",
            RequestBody::KeepAlive => "keep_alive",
            RequestBody::Create { .. } => "create",
            RequestBody::Lookup { .. } => "lookup",
            RequestBody::Mkdir { .. } => "mkdir",
            RequestBody::ReadDir { .. } => "readdir",
            RequestBody::Unlink { .. } => "unlink",
            RequestBody::GetAttr { .. } => "getattr",
            RequestBody::SetAttr { .. } => "setattr",
            RequestBody::LockAcquire { .. } => "lock_acquire",
            RequestBody::LockRelease { .. } => "lock_release",
            RequestBody::PushAck { .. } => "push_ack",
            RequestBody::AllocBlocks { .. } => "alloc_blocks",
            RequestBody::CommitWrite { .. } => "commit_write",
            RequestBody::ReadData { .. } => "read_data",
            RequestBody::WriteData { .. } => "write_data",
            RequestBody::RenameLink { .. } => "rename_link",
            RequestBody::RenameUnlink { .. } => "rename_unlink",
            RequestBody::Batch(_) => "batch",
        }
    }

    /// True for operations that may ride inside a [`RequestBody::Batch`].
    ///
    /// Excluded are the shapes that cannot produce a synchronous
    /// per-element reply or that carry their own session semantics:
    ///
    /// * `Hello` — establishes the session a batch would already need;
    /// * `LockAcquire` — may queue on a conflicting holder and answer
    ///   *later* via the grant path, so it has no in-order reply;
    /// * `ReadData` / `WriteData` — function-shipped SAN round trips that
    ///   suspend the request on the sim server;
    /// * `RenameLink` / `RenameUnlink` — the two halves of a rename span
    ///   shards and must stay individually addressable for the
    ///   link-before-unlink argument;
    /// * `Batch` — nesting is rejected outright.
    pub fn batchable(&self) -> bool {
        match self {
            RequestBody::KeepAlive
            | RequestBody::Create { .. }
            | RequestBody::Lookup { .. }
            | RequestBody::Mkdir { .. }
            | RequestBody::ReadDir { .. }
            | RequestBody::Unlink { .. }
            | RequestBody::GetAttr { .. }
            | RequestBody::SetAttr { .. }
            | RequestBody::LockRelease { .. }
            | RequestBody::PushAck { .. }
            | RequestBody::AllocBlocks { .. }
            | RequestBody::CommitWrite { .. } => true,
            RequestBody::Hello { .. }
            | RequestBody::LockAcquire { .. }
            | RequestBody::ReadData { .. }
            | RequestBody::WriteData { .. }
            | RequestBody::RenameLink { .. }
            | RequestBody::RenameUnlink { .. }
            | RequestBody::Batch(_) => false,
        }
    }
}

/// File attributes returned by metadata operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FileAttr {
    /// Logical file size in bytes.
    pub size: u64,
    /// Modification time (server-local nanoseconds; metadata is only weakly
    /// consistent, §3, so this is informational).
    pub mtime: u64,
    /// Metadata version, bumped on every mutation.
    pub version: u64,
    /// True for directories.
    pub is_dir: bool,
}

/// Successful operation results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReplyBody {
    /// New session established. `map_epoch` echoes the shard-map epoch the
    /// serving shard holds, confirming the client's routing view.
    HelloOk { session: SessionId, map_epoch: u64 },
    /// Generic acknowledgement with no payload (keep-alive, release, ack,
    /// commit, unlink...).
    Ok,
    /// A namespace entry was created.
    Created { ino: Ino },
    /// Name resolution result.
    Resolved { ino: Ino, attr: FileAttr },
    /// Attributes.
    Attr { attr: FileAttr },
    /// Directory listing.
    Dir { entries: Vec<(String, Ino)> },
    /// Lock granted. Carries everything the client needs for direct SAN
    /// access: the epoch stamping subsequent writes, the block map, and the
    /// current size.
    LockGranted {
        ino: Ino,
        mode: LockMode,
        epoch: Epoch,
        blocks: Vec<BlockId>,
        size: u64,
    },
    /// Additional blocks allocated to the file (full new map returned).
    Allocated { blocks: Vec<BlockId> },
    /// Function-shipped read result.
    Data { data: Vec<u8> },
    /// Per-element outcomes of a [`RequestBody::Batch`]. Under
    /// first-error-stops semantics the vector holds one `Ok` per executed
    /// element up to (and excluding) the first failure, then that failure
    /// as its final `Err`; elements after the failure were never executed
    /// and have no entry. The whole batch was still *acknowledged* — one
    /// message, one ACK, lease renewed — even when an element failed.
    Batch(Vec<Result<ReplyBody, FsError>>),
}

impl ReplyBody {
    /// Short static label, mirroring [`RequestBody::kind`]: used for
    /// metrics and for naming unexpected reply shapes in client errors.
    pub fn kind(&self) -> &'static str {
        match self {
            ReplyBody::HelloOk { .. } => "hello_ok",
            ReplyBody::Ok => "ok",
            ReplyBody::Created { .. } => "created",
            ReplyBody::Resolved { .. } => "resolved",
            ReplyBody::Attr { .. } => "attr",
            ReplyBody::Dir { .. } => "dir",
            ReplyBody::LockGranted { .. } => "lock_granted",
            ReplyBody::Allocated { .. } => "allocated",
            ReplyBody::Data { .. } => "data",
            ReplyBody::Batch(_) => "batch",
        }
    }
}

/// File-system level errors. These ride inside an *acknowledged* response:
/// the server received and processed the request, so the lease is renewed;
/// the operation simply failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsError {
    /// No such file or directory.
    NotFound,
    /// Name already exists.
    Exists,
    /// Out of blocks on the shared store.
    NoSpace,
    /// Operation requires a lock the client does not hold.
    NotLocked,
    /// Directory operations on non-directories and similar misuse.
    Invalid,
    /// The lock is currently held in a conflicting mode and the server chose
    /// to deny rather than queue (used when the holder is unreachable and
    /// recovery policy forbids stealing — the §2 "unavailable" outcome).
    Unavailable,
}

/// Protocol-level negative acknowledgement reasons (§3.3).
///
/// A NACK tells the client that the server will not execute transactions on
/// its behalf and will not renew its lease. Distinct from [`FsError`]: a
/// NACKed client must consider its cache invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NackReason {
    /// The server has begun timing out this client's lease and therefore
    /// "can neither acknowledge the message ... nor execute a transaction on
    /// the client's behalf" (§3.3).
    LeaseTimingOut,
    /// The client's session is no longer valid (its locks were stolen after
    /// lease expiry); it must send `Hello` to start a new session.
    SessionExpired,
    /// Sequence/session mismatch (stale duplicate from an old incarnation).
    StaleSession,
    /// The server recently restarted and is inside its recovery grace
    /// window: it cannot grant locks or mutate metadata until every lease
    /// that might have been outstanding at the crash has expired, because
    /// its volatile lock state is gone and granting early could conflict
    /// with a surviving holder. Unlike the other NACKs this one does *not*
    /// condemn the client's cache — the client's lease (and its SAN access)
    /// is still good; it should re-register and retry after a delay.
    Recovering,
    /// The request was sent to a server that does not own the governing
    /// inode (or the client's shard map is a different epoch). Like
    /// [`NackReason::Recovering`] this does *not* condemn the client's
    /// cache — nothing about the lease contract failed; the client simply
    /// knocked on the wrong door and should re-route.
    Misrouted(RouteError),
}

/// Why a request was refused by shard routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteError {
    /// The governing inode of the request is owned by a different shard.
    NotOwner,
    /// The client's shard-map epoch differs from the server's; its
    /// ownership computations cannot be trusted.
    StaleMap,
    /// The node addressed is a warm standby for the shard, not its
    /// primary. The client should retry against the shard's other
    /// address; after a failover election the roles have swapped.
    NotPrimary,
}

/// Outcome carried by a [`Response`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResponseOutcome {
    /// ACK: the server acknowledges receipt; lease renewed. The inner result
    /// is the file-system outcome.
    Acked(Result<ReplyBody, FsError>),
    /// NACK: receipt *not* acknowledged for lease purposes.
    Nacked(NackReason),
}

/// The server's answer to a [`Request`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// The client the response is addressed to.
    pub dst: NodeId,
    /// Echo of the request's session.
    pub session: SessionId,
    /// Echo of the request's sequence number; the client uses it to find the
    /// send timestamp `t_C1` from which the renewed lease runs (§3.1).
    pub seq: ReqSeq,
    /// The server incarnation that produced this response. A client that
    /// observes a different incarnation than the one its session was
    /// established under knows the server restarted (fail-stop) and its
    /// session/lock state is gone: it must quiesce, flush, and re-`Hello`.
    pub incarnation: Incarnation,
    /// ACK or NACK.
    pub outcome: ResponseOutcome,
}

impl Response {
    /// True when this response renews the client's lease.
    #[inline]
    pub fn is_ack(&self) -> bool {
        matches!(self.outcome, ResponseOutcome::Acked(_))
    }
}

/// Server-initiated push bodies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PushBody {
    /// Demand that the client downgrade/release its lock on `ino` so a
    /// conflicting request can be granted. The client flushes dirty data
    /// first, then releases. `epoch` names the holding being demanded, so
    /// a client that holds nothing can answer with an epoch-qualified
    /// release that cannot hurt a newer grant.
    Demand {
        ino: Ino,
        mode_needed: LockMode,
        epoch: Epoch,
    },
    /// Invalidate any cached data/attributes for `ino` (metadata changed).
    Invalidate { ino: Ino },
}

impl PushBody {
    /// Short static label for metrics.
    ///
    /// Stable trace-event/counter key consumed by `tank-obs` (the
    /// server's "demand" trace kind is this label; see
    /// `OBSERVABILITY.md`).
    pub fn kind(&self) -> &'static str {
        match self {
            PushBody::Demand { .. } => "demand",
            PushBody::Invalidate { .. } => "invalidate",
        }
    }
}

/// A server-initiated push datagram. Retried until `PushAck`ed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerPush {
    /// The target client.
    pub dst: NodeId,
    /// Session the push belongs to.
    pub session: SessionId,
    /// Server-assigned push sequence (namespace disjoint from [`ReqSeq`]).
    pub push_seq: u64,
    /// What is being pushed.
    pub body: PushBody,
}

impl CtlMsg {
    /// Short static label for metrics.
    ///
    /// Stable key consumed by `tank-obs`: the server's
    /// `server.unexpected_msgs` trace detail embeds it, so the labels
    /// are part of the documented trace vocabulary (`OBSERVABILITY.md`).
    pub fn kind(&self) -> &'static str {
        match self {
            CtlMsg::Request(r) => r.body.kind(),
            CtlMsg::Response(r) => match &r.outcome {
                ResponseOutcome::Acked(_) => "response",
                ResponseOutcome::Nacked(_) => "nack",
            },
            CtlMsg::Push(p) => p.body.kind(),
        }
    }

    /// True for pure lease-maintenance traffic (keep-alive requests and the
    /// responses to them cannot be distinguished here, so only the request
    /// side is counted; the overhead experiments double it).
    pub fn is_lease_overhead(&self) -> bool {
        matches!(
            self,
            CtlMsg::Request(Request {
                body: RequestBody::KeepAlive,
                ..
            })
        )
    }

    /// Approximate wire size in bytes (header + body).
    pub fn size_hint(&self) -> usize {
        const HDR: usize = 24;
        HDR + match self {
            CtlMsg::Request(r) => request_body_size(&r.body),
            CtlMsg::Response(r) => match &r.outcome {
                ResponseOutcome::Acked(Ok(body)) => reply_body_size(body),
                ResponseOutcome::Acked(Err(_)) | ResponseOutcome::Nacked(_) => 16,
            },
            CtlMsg::Push(_) => 16,
        }
    }
}

/// Approximate body size of a request, recursing into batches (each element
/// costs its own body plus a small per-element framing overhead).
fn request_body_size(body: &RequestBody) -> usize {
    match body {
        RequestBody::WriteData { data, .. } => 16 + data.len(),
        RequestBody::Create { name, .. }
        | RequestBody::Lookup { name, .. }
        | RequestBody::Mkdir { name, .. }
        | RequestBody::Unlink { name, .. }
        | RequestBody::RenameLink { name, .. }
        | RequestBody::RenameUnlink { name, .. } => 8 + name.len(),
        RequestBody::Hello { .. }
        | RequestBody::KeepAlive
        | RequestBody::ReadDir { .. }
        | RequestBody::GetAttr { .. }
        | RequestBody::SetAttr { .. }
        | RequestBody::LockAcquire { .. }
        | RequestBody::LockRelease { .. }
        | RequestBody::PushAck { .. }
        | RequestBody::AllocBlocks { .. }
        | RequestBody::CommitWrite { .. }
        | RequestBody::ReadData { .. } => 16,
        RequestBody::Batch(elems) => {
            8 + elems
                .iter()
                .map(|e| 4 + request_body_size(e))
                .sum::<usize>()
        }
    }
}

/// Approximate body size of a successful reply, recursing into batches.
fn reply_body_size(body: &ReplyBody) -> usize {
    match body {
        ReplyBody::Data { data } => 8 + data.len(),
        ReplyBody::Dir { entries } => 8 + entries.iter().map(|(n, _)| n.len() + 12).sum::<usize>(),
        ReplyBody::LockGranted { blocks, .. } | ReplyBody::Allocated { blocks } => {
            24 + 8 * blocks.len()
        }
        ReplyBody::HelloOk { .. }
        | ReplyBody::Ok
        | ReplyBody::Created { .. }
        | ReplyBody::Resolved { .. }
        | ReplyBody::Attr { .. } => 16,
        ReplyBody::Batch(outcomes) => {
            8 + outcomes
                .iter()
                .map(|o| match o {
                    Ok(b) => 4 + reply_body_size(b),
                    Err(_) => 4,
                })
                .sum::<usize>()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(body: RequestBody) -> CtlMsg {
        CtlMsg::Request(Request {
            src: NodeId(3),
            session: SessionId(1),
            seq: ReqSeq(9),
            body,
        })
    }

    #[test]
    fn ack_with_fs_error_still_renews() {
        let resp = Response {
            dst: NodeId(3),
            session: SessionId(1),
            seq: ReqSeq(9),
            incarnation: Incarnation(1),
            outcome: ResponseOutcome::Acked(Err(FsError::NotFound)),
        };
        assert!(resp.is_ack(), "application errors are still protocol ACKs");
    }

    #[test]
    fn nack_does_not_renew() {
        let resp = Response {
            dst: NodeId(3),
            session: SessionId(1),
            seq: ReqSeq(9),
            incarnation: Incarnation(1),
            outcome: ResponseOutcome::Nacked(NackReason::LeaseTimingOut),
        };
        assert!(!resp.is_ack());
    }

    #[test]
    fn keepalive_is_lease_overhead_and_nothing_else_is() {
        assert!(req(RequestBody::KeepAlive).is_lease_overhead());
        assert!(!req(RequestBody::GetAttr { ino: Ino(1) }).is_lease_overhead());
        assert!(!req(RequestBody::Hello { map_epoch: 0 }).is_lease_overhead());
    }

    #[test]
    fn size_hint_scales_with_payload() {
        let small = req(RequestBody::KeepAlive).size_hint();
        let big = req(RequestBody::WriteData {
            ino: Ino(1),
            offset: 0,
            data: vec![0u8; 4096],
        })
        .size_hint();
        assert!(big > small + 4000);
    }

    #[test]
    fn batchable_excludes_async_and_session_shapes() {
        assert!(RequestBody::GetAttr { ino: Ino(1) }.batchable());
        assert!(RequestBody::LockRelease {
            ino: Ino(1),
            epoch: crate::ids::Epoch(1),
        }
        .batchable());
        assert!(RequestBody::KeepAlive.batchable());
        // Async answers, session establishment, SAN round trips, renames,
        // and nesting all stay out of batches.
        assert!(!RequestBody::Hello { map_epoch: 0 }.batchable());
        assert!(!RequestBody::LockAcquire {
            ino: Ino(1),
            mode: LockMode::SharedRead,
        }
        .batchable());
        assert!(!RequestBody::ReadData {
            ino: Ino(1),
            offset: 0,
            len: 8,
        }
        .batchable());
        assert!(!RequestBody::RenameLink {
            dir: Ino(1),
            name: "a".into(),
            ino: Ino(2),
        }
        .batchable());
        assert!(!RequestBody::Batch(vec![]).batchable());
    }

    #[test]
    fn batch_size_hint_sums_elements() {
        let one = req(RequestBody::GetAttr { ino: Ino(1) }).size_hint();
        let four = req(RequestBody::Batch(vec![
            RequestBody::GetAttr { ino: Ino(1) },
            RequestBody::GetAttr { ino: Ino(2) },
            RequestBody::GetAttr { ino: Ino(3) },
            RequestBody::GetAttr { ino: Ino(4) },
        ]))
        .size_hint();
        // Four ops in one batch cost far less than four datagrams but more
        // than one.
        assert!(four > one);
        assert!(four < 4 * one);
    }

    #[test]
    fn kinds_are_stable_labels() {
        assert_eq!(req(RequestBody::KeepAlive).kind(), "keep_alive");
        let push = CtlMsg::Push(ServerPush {
            dst: NodeId(1),
            session: SessionId(0),
            push_seq: 1,
            body: PushBody::Demand {
                ino: Ino(5),
                mode_needed: LockMode::Exclusive,
                epoch: crate::ids::Epoch(1),
            },
        });
        assert_eq!(push.kind(), "demand");
    }
}
