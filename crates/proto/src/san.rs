//! Storage-area-network message set (initiator ⟷ disk).
//!
//! Disks are deliberately dumb, matching §2 of the paper: "Disk drives on a
//! SAN cannot execute non-storage code and consequently cannot maintain
//! views and send data messages as required." A disk only answers block
//! reads/writes and honours fencing commands; it never initiates traffic and
//! participates in no distributed protocol.

use serde::{Deserialize, Serialize};

use crate::ids::{BlockId, NodeId, WriteTag};

/// Administrative fencing operations, issued by the server to a disk.
///
/// Fencing "instructs the SAN-attached storage devices to no longer accept
/// I/O requests from the isolated computer", and the device "must enforce
/// this denial of access indefinitely" (§1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FenceOp {
    /// Stop serving the initiator.
    Fence,
    /// Resume serving the initiator (after an administrator or recovery
    /// protocol re-admits it).
    Unfence,
}

/// A half-open range `[start, end)` of block addresses on the SAN.
///
/// Fences are scoped to a range so a sharded metadata cluster can fence a
/// client out of one shard's allocation range while the client keeps doing
/// direct I/O against blocks governed by other shards (whose leases are
/// still good). A single-server deployment fences [`BlockRange::ALL`],
/// which degenerates to the paper's whole-device fence (§1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockRange {
    /// First block covered.
    pub start: u64,
    /// One past the last block covered.
    pub end: u64,
}

impl BlockRange {
    /// Every block on the device.
    pub const ALL: BlockRange = BlockRange {
        start: 0,
        end: u64::MAX,
    };

    /// Whether `block` falls inside the range.
    #[inline]
    pub fn contains(&self, block: BlockId) -> bool {
        self.start <= block.0 && block.0 < self.end
    }
}

/// A message on the SAN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SanMsg {
    /// Read one block.
    ReadBlock {
        /// Initiator-chosen correlation id.
        req_id: u64,
        /// Block address.
        block: BlockId,
    },
    /// Write one block.
    WriteBlock {
        /// Initiator-chosen correlation id.
        req_id: u64,
        /// Block address.
        block: BlockId,
        /// Payload (a full block).
        data: Vec<u8>,
        /// Provenance tag for the consistency checker; ignored by protocol
        /// logic (real disks store bytes, not tags).
        tag: WriteTag,
    },
    /// Answer to `ReadBlock`.
    ReadResp {
        /// Echo of the request id.
        req_id: u64,
        /// The outcome.
        result: Result<SanReadOk, SanError>,
    },
    /// Answer to `WriteBlock`.
    WriteResp {
        /// Echo of the request id.
        req_id: u64,
        /// The outcome.
        result: Result<(), SanError>,
    },
    /// Fence/unfence an initiator (server → disk). Disks acknowledge so the
    /// server knows the fence is in force before stealing locks.
    FenceCmd {
        /// Correlation id.
        req_id: u64,
        /// The initiator whose access changes.
        target: NodeId,
        /// Fence or unfence.
        op: FenceOp,
        /// The block range the fence covers (an unfence removes exactly
        /// the matching fenced range).
        range: BlockRange,
    },
    /// Answer to `FenceCmd`.
    FenceResp {
        /// Echo of the request id.
        req_id: u64,
    },
}

/// Payload of a successful block read.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SanReadOk {
    /// Block contents.
    pub data: Vec<u8>,
    /// Tag of the write that produced these contents (checker metadata).
    pub tag: WriteTag,
}

/// Which of `ndisks` disks a block lives on: blocks are striped
/// round-robin. Client and server must agree on placement, so the rule
/// lives here in the shared protocol crate.
#[inline]
pub fn stripe_disk(block: crate::ids::BlockId, ndisks: usize) -> usize {
    assert!(ndisks > 0, "no disks");
    (block.0 % ndisks as u64) as usize
}

/// SAN-level I/O errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SanError {
    /// The initiator is fenced; the disk enforces denial indefinitely.
    Fenced,
    /// Block address out of range.
    BadAddress,
    /// Injected device failure.
    DeviceError,
}

impl SanMsg {
    /// Short static label for metrics.
    ///
    /// Stable per-message-kind key for the observability layer
    /// (`tank-obs`); keep labels fixed — they are contract, not
    /// decoration (`OBSERVABILITY.md`).
    pub fn kind(&self) -> &'static str {
        match self {
            SanMsg::ReadBlock { .. } => "san_read",
            SanMsg::WriteBlock { .. } => "san_write",
            SanMsg::ReadResp { .. } => "san_read_resp",
            SanMsg::WriteResp { .. } => "san_write_resp",
            SanMsg::FenceCmd { .. } => "san_fence",
            SanMsg::FenceResp { .. } => "san_fence_resp",
        }
    }

    /// Approximate wire size in bytes.
    pub fn size_hint(&self) -> usize {
        const HDR: usize = 16;
        HDR + match self {
            SanMsg::WriteBlock { data, .. } => 32 + data.len(),
            SanMsg::ReadResp { result: Ok(ok), .. } => 32 + ok.data.len(),
            SanMsg::ReadBlock { .. }
            | SanMsg::ReadResp { result: Err(_), .. }
            | SanMsg::WriteResp { .. }
            | SanMsg::FenceCmd { .. }
            | SanMsg::FenceResp { .. } => 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Epoch;

    #[test]
    fn write_carries_data_in_size_hint() {
        let w = SanMsg::WriteBlock {
            req_id: 1,
            block: BlockId(0),
            data: vec![7u8; 512],
            tag: WriteTag {
                writer: NodeId(1),
                epoch: Epoch(1),
                wseq: 0,
            },
        };
        assert!(w.size_hint() >= 512);
        assert_eq!(w.kind(), "san_write");
    }

    #[test]
    fn fence_roundtrip_labels() {
        let f = SanMsg::FenceCmd {
            req_id: 9,
            target: NodeId(2),
            op: FenceOp::Fence,
            range: BlockRange::ALL,
        };
        assert_eq!(f.kind(), "san_fence");
        let r = SanMsg::FenceResp { req_id: 9 };
        assert_eq!(r.kind(), "san_fence_resp");
    }
}
