//! At-most-once delivery bookkeeping.
//!
//! The paper's datagram messages "include version numbers for 'at most
//! once' delivery semantics" (§3). [`DedupWindow`] is the receiver side: it
//! tracks, per session, which request sequence numbers have been seen, so a
//! retried datagram is executed at most once while the cached response can
//! still be re-sent.
//!
//! The window is bounded: sequence numbers at or below the low watermark are
//! rejected as stale; a sparse set tracks seen numbers above it. With
//! in-order senders the set stays tiny; under loss/reorder it is bounded by
//! the retry window.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::ids::ReqSeq;

/// Verdict for an incoming sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqVerdict {
    /// First sighting: execute the request.
    Fresh,
    /// Already executed: re-send the cached response but do not re-execute.
    Duplicate,
    /// Below the window: too old to have a cached response; drop.
    Stale,
}

/// Receiver-side duplicate-suppression window for one (client, session).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DedupWindow {
    /// All sequence numbers `<= low` have been seen.
    low: u64,
    /// Seen numbers above `low` (sparse under reordering).
    seen: BTreeSet<u64>,
    /// Maximum distance kept above `low` before old entries are compacted
    /// into staleness. Zero means unbounded.
    max_span: u64,
}

impl DedupWindow {
    /// Create a window that keeps at most `max_span` entries of reorder
    /// history (0 = unbounded).
    pub fn with_span(max_span: u64) -> Self {
        DedupWindow {
            low: 0,
            seen: BTreeSet::new(),
            max_span,
        }
    }

    /// Classify and record an incoming sequence number.
    pub fn observe(&mut self, seq: ReqSeq) -> SeqVerdict {
        let s = seq.0;
        if s == 0 || s <= self.low {
            // Seq numbers start at 1; 0 is never valid.
            return if s == 0 {
                SeqVerdict::Stale
            } else {
                SeqVerdict::Duplicate
            };
        }
        if self.seen.contains(&s) {
            return SeqVerdict::Duplicate;
        }
        self.seen.insert(s);
        self.compact();
        SeqVerdict::Fresh
    }

    /// Advance `low` over any contiguous run and enforce the span bound.
    fn compact(&mut self) {
        while self.seen.remove(&(self.low + 1)) {
            self.low += 1;
        }
        if self.max_span != 0 {
            while let Some(&max) = self.seen.iter().next_back() {
                if max - self.low <= self.max_span {
                    break;
                }
                // Window overflow: treat the oldest gap as delivered so the
                // window slides. This sacrifices duplicate detection for
                // sequence numbers older than the span, which is the
                // standard trade-off for bounded state.
                self.low += 1;
                self.seen.remove(&self.low);
            }
        }
    }

    /// Number of retained sparse entries (memory accounting).
    pub fn sparse_len(&self) -> usize {
        self.seen.len()
    }

    /// Highest sequence number at or below which everything was seen.
    pub fn low_watermark(&self) -> ReqSeq {
        ReqSeq(self.low)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> DedupWindow {
        DedupWindow::with_span(1024)
    }

    #[test]
    fn in_order_stream_is_fresh_and_compact() {
        let mut win = w();
        for s in 1..=100u64 {
            assert_eq!(win.observe(ReqSeq(s)), SeqVerdict::Fresh);
        }
        assert_eq!(win.sparse_len(), 0, "contiguous run compacts to watermark");
        assert_eq!(win.low_watermark(), ReqSeq(100));
    }

    #[test]
    fn duplicates_detected_before_and_after_compaction() {
        let mut win = w();
        assert_eq!(win.observe(ReqSeq(1)), SeqVerdict::Fresh);
        assert_eq!(win.observe(ReqSeq(1)), SeqVerdict::Duplicate);
        assert_eq!(win.observe(ReqSeq(3)), SeqVerdict::Fresh);
        assert_eq!(win.observe(ReqSeq(3)), SeqVerdict::Duplicate);
        assert_eq!(win.observe(ReqSeq(2)), SeqVerdict::Fresh);
        assert_eq!(win.observe(ReqSeq(2)), SeqVerdict::Duplicate);
    }

    #[test]
    fn zero_is_never_valid() {
        let mut win = w();
        assert_eq!(win.observe(ReqSeq(0)), SeqVerdict::Stale);
    }

    #[test]
    fn reordering_leaves_sparse_entries_then_compacts() {
        let mut win = w();
        assert_eq!(win.observe(ReqSeq(5)), SeqVerdict::Fresh);
        assert_eq!(win.observe(ReqSeq(4)), SeqVerdict::Fresh);
        assert_eq!(win.sparse_len(), 2);
        for s in 1..=3 {
            assert_eq!(win.observe(ReqSeq(s)), SeqVerdict::Fresh);
        }
        assert_eq!(win.sparse_len(), 0);
        assert_eq!(win.low_watermark(), ReqSeq(5));
    }

    #[test]
    fn a_batch_is_one_sequence_number() {
        // The window keys on ReqSeq alone — a Batch request travels under
        // a single sequence number, so a retransmitted batch produces
        // exactly ONE Duplicate verdict, never one per element. The
        // replay cache then re-sends the whole recorded Batch reply;
        // elements cannot be re-executed individually.
        let mut win = w();
        let batch_seq = ReqSeq(1);
        assert_eq!(win.observe(batch_seq), SeqVerdict::Fresh);
        // The retransmit (same seq, same 16-element payload) dedups as a
        // unit: one verdict, no per-element bookkeeping grew.
        for _retry in 0..3 {
            assert_eq!(win.observe(batch_seq), SeqVerdict::Duplicate);
        }
        assert_eq!(win.sparse_len(), 0);
        assert_eq!(win.low_watermark(), batch_seq);
    }

    #[test]
    fn interleaved_batch_retransmits_do_not_stall_the_watermark() {
        // Batches and singles share the lane's sequence space. Late
        // retransmits of an already-compacted batch seq must neither
        // re-open the window nor block later traffic from compacting.
        let mut win = w();
        assert_eq!(win.observe(ReqSeq(1)), SeqVerdict::Fresh); // batch A
        assert_eq!(win.observe(ReqSeq(2)), SeqVerdict::Fresh); // single
        assert_eq!(win.observe(ReqSeq(1)), SeqVerdict::Duplicate); // A again
        assert_eq!(win.observe(ReqSeq(3)), SeqVerdict::Fresh); // batch B
        assert_eq!(win.observe(ReqSeq(2)), SeqVerdict::Duplicate);
        assert_eq!(win.low_watermark(), ReqSeq(3));
        assert_eq!(win.sparse_len(), 0);
    }

    #[test]
    fn span_bound_limits_memory() {
        let mut win = DedupWindow::with_span(8);
        // Only even numbers arrive: gaps never fill, window must slide.
        for s in (2..=200u64).step_by(2) {
            win.observe(ReqSeq(s));
        }
        assert!(win.sparse_len() <= 9, "sparse set bounded by span");
    }

    #[test]
    fn unbounded_window_never_slides() {
        let mut win = DedupWindow::with_span(0);
        for s in (2..=200u64).step_by(2) {
            assert_eq!(win.observe(ReqSeq(s)), SeqVerdict::Fresh);
        }
        assert_eq!(win.sparse_len(), 100);
    }
}
